"""``repro.core`` — the concurrent-breakpoint library (the paper's contribution).

Public surface:

* :class:`BTrigger` and the concrete triggers
  (:class:`ConflictTrigger`, :class:`DeadlockTrigger`,
  :class:`AtomicityTrigger`, :class:`PredicateTrigger`) — paper Section 4;
* :class:`SitePolicy` — the Section 6.3 precision refinements;
* :class:`CBSpec` — declarative ``(l1, l2, phi)`` descriptions;
* :class:`BreakpointEngine` — the BTrigger matching mechanism (Section 3),
  shared by the OS-thread and simulation backends;
* :data:`GLOBAL` — the library configuration (pause time ``T``, on/off);
* OS-thread helpers: ``trigger_here`` semantics live on the trigger
  classes; :func:`reset` / :func:`stats` / :func:`breakpoint_hit` manage
  the process-wide engine; :class:`TrackedLock` enables the
  ``isLockTypeHeld`` refinement in real ``threading`` programs.
"""

from .config import GLOBAL, Config, DEFAULT_TIMEOUT
from .engine import (
    ArrivalResult,
    MatchedGroup,
    BreakpointEngine,
    BreakpointStats,
    Matched,
    Postponed,
    PostponedEntry,
    Skipped,
)
from .locks import TrackedLock, TrackedRLock, held_tracked_locks
from .predicates import SitePolicy
from .runtimectx import is_lock_type_held
from .spec import (
    AtomicityTrigger,
    GroupTrigger,
    BTrigger,
    CBSpec,
    ConflictTrigger,
    DeadlockTrigger,
    PredicateTrigger,
)
from .threads import breakpoint_hit, engine, reset, stats

__all__ = [
    "GLOBAL",
    "Config",
    "DEFAULT_TIMEOUT",
    "ArrivalResult",
    "BreakpointEngine",
    "BreakpointStats",
    "Matched",
    "MatchedGroup",
    "Postponed",
    "PostponedEntry",
    "Skipped",
    "TrackedLock",
    "TrackedRLock",
    "held_tracked_locks",
    "SitePolicy",
    "is_lock_type_held",
    "AtomicityTrigger",
    "BTrigger",
    "CBSpec",
    "ConflictTrigger",
    "DeadlockTrigger",
    "GroupTrigger",
    "PredicateTrigger",
    "breakpoint_hit",
    "engine",
    "reset",
    "stats",
]
