"""Execution-context bridge between breakpoint predicates and backends.

Local predicates sometimes need runtime facts that are not captured in the
trigger instance itself — most prominently the paper's
``isLockTypeHeld(type)`` refinement (Section 6.3, the Swing deadlock:
"the deadlock occurs only if the corresponding BasicCaret lock is held").
Which locks the *current thread* holds is known to the backend executing
the predicate (the simulation kernel tracks held locks per ``SimThread``;
the OS backend tracks them via ``TrackedLock``), not to the predicate.

Backends publish the current thread's held-lock set here immediately
before evaluating predicates; predicates read it via :func:`held_locks`
and :func:`is_lock_type_held`.  The simulation kernel is single-threaded,
and the OS backend keys by ``threading.get_ident``, so no extra locking is
needed.
"""

from __future__ import annotations

import threading
from typing import Iterable, Sequence

__all__ = [
    "push_held_locks",
    "pop_held_locks",
    "held_locks",
    "is_lock_type_held",
    "lock_tag",
]

_local = threading.local()


def push_held_locks(locks: Sequence[object]) -> None:
    """Publish the held-lock set of the current execution context."""
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    stack.append(tuple(locks))


def pop_held_locks() -> None:
    """Remove the most recently published held-lock set."""
    stack = getattr(_local, "stack", None)
    if stack:
        stack.pop()


def held_locks() -> tuple:
    """Locks held by the logical thread whose predicate is being evaluated.

    Returns an empty tuple when no backend has published one (e.g. a
    predicate evaluated outside any trigger call, as in unit tests).
    """
    stack = getattr(_local, "stack", None)
    if not stack:
        return ()
    return stack[-1]


def lock_tag(lock: object) -> str | None:
    """Best-effort type tag of a lock object.

    Locks created by the library (``SimLock``, ``TrackedLock``) carry a
    ``tag`` attribute; for anything else the class name is used.
    """
    tag = getattr(lock, "tag", None)
    if tag is not None:
        return tag
    return type(lock).__name__


def is_lock_type_held(tag: str, locks: Iterable[object] | None = None) -> bool:
    """The paper's ``isLockTypeHeld(type)`` local-predicate refinement.

    True when the current context holds any lock whose :func:`lock_tag`
    equals ``tag``.
    """
    if locks is None:
        locks = held_locks()
    return any(lock_tag(lk) == tag for lk in locks)
