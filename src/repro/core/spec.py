"""Concurrent-breakpoint specifications and trigger classes (paper Sections 2 & 4).

A concurrent breakpoint is the tuple ``(l1, l2, phi)``: two program
locations plus a predicate over the joint local state of two threads.  The
paper's library realises it as an abstract class ``BTrigger`` with

* ``predicateLocal()``  — the thread-local half ``phi_t`` of the predicate,
* ``predicateGlobal(other)`` — the joint half ``phi_t1t2``, evaluated
  against a postponed partner instance, and
* ``triggerHere(isFirstAction, timeoutInMS)`` — called just before the
  breakpoint's program location; pauses/matches per the BTrigger
  mechanism (Section 3) and returns ``True`` iff the breakpoint fired.

This module defines the abstract class and the concrete triggers used in
the paper: :class:`ConflictTrigger` (data races, Figure 6; also atomicity
violations, Figure 3) and :class:`DeadlockTrigger` (Figure 8), plus a
generic :class:`PredicateTrigger` for ad-hoc predicates.  Instances are
created fresh at every site visit, capturing the thread's relevant local
state in constructor arguments — exactly the paper's
``(new ConflictTrigger("trigger1", p1)).triggerHere(...)`` idiom.

``trigger_here`` on these classes drives the OS-thread backend
(:mod:`repro.core.threads`).  Inside simulated programs, use
``yield from bp.sim_trigger_here(...)`` or the ``Trigger`` syscall
(:mod:`repro.sim.btrigger`); the matching semantics are identical because
both backends share one :class:`~repro.core.engine.BreakpointEngine`.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Callable, Optional

from .config import GLOBAL
from .predicates import SitePolicy

__all__ = [
    "CBSpec",
    "BTrigger",
    "ConflictTrigger",
    "DeadlockTrigger",
    "AtomicityTrigger",
    "PredicateTrigger",
]


@dataclasses.dataclass(frozen=True)
class CBSpec:
    """Declarative description of a breakpoint ``(l1, l2, phi)``.

    Purely documentary — used in bug reports (Methodology I) and in
    experiment manifests; the executable artefact is a pair of trigger
    insertions.  ``loc_first`` is the location whose thread acts first.
    """

    name: str
    loc_first: str
    loc_second: str
    predicate: str = "t1.obj == t2.obj"
    kind: str = "race"  # race | deadlock | atomicity | missed-notify | custom

    def __str__(self) -> str:
        return f"<{self.loc_first}, {self.loc_second}, {self.predicate}> [{self.kind} {self.name!r}]"


class BTrigger(abc.ABC):
    """Abstract concurrent breakpoint (paper Figure 5).

    Two instances belong to the same breakpoint iff they share ``name``;
    ``predicate_global`` is expected to check the name itself (as the
    paper's implementations do), but the engine also pre-filters by name
    for efficiency.

    Subclasses capture thread-local state in their constructor and
    implement the two predicate halves.  ``policy`` attaches the Section
    6.3 precision refinements; pass a site-shared :class:`SitePolicy` so
    its counters span all instances created at the site.
    """

    __slots__ = ("name", "policy")

    def __init__(self, name: str, policy: Optional[SitePolicy] = None) -> None:
        if not name:
            raise ValueError("breakpoint name must be non-empty")
        self.name = name
        self.policy = policy

    # -- predicate halves -------------------------------------------------
    def predicate_local(self) -> bool:
        """``phi_t``: is this thread's local state breakpoint-relevant?

        Default: always true (the captured constructor state *is* the
        local condition for the built-in triggers).
        """
        return True

    @abc.abstractmethod
    def predicate_global(self, other: "BTrigger") -> bool:
        """``phi_t1t2``: do this instance and a partner jointly satisfy phi?"""

    # -- trigger points ----------------------------------------------------
    def trigger_here(self, is_first_action: bool, timeout: Optional[float] = None) -> bool:
        """Insert the breakpoint at the current (OS-thread) program point.

        Pauses the calling thread for up to ``timeout`` seconds (default
        ``GLOBAL.timeout``) waiting for a partner.  Returns ``True`` iff
        the breakpoint fired; the ``is_first_action=True`` side is
        released first (Section 2's scheduling action).
        """
        from . import threads  # local import: keep spec importable without threading setup

        return threads.trigger_here(self, is_first_action, timeout)

    def sim_trigger_here(self, is_first_action: bool, timeout: Optional[float] = None):
        """Generator form for simulated threads: ``hit = yield from bp.sim_trigger_here(...)``."""
        from repro.sim.syscalls import Trigger

        if timeout is None:
            timeout = GLOBAL.timeout
        result = yield Trigger(self, is_first_action, timeout)
        return result

    # Paper-faithful camelCase aliases -------------------------------------
    def predicateLocal(self) -> bool:  # noqa: N802 - paper API
        """Paper-spelling alias for :meth:`predicate_local`."""
        return self.predicate_local()

    def predicateGlobal(self, other: "BTrigger") -> bool:  # noqa: N802 - paper API
        """Paper-spelling alias for :meth:`predicate_global`."""
        return self.predicate_global(other)

    def triggerHere(self, isFirstAction: bool, timeoutInMS: int) -> bool:  # noqa: N802,N803 - paper API
        """Paper-spelling alias for :meth:`trigger_here` (timeout in ms)."""
        return self.trigger_here(isFirstAction, timeoutInMS / 1000.0)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class ConflictTrigger(BTrigger):
    """Breakpoint for data races: ``(l1, l2, t1.obj == t2.obj)`` (Figure 6).

    Fires when two threads reach their respective sites holding references
    to the *same* object (identity comparison, like Java ``==``).  Also
    the right trigger for atomicity violations expressed as
    ``t1.sb == t2.this`` (Figure 3) and for contended-monitor missed
    notifications, where ``obj`` is the monitor.
    """

    __slots__ = ("obj", "local", "side")

    def __init__(
        self,
        name: str,
        obj: object,
        policy: Optional[SitePolicy] = None,
        local: Optional[Callable[[], bool]] = None,
        side: Optional[str] = None,
    ) -> None:
        super().__init__(name, policy)
        self.obj = obj
        #: Optional extra local condition (``phi_t`` beyond "holds a
        #: reference to obj") — a Section 6.3 precision refinement that
        #: is per-site rather than per-breakpoint, e.g. "the object is
        #: still being constructed".
        self.local = local
        #: Optional site label refining the *global* predicate: when both
        #: instances carry a side, they only match across different
        #: sides.  Use for asymmetric conflicts (reader vs writer) where
        #: several threads share the reader site and must not pair with
        #: each other.
        self.side = side

    def predicate_local(self) -> bool:
        """This thread's half: always armed once reached."""
        if self.local is not None:
            return bool(self.local())
        return True

    def predicate_global(self, other: BTrigger) -> bool:
        """Joint predicate: both triggers watch the same object."""
        if not (
            self.name == other.name
            and isinstance(other, ConflictTrigger)
            and self.obj is other.obj
        ):
            return False
        if self.side is not None and other.side is not None and self.side == other.side:
            return False
        return True


class AtomicityTrigger(ConflictTrigger):
    """Alias of :class:`ConflictTrigger` with a self-documenting name.

    The paper triggers atomicity violations with the same object-identity
    predicate as data races (Section 2, Figure 3); a distinct class keeps
    reports and regression suites readable.
    """

    __slots__ = ()


class DeadlockTrigger(BTrigger):
    """Breakpoint for lock-inversion deadlocks (Figure 8).

    Captures ``lock1`` (already held) and ``lock2`` (about to be
    acquired).  Two instances match when they exhibit opposite order:
    ``a.lock1 is b.lock2 and a.lock2 is b.lock1`` — the classic ABBA
    cycle, as in the Jigsaw ``killClients`` / ``clientConnectionFinished``
    deadlock (Figure 2/9).
    """

    __slots__ = ("lock1", "lock2")

    def __init__(
        self, name: str, lock1: object, lock2: object, policy: Optional[SitePolicy] = None
    ) -> None:
        super().__init__(name, policy)
        self.lock1 = lock1
        self.lock2 = lock2

    def predicate_global(self, other: BTrigger) -> bool:
        """Joint predicate: the two lock pairs form an inversion."""
        return (
            self.name == other.name
            and isinstance(other, DeadlockTrigger)
            and self.lock1 is other.lock2
            and self.lock2 is other.lock1
        )


class GroupTrigger(ConflictTrigger):
    """An N-thread concurrent breakpoint ``(l1, ..., lk, phi)``.

    The paper (Section 2): "a concurrent breakpoint (l1, l2, l3, phi)
    involves three threads.  Our implementation ... can be extended
    accordingly."  This is that extension: the breakpoint fires when
    ``parties`` distinct threads are simultaneously postponed at
    same-name sites referencing the same object; on a match the threads
    are released in ascending ``rank`` order (rank 0 acts first) — the
    k-ary generalisation of the first/second action flag.

    ``rank`` replaces ``is_first_action`` semantically; pass any value
    for the flag when calling ``trigger_here`` (it is ignored for
    groups).
    """

    __slots__ = ("parties", "rank")

    def __init__(
        self,
        name: str,
        obj: object,
        parties: int,
        rank: int,
        policy: Optional[SitePolicy] = None,
        local: Optional[Callable[[], bool]] = None,
        side: Optional[str] = None,
    ) -> None:
        super().__init__(name, obj, policy=policy, local=local, side=side)
        if parties < 2:
            raise ValueError("a group breakpoint needs at least two parties")
        if not 0 <= rank < parties:
            raise ValueError("rank must be in [0, parties)")
        self.parties = parties
        self.rank = rank

    def predicate_global(self, other: BTrigger) -> bool:
        """Joint predicate over the whole ``parties``-sized party."""
        return (
            isinstance(other, GroupTrigger)
            and other.parties == self.parties
            and super().predicate_global(other)
        )


class PredicateTrigger(BTrigger):
    """Fully general breakpoint with callable predicate halves.

    ``state`` holds whatever local values the predicates need; ``local``
    receives this instance, ``glob`` receives ``(this, other)``.  Name
    equality and instance-type are checked before ``glob`` runs, mirroring
    the built-in triggers.
    """

    __slots__ = ("state", "_local", "_glob")

    def __init__(
        self,
        name: str,
        state: object = None,
        local: Optional[Callable[["PredicateTrigger"], bool]] = None,
        glob: Optional[Callable[["PredicateTrigger", "PredicateTrigger"], bool]] = None,
        policy: Optional[SitePolicy] = None,
    ) -> None:
        super().__init__(name, policy)
        self.state = state
        self._local = local
        self._glob = glob

    def predicate_local(self) -> bool:
        """Evaluate the user-supplied local half."""
        if self._local is None:
            return True
        return bool(self._local(self))

    def predicate_global(self, other: BTrigger) -> bool:
        """Evaluate the user-supplied joint predicate."""
        if self.name != other.name or not isinstance(other, PredicateTrigger):
            return False
        if self._glob is None:
            return True
        return bool(self._glob(self, other))
