"""Atomizer-style reduction-based atomicity checking (Flanagan & Freund,
paper ref [11]).

A second, independent algorithm for the same question the AVIO-pattern
checker (:mod:`repro.detect.atomicity`) answers.  Atomizer applies
Lipton's theory of reduction: a block is atomic if its operations form
the pattern ``R* [N] L*`` where

* lock **acquires** are right-movers (R) — they commute later,
* lock **releases** are left-movers (L) — they commute earlier,
* **race-free** accesses are both-movers (B, compatible with any slot),
* **racy** accesses (per the Eraser lockset analysis) are non-movers (N),
  of which at most one may appear, between the R-phase and the L-phase.

A region violating the pattern cannot be serialised by commuting its
operations to a single point — an atomicity warning, even if *this*
schedule happened to be benign.  That predictive power is the practical
difference from the witness-based AVIO checker, and the two are
cross-checked in ``tests/detect/test_atomizer.py``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Set

from repro.sim.trace import OP, Trace

from .lockset import LocksetDetector

__all__ = ["AtomizerReport", "atomizer_violations"]


@dataclasses.dataclass(frozen=True)
class AtomizerReport:
    """A marked region whose event sequence is not reducible."""

    region: str
    thread: str
    #: The op sequence as mover classes, e.g. "RBNBLN".
    pattern: str
    #: The event (op, loc) that broke the pattern.
    violation_op: str
    violation_loc: str

    def render(self) -> str:
        """The CalFuzzer-style atomizer report text."""
        return (
            f"Atomicity (reduction) violation in region {self.region!r} "
            f"[{self.thread}]: pattern {self.pattern!r} is not R*[N]L* — "
            f"{self.violation_op} at {self.violation_loc} cannot move."
        )


def _racy_cells(trace: Trace) -> Set[Any]:
    """Cells the lockset analysis considers race-prone."""
    det = LocksetDetector().feed(trace)
    racy = set()
    for cell, info in det._cells.items():  # noqa: SLF001 - same package
        if info.reported:
            racy.add(cell)
    return racy


def atomizer_violations(trace: Trace) -> List[AtomizerReport]:
    """Check every marked atomic region for Lipton reducibility."""
    racy = _racy_cells(trace)
    reports: List[AtomizerReport] = []
    # Per thread: stack of (label, mover-string, phase, violation)
    open_regions: Dict[int, List[dict]] = {}

    def classify(ev) -> Optional[str]:
        if ev.op == OP.ACQUIRE:
            return "R"
        if ev.op == OP.RELEASE:
            return "L"
        if ev.op in (OP.READ, OP.WRITE):
            return "N" if ev.obj in racy else "B"
        return None  # other ops don't affect reducibility here

    for ev in trace:
        if ev.op == OP.ATOMIC_BEGIN:
            open_regions.setdefault(ev.tid, []).append(
                {"label": ev.extra or "", "tname": ev.tname, "pattern": [],
                 "phase": "pre", "violation": None}
            )
            continue
        if ev.op == OP.ATOMIC_END:
            stack = open_regions.get(ev.tid)
            if not stack:
                continue
            region = stack.pop()
            if region["violation"] is not None:
                op, loc = region["violation"]
                reports.append(
                    AtomizerReport(
                        region=region["label"],
                        thread=region["tname"],
                        pattern="".join(region["pattern"]),
                        violation_op=op,
                        violation_loc=loc,
                    )
                )
            continue

        for region in open_regions.get(ev.tid, ()):
            mover = classify(ev)
            if mover is None:
                continue
            region["pattern"].append(mover)
            if region["violation"] is not None:
                continue
            phase = region["phase"]
            # Phases: pre (R/B ok) -> committed (after N or first L) ->
            # post (only L/B ok).  A second N, or an R after the commit
            # point, breaks R*[N]L*.
            if mover == "B":
                continue
            if mover == "R":
                if phase != "pre":
                    region["violation"] = (ev.op, ev.loc)
            elif mover == "N":
                if phase == "pre":
                    region["phase"] = "committed"
                else:
                    region["violation"] = (ev.op, ev.loc)
            elif mover == "L":
                region["phase"] = "committed"
    return reports
