"""Eraser-style lockset data-race detection (Savage et al., cited as [37]).

The paper's Methodology II starts by running "an off-the-shelf data race
detector such as Eraser to find all potential conflicting states".  This
is that detector, operating on kernel traces.

Per shared location ``v`` the classic state machine is tracked:

* **Virgin** — never accessed;
* **Exclusive** — touched by a single thread (no lockset refinement yet);
* **Shared** — read by multiple threads (refine ``C(v)`` but don't warn);
* **Shared-Modified** — written by multiple threads: refine ``C(v)`` and
  warn when it becomes empty.

``C(v)`` is the intersection of the lock sets held at each refining
access.  A warning names the two most recent conflicting access sites —
exactly what a breakpoint insertion needs.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.sim.trace import OP, Trace

from ._scan import HeldLockTracker
from .reports import RaceReport, dedupe

__all__ = ["LocksetDetector", "eraser_races"]


class _State(enum.Enum):
    VIRGIN = 0
    EXCLUSIVE = 1
    SHARED = 2
    SHARED_MODIFIED = 3


@dataclasses.dataclass
class _CellInfo:
    state: _State = _State.VIRGIN
    first_tid: Optional[int] = None
    lockset: Optional[Set[Any]] = None  # None = not yet refined (full set)
    last_write: Optional[Tuple[str, str]] = None  # (loc, tname)
    last_access: Optional[Tuple[str, str, str]] = None  # (loc, tname, op)
    reported: bool = False


class LocksetDetector:
    """Streaming Eraser over one trace."""

    def __init__(self) -> None:
        self._tracker = HeldLockTracker()
        self._cells: Dict[Any, _CellInfo] = {}
        self.reports: List[RaceReport] = []

    def feed(self, trace: Trace) -> "LocksetDetector":
        """Consume a trace's accesses into the lockset state; returns self."""
        for ev in trace:
            self._tracker.update(ev)
            if ev.op == OP.READ or ev.op == OP.WRITE:
                self._access(ev)
        return self

    # ------------------------------------------------------------------
    def _access(self, ev) -> None:
        cell = ev.obj
        info = self._cells.get(cell)
        if info is None:
            info = self._cells[cell] = _CellInfo()
        is_write = ev.op == OP.WRITE
        held = set(self._tracker.held(ev.tid))

        if info.state is _State.VIRGIN:
            info.state = _State.EXCLUSIVE
            info.first_tid = ev.tid
        elif info.state is _State.EXCLUSIVE:
            if ev.tid != info.first_tid:
                info.state = _State.SHARED_MODIFIED if is_write else _State.SHARED
                info.lockset = set(held)
        elif info.state is _State.SHARED:
            self._refine(info, held)
            if is_write:
                info.state = _State.SHARED_MODIFIED
        # SHARED_MODIFIED falls through to the refinement below.
        if info.state is _State.SHARED_MODIFIED:
            self._refine(info, held)
            if not info.lockset and not info.reported:
                self._report(cell, info, ev, is_write)

        if is_write:
            info.last_write = (ev.loc, ev.tname)
        info.last_access = (ev.loc, ev.tname, "write" if is_write else "read")

    @staticmethod
    def _refine(info: _CellInfo, held: Set[Any]) -> None:
        if info.lockset is None:
            info.lockset = set(held)
        else:
            info.lockset &= held

    def _report(self, cell, info: _CellInfo, ev, is_write: bool) -> None:
        info.reported = True
        prev_loc, prev_thread, prev_op = info.last_access or ("?", "?", "?")
        # Prefer pairing against the last *write* when this access is a read.
        if not is_write and info.last_write is not None:
            prev_loc, prev_thread = info.last_write
            prev_op = "write"
        cell_name = getattr(cell, "name", repr(cell))
        self.reports.append(
            RaceReport(
                name=f"race:{cell_name}",
                loc1=prev_loc,
                loc2=ev.loc,
                cell=cell_name,
                thread1=prev_thread,
                thread2=ev.tname,
                op1=prev_op,
                op2="write" if is_write else "read",
            )
        )


def eraser_races(trace: Trace) -> List[RaceReport]:
    """All Eraser warnings for a trace, deduplicated by location pair."""
    det = LocksetDetector().feed(trace)
    return dedupe(det.reports)  # type: ignore[return-value]
