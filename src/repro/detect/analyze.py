"""One-stop dynamic analysis: every detector over one trace.

``analyze(trace)`` runs the full battery — Eraser locksets, vector-clock
happens-before, lock-order graph, lock contentions, AVIO atomicity and
Atomizer reduction — and returns a structured :class:`AnalysisReport`.
This is the "run the conflict detector" step of both methodologies as a
single call, and the backend of ``python -m repro analyze``.

Two derived views matter downstream:

* :meth:`AnalysisReport.unique_findings` collapses cross-detector
  duplicates (lockset and happens-before usually flag the same access
  pair) under :func:`~repro.detect.reports.canonical_report_key`, in
  canonical key order — the input of the :mod:`repro.infer` candidate
  generator.
* :func:`analysis_to_dict` / :func:`analysis_from_dict` are the one
  JSON serialization shared by ``repro analyze --json`` and the
  inference pipeline's cacheable reports.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List

from repro.sim.trace import Trace

from .atomicity import atomicity_violations
from .atomizer import AtomizerReport, atomizer_violations
from .contention import lock_contentions
from .hbrace import hb_races
from .lockgraph import potential_deadlocks
from .lockset import eraser_races
from .reports import (
    AtomicityReport,
    BugReport,
    ContentionReport,
    DeadlockReport,
    RaceReport,
    canonical_report_key,
    report_from_dict,
    report_to_dict,
)

__all__ = [
    "AnalysisReport",
    "analyze",
    "analysis_to_dict",
    "analysis_from_dict",
    "atomizer_report_to_dict",
    "atomizer_report_from_dict",
]

#: Version of the ``analysis_to_dict`` wire layout.
ANALYSIS_SCHEMA = 1


@dataclasses.dataclass
class AnalysisReport:
    """Everything the detectors found in one trace."""

    lockset_races: List[RaceReport]
    hb_races: List[RaceReport]
    deadlocks: List[DeadlockReport]
    contentions: List[ContentionReport]
    atomicity: List[AtomicityReport]
    reduction: List[AtomizerReport]

    @property
    def total_findings(self) -> int:
        """Total findings across all detectors."""
        return (
            len(self.lockset_races)
            + len(self.hb_races)
            + len(self.deadlocks)
            + len(self.contentions)
            + len(self.atomicity)
            + len(self.reduction)
        )

    def breakpoint_candidates(self):
        """The findings that directly suggest breakpoint insertions
        (Methodology I inputs): races, deadlocks and atomicity
        violations.  Contentions are Methodology II raw material."""
        return [*self.lockset_races, *self.deadlocks, *self.atomicity]

    def unique_findings(self) -> List[BugReport]:
        """All location-pair findings, deduplicated across detectors.

        Lockset and vector-clock happens-before routinely report the
        *same* access pair (they differ in the proof, not the race);
        keying on :func:`~repro.detect.reports.canonical_report_key`
        keeps one report per distinct conflict so a consumer — above
        all the :mod:`repro.infer` candidate generator — never confirms
        one bug twice.  The first-reporting detector's record wins
        (scan order: lockset, happens-before, deadlocks, contentions,
        AVIO); the result is sorted by canonical key, so it is a pure
        function of the set of findings, independent of detector
        emission order.
        """
        unique: Dict[tuple, BugReport] = {}
        for report in (
            *self.lockset_races,
            *self.hb_races,
            *self.deadlocks,
            *self.contentions,
            *self.atomicity,
        ):
            unique.setdefault(canonical_report_key(report), report)
        return [unique[key] for key in sorted(unique)]

    def render(self) -> str:
        """Human-readable multi-section report text."""
        sections = [
            ("Data races (Eraser lockset)", self.lockset_races),
            ("Data races (happens-before witnesses)", self.hb_races),
            ("Potential deadlocks (lock-order graph)", self.deadlocks),
            ("Lock contentions", self.contentions),
            ("Atomicity violations (AVIO witnesses)", self.atomicity),
            ("Atomicity violations (reduction analysis)", self.reduction),
        ]
        lines = []
        for title, findings in sections:
            lines.append(f"== {title}: {len(findings)}")
            for f in findings:
                body = f.render()
                lines.extend("  " + line for line in body.splitlines())
        return "\n".join(lines)


def analyze(trace: Trace) -> AnalysisReport:
    """Run every detector over ``trace``."""
    return AnalysisReport(
        lockset_races=list(eraser_races(trace)),
        hb_races=list(hb_races(trace)),
        deadlocks=list(potential_deadlocks(trace)),
        contentions=list(lock_contentions(trace)),
        atomicity=list(atomicity_violations(trace)),
        reduction=list(atomizer_violations(trace)),
    )


# ---------------------------------------------------------------------------
# JSON serialization — shared by `repro analyze --json` and repro.infer
# ---------------------------------------------------------------------------


def atomizer_report_to_dict(report: AtomizerReport) -> Dict[str, Any]:
    """One :class:`AtomizerReport` as a JSON dict (kind ``"reduction"``).

    Atomizer reports are not :class:`~repro.detect.reports.BugReport`
    subclasses (they carry one violating site, not a location pair), so
    they get their own kind tag next to :func:`report_to_dict`'s.
    """
    doc = dataclasses.asdict(report)
    doc["kind"] = "reduction"
    return doc


def atomizer_report_from_dict(doc: Dict[str, Any]) -> AtomizerReport:
    """Inverse of :func:`atomizer_report_to_dict` (ValueError on junk)."""
    data = dict(doc)
    if data.pop("kind", None) != "reduction":
        raise ValueError(f"not a reduction report: {doc!r}")
    known = {f.name for f in dataclasses.fields(AtomizerReport)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown reduction report field(s): {sorted(unknown)}")
    return AtomizerReport(**data)


def analysis_to_dict(report: AnalysisReport) -> Dict[str, Any]:
    """The whole :class:`AnalysisReport` as one JSON-able document.

    Per-detector lists keep their (deterministic, trace-derived) order;
    every element is the kind-tagged dict of
    :func:`~repro.detect.reports.report_to_dict`, so the document is
    canonical-JSON fingerprintable and round-trips losslessly through
    :func:`analysis_from_dict`.  This is the payload of
    ``repro analyze --json`` and the ``analysis`` section of an
    inference report.
    """
    return {
        "schema": ANALYSIS_SCHEMA,
        "lockset_races": [report_to_dict(r) for r in report.lockset_races],
        "hb_races": [report_to_dict(r) for r in report.hb_races],
        "deadlocks": [report_to_dict(r) for r in report.deadlocks],
        "contentions": [report_to_dict(r) for r in report.contentions],
        "atomicity": [report_to_dict(r) for r in report.atomicity],
        "reduction": [atomizer_report_to_dict(r) for r in report.reduction],
    }


def analysis_from_dict(doc: Dict[str, Any]) -> AnalysisReport:
    """Inverse of :func:`analysis_to_dict` (ValueError on unknown shape)."""
    schema = doc.get("schema")
    if schema != ANALYSIS_SCHEMA:
        raise ValueError(f"unsupported analysis schema {schema!r}")
    known = {
        "schema", "lockset_races", "hb_races", "deadlocks",
        "contentions", "atomicity", "reduction",
    }
    unknown = set(doc) - known
    if unknown:
        raise ValueError(f"unknown analysis field(s): {sorted(unknown)}")
    return AnalysisReport(
        lockset_races=[report_from_dict(r) for r in doc.get("lockset_races", [])],
        hb_races=[report_from_dict(r) for r in doc.get("hb_races", [])],
        deadlocks=[report_from_dict(r) for r in doc.get("deadlocks", [])],
        contentions=[report_from_dict(r) for r in doc.get("contentions", [])],
        atomicity=[report_from_dict(r) for r in doc.get("atomicity", [])],
        reduction=[atomizer_report_from_dict(r) for r in doc.get("reduction", [])],
    )
