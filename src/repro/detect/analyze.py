"""One-stop dynamic analysis: every detector over one trace.

``analyze(trace)`` runs the full battery — Eraser locksets, vector-clock
happens-before, lock-order graph, lock contentions, AVIO atomicity and
Atomizer reduction — and returns a structured :class:`AnalysisReport`.
This is the "run the conflict detector" step of both methodologies as a
single call, and the backend of ``python -m repro analyze``.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.sim.trace import Trace

from .atomicity import atomicity_violations
from .atomizer import AtomizerReport, atomizer_violations
from .contention import lock_contentions
from .hbrace import hb_races
from .lockgraph import potential_deadlocks
from .lockset import eraser_races
from .reports import AtomicityReport, ContentionReport, DeadlockReport, RaceReport

__all__ = ["AnalysisReport", "analyze"]


@dataclasses.dataclass
class AnalysisReport:
    """Everything the detectors found in one trace."""

    lockset_races: List[RaceReport]
    hb_races: List[RaceReport]
    deadlocks: List[DeadlockReport]
    contentions: List[ContentionReport]
    atomicity: List[AtomicityReport]
    reduction: List[AtomizerReport]

    @property
    def total_findings(self) -> int:
        """Total findings across all detectors."""
        return (
            len(self.lockset_races)
            + len(self.hb_races)
            + len(self.deadlocks)
            + len(self.contentions)
            + len(self.atomicity)
            + len(self.reduction)
        )

    def breakpoint_candidates(self):
        """The findings that directly suggest breakpoint insertions
        (Methodology I inputs): races, deadlocks and atomicity
        violations.  Contentions are Methodology II raw material."""
        return [*self.lockset_races, *self.deadlocks, *self.atomicity]

    def render(self) -> str:
        """Human-readable multi-section report text."""
        sections = [
            ("Data races (Eraser lockset)", self.lockset_races),
            ("Data races (happens-before witnesses)", self.hb_races),
            ("Potential deadlocks (lock-order graph)", self.deadlocks),
            ("Lock contentions", self.contentions),
            ("Atomicity violations (AVIO witnesses)", self.atomicity),
            ("Atomicity violations (reduction analysis)", self.reduction),
        ]
        lines = []
        for title, findings in sections:
            lines.append(f"== {title}: {len(findings)}")
            for f in findings:
                body = f.render()
                lines.extend("  " + line for line in body.splitlines())
        return "\n".join(lines)


def analyze(trace: Trace) -> AnalysisReport:
    """Run every detector over ``trace``."""
    return AnalysisReport(
        lockset_races=list(eraser_races(trace)),
        hb_races=list(hb_races(trace)),
        deadlocks=list(potential_deadlocks(trace)),
        contentions=list(lock_contentions(trace)),
        atomicity=list(atomicity_violations(trace)),
        reduction=list(atomizer_violations(trace)),
    )
