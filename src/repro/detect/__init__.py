"""``repro.detect`` — dynamic analyses over simulation traces.

These are the "testing tool" substrates of the paper's two breakpoint
insertion methodologies (Section 5):

* Methodology I consumes bug reports — :func:`eraser_races` /
  :func:`hb_races` for data races, :func:`potential_deadlocks` for lock
  inversions, :func:`atomicity_violations` for unserializable regions —
  and each report suggests the corresponding breakpoint insertions.
* Methodology II consumes :func:`lock_contentions`, probing each
  contention pair with a breakpoint in both resolution orders.
"""

from .analyze import (
    AnalysisReport,
    analysis_from_dict,
    analysis_to_dict,
    analyze,
    atomizer_report_from_dict,
    atomizer_report_to_dict,
)
from .atomicity import UNSERIALIZABLE, atomicity_violations
from .atomizer import AtomizerReport, atomizer_violations
from .contention import lock_contentions
from .hbrace import HBDetector, hb_races
from .lockgraph import LockGraph, potential_deadlocks
from .lockset import LocksetDetector, eraser_races
from .reports import (
    AtomicityReport,
    BugReport,
    ContentionReport,
    DeadlockReport,
    Insertion,
    RaceReport,
    canonical_report_key,
    dedupe,
    report_from_dict,
    report_to_dict,
)
from .vectorclock import VectorClock

__all__ = [
    "AnalysisReport",
    "analyze",
    "analysis_to_dict",
    "analysis_from_dict",
    "atomizer_report_to_dict",
    "atomizer_report_from_dict",
    "canonical_report_key",
    "report_to_dict",
    "report_from_dict",
    "UNSERIALIZABLE",
    "atomicity_violations",
    "AtomizerReport",
    "atomizer_violations",
    "lock_contentions",
    "HBDetector",
    "hb_races",
    "LockGraph",
    "potential_deadlocks",
    "LocksetDetector",
    "eraser_races",
    "AtomicityReport",
    "BugReport",
    "ContentionReport",
    "DeadlockReport",
    "Insertion",
    "RaceReport",
    "dedupe",
    "VectorClock",
]
