"""Happens-before (vector-clock) data-race detection.

The precise companion to the Eraser lockset heuristic: an access pair is a
race iff the two accesses conflict (same cell, at least one write) and
their vector clocks are concurrent.  Happens-before edges come from:

* lock releases → subsequent acquires of the same lock;
* ``notify`` → the notified ``wait`` return;
* thread fork → child start, thread end → ``join`` return;
* semaphore V → P hand-off, event set → wait return, barrier episodes.

Lockset warns about *potential* races on other schedules; happens-before
confirms races in *this* schedule.  Methodology II wants the former
(candidate conflicts to probe with breakpoints), precision work wants the
latter; tests cross-check the two.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Tuple

from repro.sim.trace import OP, Trace

from .reports import RaceReport, dedupe
from .vectorclock import VectorClock

__all__ = ["HBDetector", "hb_races"]


@dataclasses.dataclass
class _Access:
    vc: VectorClock
    loc: str
    tname: str
    tid: int


class HBDetector:
    """Vector-clock race detector over one trace.

    Keeps, per cell, the last write and the reads since that write —
    sufficient to find at least one witness per racy location pair
    (a full FastTrack epoch optimisation is unnecessary at our scale).
    """

    def __init__(self) -> None:
        self._clock: Dict[int, VectorClock] = {}
        self._sync: Dict[Tuple[str, Any], VectorClock] = {}
        self._last_write: Dict[Any, _Access] = {}
        self._reads: Dict[Any, List[_Access]] = {}
        self.reports: List[RaceReport] = []

    # ------------------------------------------------------------------
    def _vc(self, tid: int) -> VectorClock:
        vc = self._clock.get(tid)
        if vc is None:
            vc = self._clock[tid] = VectorClock({tid: 1})
        return vc

    def _merge_from(self, kind: str, obj: Any, tid: int) -> None:
        src = self._sync.get((kind, obj))
        if src is not None:
            self._vc(tid).join(src)

    def _publish(self, kind: str, obj: Any, tid: int) -> None:
        vc = self._vc(tid)
        slot = self._sync.get((kind, obj))
        if slot is None:
            self._sync[(kind, obj)] = vc.copy()
        else:
            slot.join(vc)
        vc.tick(tid)

    # ------------------------------------------------------------------
    def feed(self, trace: Trace) -> "HBDetector":
        """Consume a trace into the happens-before state; returns self."""
        for ev in trace:
            op = ev.op
            if op == OP.READ or op == OP.WRITE:
                self._access(ev, is_write=op == OP.WRITE)
            elif op == OP.ACQUIRE:
                self._merge_from("lock", ev.obj, ev.tid)
            elif op == OP.RELEASE:
                self._publish("lock", ev.obj, ev.tid)
            elif op == OP.NOTIFY:
                self._publish("cond", ev.obj, ev.tid)
            elif op == OP.WAIT_EXIT:
                self._merge_from("cond", ev.obj, ev.tid)
            elif op == OP.FORK:
                child = ev.obj
                self._vc(child.tid).join(self._vc(ev.tid))
                self._vc(ev.tid).tick(ev.tid)
            elif op == OP.END or op == OP.FAIL:
                self._publish("thread", ev.obj, ev.tid)
            elif op == OP.JOINED:
                self._merge_from("thread", ev.obj, ev.tid)
            elif op == OP.SEM_V:
                self._publish("sem", ev.obj, ev.tid)
            elif op == OP.SEM_P:
                self._merge_from("sem", ev.obj, ev.tid)
            elif op == OP.EVENT_SET:
                self._publish("event", ev.obj, ev.tid)
            elif op == OP.EVENT_WAIT:
                self._merge_from("event", ev.obj, ev.tid)
            elif op == OP.BARRIER:
                # Conservative: joint VC published at each arrival, merged
                # on the release step is approximated by merge+publish.
                self._merge_from("barrier", ev.obj, ev.tid)
                self._publish("barrier", ev.obj, ev.tid)
        return self

    # ------------------------------------------------------------------
    def _access(self, ev, is_write: bool) -> None:
        cell = ev.obj
        vc = self._vc(ev.tid).copy()
        acc = _Access(vc, ev.loc, ev.tname, ev.tid)
        cell_name = getattr(cell, "name", repr(cell))

        lw = self._last_write.get(cell)
        if lw is not None and lw.tid != ev.tid and lw.vc.concurrent(vc):
            self._emit(cell_name, lw, acc, "write", "write" if is_write else "read")
        if is_write:
            for rd in self._reads.get(cell, ()):
                if rd.tid != ev.tid and rd.vc.concurrent(vc):
                    self._emit(cell_name, rd, acc, "read", "write")
            self._last_write[cell] = acc
            self._reads[cell] = []
        else:
            self._reads.setdefault(cell, []).append(acc)
        self._vc(ev.tid).tick(ev.tid)

    def _emit(self, cell_name: str, a: _Access, b: _Access, op1: str, op2: str) -> None:
        self.reports.append(
            RaceReport(
                name=f"race:{cell_name}",
                loc1=a.loc,
                loc2=b.loc,
                cell=cell_name,
                thread1=a.tname,
                thread2=b.tname,
                op1=op1,
                op2=op2,
            )
        )


def hb_races(trace: Trace) -> List[RaceReport]:
    """All vector-clock races witnessed in the trace, deduplicated."""
    det = HBDetector().feed(trace)
    return dedupe(det.reports)  # type: ignore[return-value]
