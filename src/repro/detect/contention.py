"""Lock-contention reporting (Methodology II, paper Section 5).

For the log4j missed-notification case study the paper runs "a conflict
detector" and receives a list of *lock contentions* — pairs of program
sites that acquire the same monitor from different threads.  Each pair is
then probed with a concurrent breakpoint in both resolution orders.

This detector produces that list: for every lock, every unordered pair of
distinct acquisition sites used by at least two distinct threads overall.
Site pairs are ordered deterministically so experiment tables are stable.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Set

from repro.sim.trace import OP, Trace

from .reports import ContentionReport

__all__ = ["lock_contentions"]


def lock_contentions(trace: Trace, include_self_pairs: bool = False) -> List[ContentionReport]:
    """All contention pairs witnessed in a trace.

    ``include_self_pairs`` additionally reports a site contending with
    itself when two different threads acquire the lock at the same
    location (relevant for symmetric worker threads).
    """
    sites: Dict[Any, Dict[str, Set[str]]] = {}
    for ev in trace:
        if ev.op == OP.ACQUIRE or ev.op == OP.ACQUIRE_REQ:
            sites.setdefault(ev.obj, {}).setdefault(ev.loc, set()).add(ev.tname)

    out: List[ContentionReport] = []
    for lock, by_site in sites.items():
        all_threads = set().union(*by_site.values())
        if len(all_threads) < 2:
            continue  # never actually shared
        lock_name = getattr(lock, "name", str(lock))
        for loc1, loc2 in itertools.combinations(sorted(by_site), 2):
            # Contention requires the two sites to be reachable by
            # different threads.
            if by_site[loc1] | by_site[loc2] > by_site[loc1] & by_site[loc2] or len(
                by_site[loc1] | by_site[loc2]
            ) >= 2:
                out.append(
                    ContentionReport(
                        name=f"contention:{lock_name}:{loc1}|{loc2}",
                        loc1=loc1,
                        loc2=loc2,
                        lock=lock_name,
                    )
                )
        if include_self_pairs:
            for loc, threads in sorted(by_site.items()):
                if len(threads) >= 2:
                    out.append(
                        ContentionReport(
                            name=f"contention:{lock_name}:{loc}|{loc}",
                            loc1=loc,
                            loc2=loc,
                            lock=lock_name,
                        )
                    )
    return out
