"""Bug reports and breakpoint suggestions (Methodology I, paper Section 5).

The paper's workflow: a testing tool (CalFuzzer/Eraser) emits a report
naming two program locations and the shared object involved; the developer
inserts a pair of ``triggerHere`` calls at those locations.  Our detectors
emit these dataclasses, each of which can render itself in the paper's
report format and *suggest* the corresponding breakpoint — the
``(l1, l2, phi)`` spec plus the two insertion descriptors.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.core.spec import CBSpec

__all__ = [
    "Insertion",
    "BugReport",
    "RaceReport",
    "DeadlockReport",
    "ContentionReport",
    "AtomicityReport",
    "canonical_report_key",
    "report_to_dict",
    "report_from_dict",
]


@dataclasses.dataclass(frozen=True)
class Insertion:
    """One ``trigger_here`` insertion: where, and with which action flag."""

    loc: str
    is_first_action: bool
    trigger_kind: str  # ConflictTrigger | DeadlockTrigger | AtomicityTrigger
    args_hint: str  # human description of the constructor arguments

    def __str__(self) -> str:
        return (
            f"insert ({self.trigger_kind}(name, {self.args_hint}))"
            f".trigger_here({self.is_first_action}, GLOBAL.timeout) at {self.loc}"
        )


@dataclasses.dataclass(frozen=True)
class BugReport:
    """Base class: a detector finding tied to two locations."""

    name: str
    loc1: str
    loc2: str

    kind: str = dataclasses.field(default="generic", init=False)

    def spec(self) -> CBSpec:
        """The declarative ``(l1, l2, phi)`` breakpoint this report implies."""
        return CBSpec(self.name, self.loc1, self.loc2, kind=self.kind)

    def insertions(self) -> Tuple[Insertion, Insertion]:
        """The two ``trigger_here`` lines to insert."""
        raise NotImplementedError

    def render(self) -> str:
        """The CalFuzzer-style report text (Section 5 format)."""
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class RaceReport(BugReport):
    """A data race: conflicting accesses to one cell, at least one write."""

    cell: str = ""
    thread1: str = ""
    thread2: str = ""
    op1: str = "write"
    op2: str = "read"

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", "race")

    def render(self) -> str:
        """The paper's CalFuzzer-style race report (Section 5)."""
        return (
            "Data race detected between\n"
            f"  access of {self.cell} ({self.op1}) at {self.loc1}, and\n"
            f"  access of {self.cell} ({self.op2}) at {self.loc2}."
        )

    def insertions(self) -> Tuple[Insertion, Insertion]:
        """A ConflictTrigger pair at the two access sites."""
        hint = f"ref to {self.cell}"
        return (
            Insertion(self.loc1, True, "ConflictTrigger", hint),
            Insertion(self.loc2, False, "ConflictTrigger", hint),
        )


@dataclasses.dataclass(frozen=True)
class DeadlockReport(BugReport):
    """A potential ABBA deadlock from the lock-order graph.

    ``loc1`` is where ``lock2`` is acquired while holding ``lock1``;
    ``loc2`` is the reverse-order site.
    """

    lock1: str = ""
    lock2: str = ""
    thread1: str = ""
    thread2: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", "deadlock")

    def render(self) -> str:
        """The paper's CalFuzzer-style deadlock report (Section 5)."""
        return (
            "Deadlock found:\n"
            f"  {self.thread1 or 'ThreadA'} trying to acquire lock {self.lock2} while\n"
            f"    holding lock {self.lock1} at {self.loc1}\n"
            f"  {self.thread2 or 'ThreadB'} trying to acquire lock {self.lock1} while\n"
            f"    holding lock {self.lock2} at {self.loc2}"
        )

    def insertions(self) -> Tuple[Insertion, Insertion]:
        """A DeadlockTrigger pair at the two acquisition sites."""
        return (
            Insertion(self.loc1, True, "DeadlockTrigger", f"{self.lock1}, {self.lock2}"),
            Insertion(self.loc2, False, "DeadlockTrigger", f"{self.lock2}, {self.lock1}"),
        )


@dataclasses.dataclass(frozen=True)
class ContentionReport(BugReport):
    """Two sites contending for the same lock (Methodology II raw material).

    Not a bug by itself — the paper enumerates contentions, inserts a
    breakpoint per pair, and tries both resolution orders to localise a
    missed-notification stall.
    """

    lock: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", "contention")

    def render(self) -> str:
        """The lock-contention report text."""
        return f"Lock contention:\n  {self.loc1},\n  {self.loc2}"

    def insertions(self) -> Tuple[Insertion, Insertion]:
        """A ConflictTrigger pair at the two contending sites."""
        hint = f"monitor {self.lock}"
        return (
            Insertion(self.loc1, True, "ConflictTrigger", hint),
            Insertion(self.loc2, False, "ConflictTrigger", hint),
        )


@dataclasses.dataclass(frozen=True)
class AtomicityReport(BugReport):
    """An unserializable interleaving inside an intended-atomic region.

    ``loc1``/``loc2`` are the region's two local accesses; ``loc_remote``
    is the interleaved conflicting access by the other thread; ``pattern``
    is the AVIO-style triple, e.g. ``('read', 'write', 'read')``.
    """

    cell: str = ""
    region: str = ""
    loc_remote: str = ""
    pattern: Tuple[str, str, str] = ("read", "write", "read")
    thread_local: str = ""
    thread_remote: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", "atomicity")

    def render(self) -> str:
        """The atomicity-violation report text."""
        p = "-".join(x[0].upper() for x in self.pattern)
        return (
            f"Atomicity violation ({p}) in region {self.region!r}:\n"
            f"  {self.thread_local} accesses {self.cell} at {self.loc1} then {self.loc2},\n"
            f"  interleaved {self.pattern[1]} by {self.thread_remote} at {self.loc_remote}."
        )

    def insertions(self) -> Tuple[Insertion, Insertion]:
        """An AtomicityTrigger pair around the unserializable region."""
        hint = f"ref to {self.cell}"
        return (
            Insertion(self.loc_remote, True, "AtomicityTrigger", hint),
            Insertion(self.loc1, False, "AtomicityTrigger", hint),
        )


def canonical_report_key(report: BugReport) -> Tuple:
    """Detector-independent identity of one finding.

    Lockset and vector-clock happens-before often flag the *same* access
    pair (they differ in how they prove it racy, not in what is racing),
    so the key deliberately excludes the reporting detector and the
    report ``name`` prefix: a race is identified by its cell and its
    unordered location pair, a deadlock by its lock pair and sites, an
    atomicity violation by cell, region and the full site triple.
    :func:`repro.detect.analyze.analyze` uses this to collapse
    cross-detector duplicates so downstream consumers (the
    :mod:`repro.infer` candidate generator above all) never confirm one
    bug twice.
    """
    locs = tuple(sorted((report.loc1, report.loc2)))
    if isinstance(report, RaceReport):
        return ("race", report.cell) + locs
    if isinstance(report, DeadlockReport):
        return ("deadlock",) + tuple(sorted((report.lock1, report.lock2))) + locs
    if isinstance(report, AtomicityReport):
        return ("atomicity", report.cell, report.region, report.loc_remote) + locs
    if isinstance(report, ContentionReport):
        return ("contention", report.lock) + locs
    return (report.kind, report.name) + locs


#: Report kind tag -> concrete dataclass, for wire-form reconstruction.
_REPORT_TYPES = {
    "race": RaceReport,
    "deadlock": DeadlockReport,
    "contention": ContentionReport,
    "atomicity": AtomicityReport,
}


def report_to_dict(report: BugReport) -> dict:
    """One report as a JSON-able dict (``kind`` selects the type).

    This is the single serialization shared by ``repro analyze --json``
    and the :mod:`repro.infer` pipeline; every value is a JSON scalar or
    a list of them, so the dict is canonical-JSON fingerprintable
    (:func:`repro.cache.canonical_json`) and round-trips losslessly
    through :func:`report_from_dict`.
    """
    doc = dataclasses.asdict(report)
    doc["kind"] = report.kind
    if isinstance(report, AtomicityReport):
        doc["pattern"] = list(report.pattern)
    return doc


def report_from_dict(doc: dict) -> BugReport:
    """Inverse of :func:`report_to_dict` (ValueError on unknown kind)."""
    data = dict(doc)
    kind = data.pop("kind", None)
    cls = _REPORT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown report kind {kind!r}")
    if cls is AtomicityReport and "pattern" in data:
        data["pattern"] = tuple(data["pattern"])
    known = {f.name for f in dataclasses.fields(cls) if f.init}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown {kind} report field(s): {sorted(unknown)}")
    return cls(**data)


def dedupe(reports: List[BugReport]) -> List[BugReport]:
    """Collapse repeated findings to one report per distinct conflict.

    The key includes the report ``name`` (which carries the cell / lock
    identity) as well as the location pair: two different cells accessed
    from the same helper lines are different races, not duplicates.
    """
    seen = set()
    out: List[BugReport] = []
    for r in reports:
        key = (r.kind, r.name, *sorted((r.loc1, r.loc2)))
        if key not in seen:
            seen.add(key)
            out.append(r)
    return out
