"""Shared trace-scanning helpers for the detectors."""

from __future__ import annotations

from typing import Any, Dict, List

from repro.sim.trace import OP, Event

__all__ = ["HeldLockTracker"]


class HeldLockTracker:
    """Replays ACQUIRE/RELEASE events to know each thread's held locks.

    The kernel records these ops only at ownership transitions (nested
    reentrant entries are silent), so a simple per-thread list is exact.
    Feed every event to :meth:`update` in trace order, then query
    :meth:`held`.
    """

    def __init__(self) -> None:
        self._held: Dict[int, List[Any]] = {}

    def update(self, ev: Event) -> None:
        """Fold one trace event into the per-thread held-lock state."""
        if ev.op == OP.ACQUIRE:
            self._held.setdefault(ev.tid, []).append(ev.obj)
        elif ev.op == OP.RELEASE:
            locks = self._held.get(ev.tid)
            if locks and ev.obj in locks:
                locks.remove(ev.obj)

    def held(self, tid: int) -> List[Any]:
        """Locks currently held by ``tid`` (insertion order)."""
        return self._held.get(tid, [])
