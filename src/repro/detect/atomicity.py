"""Atomicity-violation detection over intended-atomic regions.

Programs mark regions they *intend* to be atomic with the
``BeginAtomic``/``EndAtomic`` syscalls (the analogue of the atomicity
annotations assumed by Atomizer/AVIO, paper refs [11, 32]).  Within a
region executed by thread *t*, for each pair of consecutive accesses
``(a1, a2)`` to the same cell, an interleaved conflicting access ``r`` by
another thread is unserializable when the op triple matches one of the
four AVIO patterns:

====  ====  ====  =================================================
a1    r     a2    meaning
====  ====  ====  =================================================
R     W     R     stale second read (the StringBuffer bug's shape)
W     W     R     local read sees foreign write
W     R     W     remote read observes intermediate state
R     W     W     remote write lost
====  ====  ====  =================================================

Reports carry both local sites and the remote site — the ingredients of
an :class:`AtomicityTrigger` pair.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Tuple

from repro.sim.trace import OP, Trace

from .reports import AtomicityReport, dedupe

__all__ = ["atomicity_violations", "UNSERIALIZABLE"]

#: The four unserializable (local, remote, local) op triples.
UNSERIALIZABLE = {
    ("read", "write", "read"),
    ("write", "write", "read"),
    ("write", "read", "write"),
    ("read", "write", "write"),
}


@dataclasses.dataclass
class _Region:
    label: str
    tid: int
    tname: str
    start_seq: int
    # last access per cell inside this region: (seq, op, loc)
    last: Dict[Any, Tuple[int, str, str]] = dataclasses.field(default_factory=dict)


def atomicity_violations(trace: Trace) -> List[AtomicityReport]:
    """Scan a trace for AVIO-pattern violations of marked regions."""
    open_regions: Dict[int, List[_Region]] = {}
    # Remote accesses are found by a second pass over the events between
    # two local accesses; for efficiency we index accesses per cell.
    accesses: Dict[Any, List[Tuple[int, int, str, str, str]]] = {}
    # (seq, tid, op, loc, tname) per cell
    for ev in trace:
        if ev.op == OP.READ or ev.op == OP.WRITE:
            op = "write" if ev.op == OP.WRITE else "read"
            accesses.setdefault(ev.obj, []).append((ev.seq, ev.tid, op, ev.loc, ev.tname))

    reports: List[AtomicityReport] = []

    def check_pair(
        region: _Region, cell: Any, a1: Tuple[int, str, str], a2: Tuple[int, str, str]
    ) -> None:
        seq1, op1, loc1 = a1
        seq2, op2, loc2 = a2
        for seq_r, tid_r, op_r, loc_r, tname_r in accesses.get(cell, ()):
            if seq1 < seq_r < seq2 and tid_r != region.tid:
                if (op1, op_r, op2) in UNSERIALIZABLE:
                    cell_name = getattr(cell, "name", repr(cell))
                    reports.append(
                        AtomicityReport(
                            name=f"atomicity:{region.label}:{cell_name}",
                            loc1=loc1,
                            loc2=loc2,
                            cell=cell_name,
                            region=region.label,
                            loc_remote=loc_r,
                            pattern=(op1, op_r, op2),
                            thread_local=region.tname,
                            thread_remote=tname_r,
                        )
                    )

    for ev in trace:
        if ev.op == OP.ATOMIC_BEGIN:
            open_regions.setdefault(ev.tid, []).append(
                _Region(label=ev.extra or "", tid=ev.tid, tname=ev.tname, start_seq=ev.seq)
            )
        elif ev.op == OP.ATOMIC_END:
            stack = open_regions.get(ev.tid)
            if stack:
                stack.pop()
        elif ev.op == OP.READ or ev.op == OP.WRITE:
            stack = open_regions.get(ev.tid)
            if not stack:
                continue
            op = "write" if ev.op == OP.WRITE else "read"
            for region in stack:
                prev = region.last.get(ev.obj)
                if prev is not None:
                    check_pair(region, ev.obj, prev, (ev.seq, op, ev.loc))
                region.last[ev.obj] = (ev.seq, op, ev.loc)

    return dedupe(reports)  # type: ignore[return-value]
