"""Lock-order-graph deadlock prediction (GoodLock-style, paper refs [4, 18]).

Builds a directed graph with an edge ``l1 -> l2`` whenever some thread
acquires ``l2`` while holding ``l1``; a cycle is a *potential* deadlock
even if this particular run did not deadlock.  For two-lock cycles — the
shape of every deadlock in the paper's benchmarks, e.g. Jigsaw's
``factory``/``csList`` inversion — the report carries the two acquisition
sites and lock names, which is exactly what a :class:`DeadlockTrigger`
pair needs (Methodology I).
"""

from __future__ import annotations

from typing import Any, Dict, List, Set, Tuple

import networkx as nx

from repro.sim.trace import OP, Trace

from ._scan import HeldLockTracker
from .reports import DeadlockReport, dedupe

__all__ = ["LockGraph", "potential_deadlocks"]


class LockGraph:
    """Accumulates lock-order edges from one or more traces."""

    def __init__(self) -> None:
        self.graph = nx.DiGraph()
        # (held, acquired) -> set of (site, thread) witnesses
        self._witnesses: Dict[Tuple[Any, Any], Set[Tuple[str, str]]] = {}

    def feed(self, trace: Trace) -> "LockGraph":
        """Consume a trace's lock events into the order graph; returns self."""
        tracker = HeldLockTracker()
        for ev in trace:
            if ev.op == OP.ACQUIRE or ev.op == OP.ACQUIRE_REQ:
                for held in tracker.held(ev.tid):
                    if held is not ev.obj:
                        self.graph.add_edge(held, ev.obj)
                        self._witnesses.setdefault((held, ev.obj), set()).add(
                            (ev.loc, ev.tname)
                        )
            tracker.update(ev)
        return self

    def cycles(self) -> List[List[Any]]:
        """All simple cycles in the lock-order graph."""
        return list(nx.simple_cycles(self.graph))

    def reports(self) -> List[DeadlockReport]:
        """One report per cycle, with acquisition witnesses.

        Two-lock cycles (every deadlock in the paper's benchmarks) pair
        the two inverted acquisition sites — exactly a
        :class:`DeadlockTrigger` pair.  Longer cycles are reported along
        consecutive edges: each report names one "holds A, wants B" site
        and the next thread's "holds B, wants C" site; a chain of such
        breakpoints pins the whole cycle.
        """
        out: List[DeadlockReport] = []
        # Two-lock cycles are found by a direct edge scan rather than the
        # generic cycle enumerator: simple_cycles walks identity-hashed
        # node sets, so the orientation it returns a 2-cycle in varies
        # run to run.  Edge insertion order is trace order, which makes
        # the reported orientation the first direction the trace
        # witnessed — a pure function of the trace.
        seen_pairs: Set[Any] = set()
        for l1, l2 in self.graph.edges:
            if not self.graph.has_edge(l2, l1):
                continue
            pair = frozenset((l1, l2))
            if pair in seen_pairs:
                continue
            seen_pairs.add(pair)
            fwd = self._witnesses.get((l1, l2))
            rev = self._witnesses.get((l2, l1))
            if not fwd or not rev:
                continue
            (loc1, t1) = sorted(fwd)[0]
            (loc2, t2) = sorted(rev)[0]
            self._emit(out, l1, l2, loc1, loc2, t1, t2)
        for cycle in self.cycles():
            n = len(cycle)
            if n <= 2:
                continue
            for i in range(n):
                a, b, c = cycle[i], cycle[(i + 1) % n], cycle[(i + 2) % n]
                fwd = self._witnesses.get((a, b))
                nxt = self._witnesses.get((b, c))
                if not fwd or not nxt:
                    continue
                (loc1, t1) = sorted(fwd)[0]
                (loc2, t2) = sorted(nxt)[0]
                self._emit(out, a, b, loc1, loc2, t1, t2)
        deduped: List[DeadlockReport] = dedupe(out)  # type: ignore[assignment]
        # simple_cycles enumeration order is also identity-dependent, so
        # canonicalise the list order too.
        deduped.sort(key=lambda r: (r.name, r.loc1, r.loc2, r.thread1 or "", r.thread2 or ""))
        return deduped

    @staticmethod
    def _emit(out: List[DeadlockReport], l1: Any, l2: Any, loc1: str, loc2: str, t1: str, t2: str) -> None:
        n1 = getattr(l1, "name", str(l1))
        n2 = getattr(l2, "name", str(l2))
        out.append(
            DeadlockReport(
                name=f"deadlock:{n1}<->{n2}",
                loc1=loc1,
                loc2=loc2,
                lock1=n1,
                lock2=n2,
                thread1=t1,
                thread2=t2,
            )
        )


def potential_deadlocks(trace: Trace) -> List[DeadlockReport]:
    """Potential deadlocks predicted from one trace's lock orders."""
    return LockGraph().feed(trace).reports()
