"""Vector clocks for happens-before reasoning.

Keyed by thread id; missing components are zero.  Used by the
happens-before race detector and tested independently for the partial
order laws (property tests in ``tests/detect``).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator

__all__ = ["VectorClock"]


class VectorClock:
    """A sparse integer vector clock over hashable thread ids."""

    __slots__ = ("_c",)

    def __init__(self, clocks: Dict[Hashable, int] | None = None) -> None:
        self._c: Dict[Hashable, int] = dict(clocks) if clocks else {}

    def copy(self) -> "VectorClock":
        """An independent copy of this clock."""
        return VectorClock(self._c)

    def get(self, tid: Hashable) -> int:
        """The component for ``tid`` (0 if never seen)."""
        return self._c.get(tid, 0)

    def tick(self, tid: Hashable) -> None:
        """Advance this thread's own component (a local step)."""
        self._c[tid] = self._c.get(tid, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """Component-wise maximum, in place (synchronisation receive)."""
        for tid, v in other._c.items():
            if v > self._c.get(tid, 0):
                self._c[tid] = v

    def __le__(self, other: "VectorClock") -> bool:
        """Happens-before-or-equal: every component <= other's."""
        return all(v <= other._c.get(tid, 0) for tid, v in self._c.items())

    def __lt__(self, other: "VectorClock") -> bool:
        return self <= other and self != other

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        # Zero components are implicit, so normalise.
        keys = set(self._c) | set(other._c)
        return all(self.get(k) == other.get(k) for k in keys)

    def __hash__(self) -> int:  # pragma: no cover - VCs are mutable; not hashable
        raise TypeError("VectorClock is mutable and unhashable")

    def concurrent(self, other: "VectorClock") -> bool:
        """Neither ordered before the other: the race condition test."""
        return not (self <= other) and not (other <= self)

    def __iter__(self) -> Iterator:
        return iter(self._c.items())

    def __repr__(self) -> str:
        inner = ", ".join(f"{t}:{v}" for t, v in sorted(self._c.items(), key=str))
        return f"VC({inner})"
