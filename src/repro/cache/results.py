"""ResultCache — memoized trial sweeps and exploration summaries.

Memoization is sound here because trials are replay-deterministic: a
:class:`~repro.harness.stats.TrialOutcome` is a pure function of
``(app, config, seed)`` and an exploration summary of its strategy
tuple, so a stored result is indistinguishable from a recomputed one
(DESIGN.md section on result caching; proven bit-identical by
``tests/cache/test_differential.py``).

Two structural decisions carry the correctness argument:

* **Per-seed storage, shared aggregation.**  Trial entries store
  individual per-seed outcome rows under a *config* fingerprint (the
  seed range is not part of the storage key).  Any requested range is
  served by replaying covered rows and running only the missing
  contiguous segments fresh, then folding everything through the same
  ascending-seed :class:`~repro.harness.stats.TrialAggregator` both
  runners use — so a warm ``0..199`` answer assembled from a cached
  ``0..99`` plus a fresh suffix is bit-identical to a cold ``0..199``
  run for any split.
* **Failures are never cached.**  Only successful outcomes are stored;
  a seed that timed out or crashed is re-run on every request, so a
  transient failure can never be replayed as if it were a result.

Counters (all volatile — they describe this process's luck, not the
computation): ``cache.hit`` (full coverage), ``cache.partial_hit``,
``cache.miss``, ``cache.store``, ``cache.evict``, ``cache.corrupt``.
They land in the cache's bound registry or, failing that, the ambient
:func:`repro.obs.collecting` sink.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.obs.context import current_sink
from repro.obs.metrics import MetricsRegistry

from .fingerprint import (
    CACHE_SCHEMA,
    canonical_json,
    fingerprint_doc,
    storage_config_doc,
    trial_config_doc,
)
from .store import DEFAULT_MAX_BYTES, CacheStore, StoreStats

__all__ = ["ResultCache"]


def _normalized(doc: Dict[str, Any]) -> Dict[str, Any]:
    """JSON-round-trip-stable form of a config doc (what entries embed)."""
    return json.loads(canonical_json(doc))


def _segments(seeds: List[int]) -> List[Tuple[int, int]]:
    """Group sorted seeds into contiguous ``(start, count)`` runs."""
    out: List[Tuple[int, int]] = []
    for s in seeds:
        if out and s == out[-1][0] + out[-1][1]:
            out[-1] = (out[-1][0], out[-1][1] + 1)
        else:
            out.append((s, 1))
    return out


class ResultCache:
    """Content-addressed on-disk store of trial and exploration results.

    ``metrics`` optionally binds a registry the ``cache.*`` counters
    increment into (the svc daemon binds its service registry; forked
    job children rebind via :meth:`with_metrics` and ship the deltas
    back over the result pipe).  Without one, counters fall through to
    the ambient :func:`repro.obs.collecting` sink when active.
    """

    def __init__(
        self,
        root: os.PathLike,
        *,
        max_bytes: int = DEFAULT_MAX_BYTES,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.metrics = metrics
        self.store = CacheStore(
            root,
            max_bytes=max_bytes,
            on_event=lambda name: self._count(f"cache.{name}"),
        )

    @property
    def root(self) -> str:
        """Directory the entries live under."""
        return str(self.store.root)

    def with_metrics(self, registry: Optional[MetricsRegistry]) -> "ResultCache":
        """Same on-disk store, counters bound to a different registry."""
        return ResultCache(
            self.store.root, max_bytes=self.store.max_bytes, metrics=registry
        )

    def _count(self, name: str) -> None:
        reg = self.metrics if self.metrics is not None else current_sink()
        if reg is not None:
            reg.counter(name, volatile=True).inc()

    # -- trials ------------------------------------------------------------

    def _trial_key(
        self,
        app_cls: Type,
        *,
        bug: Optional[str],
        timeout: float,
        flip_order: bool,
        use_policies: bool,
        params: Optional[Dict[str, Any]],
        collect: bool,
        trial_timeout: Optional[float],
    ) -> Tuple[str, Dict[str, Any]]:
        doc = trial_config_doc(
            app_cls,
            bug=bug,
            timeout=timeout,
            flip_order=flip_order,
            use_policies=use_policies,
            params=params,
            collect_metrics=collect,
            trial_timeout=trial_timeout,
        )
        return fingerprint_doc(doc), _normalized(doc)

    def _load_rows(self, key: str, config: Dict[str, Any]) -> Dict[int, List[Any]]:
        entry = self.store.load(key, expect_config=config)
        if entry is None:
            return {}
        rows = entry.get("seeds")
        if not isinstance(rows, dict):
            return {}
        try:
            return {int(seed): row for seed, row in rows.items()}
        except (TypeError, ValueError):
            return {}

    @staticmethod
    def _outcome_from_row(seed: int, row: List[Any]):
        from repro.harness.stats import TrialOutcome

        bug_hit, bp_hit, runtime, error_time, wall_time, metrics = row
        return TrialOutcome(
            seed=seed,
            bug_hit=bool(bug_hit),
            bp_hit=bool(bp_hit),
            runtime=runtime,
            error_time=error_time,
            metrics=metrics,
            wall_time=wall_time,
        )

    @staticmethod
    def _row_from_outcome(outcome) -> List[Any]:
        return [
            bool(outcome.bug_hit),
            bool(outcome.bp_hit),
            outcome.runtime,
            outcome.error_time,
            outcome.wall_time,
            outcome.metrics,
        ]

    def run_trials(
        self,
        app_cls: Type,
        *,
        n: int,
        bug: Optional[str],
        timeout: float,
        flip_order: bool,
        use_policies: bool,
        base_seed: int,
        params: Optional[Dict[str, Any]],
        workers: Any,
        trial_timeout: Optional[float],
        max_retries: int,
        collect_metrics: bool,
        trial_hook: Any = None,
    ):
        """Serve a trial sweep from cache, running only what is missing.

        Covered seeds replay from stored rows; missing seeds run fresh
        (in contiguous segments, through the ordinary runner) with the
        ambient sink suppressed so metrics fold into the final
        aggregation exactly once.  Fresh *successful* outcomes are then
        merged back into the entry.
        """
        from repro.harness.stats import TrialAggregator
        from repro.obs.context import not_collecting

        collect = collect_metrics or current_sink() is not None
        key, config = self._trial_key(
            app_cls,
            bug=bug,
            timeout=timeout,
            flip_order=flip_order,
            use_policies=use_policies,
            params=params,
            collect=collect,
            trial_timeout=trial_timeout,
        )
        rows = self._load_rows(key, config)
        requested = range(base_seed, base_seed + n)
        covered = [s for s in requested if s in rows]
        missing = [s for s in requested if s not in rows]
        if not missing:
            self._count("cache.hit")
        elif covered:
            self._count("cache.partial_hit")
        else:
            self._count("cache.miss")

        agg = TrialAggregator(app_cls.name, bug, base_seed, n, collect_metrics=collect)
        for seed in covered:
            agg.add(self._outcome_from_row(seed, rows[seed]))

        fresh: List[Any] = []
        if missing:
            from repro.harness.runner import run_trials

            with not_collecting():
                for start, count in _segments(missing):
                    part = run_trials(
                        app_cls,
                        n=count,
                        bug=bug,
                        timeout=timeout,
                        flip_order=flip_order,
                        use_policies=use_policies,
                        base_seed=start,
                        params=params,
                        workers=workers,
                        trial_timeout=trial_timeout,
                        max_retries=max_retries,
                        collect_metrics=collect,
                        on_outcome=fresh.append,
                        trial_hook=trial_hook,
                    )
                    for failure in part.failures:
                        agg.add_failure(failure)
            for outcome in fresh:
                agg.add(outcome)
                rows[outcome.seed] = self._row_from_outcome(outcome)
            if fresh:
                self.store.store(
                    key,
                    {
                        "schema": CACHE_SCHEMA,
                        "kind": "trials",
                        "config": config,
                        "seeds": {str(s): rows[s] for s in sorted(rows)},
                    },
                )
        return agg.finalize()

    def fetch_trials(
        self,
        app_cls: Type,
        *,
        n: int,
        bug: Optional[str],
        timeout: float = 0.100,
        flip_order: bool = False,
        use_policies: bool = True,
        base_seed: int = 0,
        params: Optional[Dict[str, Any]] = None,
        trial_timeout: Optional[float] = None,
        collect_metrics: bool = False,
    ):
        """Fully-covered lookup: stats without running anything, or None.

        Used by the svc executor's parent-side fast path (a full hit
        skips the job fork entirely).  Counts ``cache.hit`` only when it
        serves — a miss here is not a cache miss yet, the job child will
        look again and count the real outcome.
        """
        from repro.harness.stats import TrialAggregator

        key, config = self._trial_key(
            app_cls,
            bug=bug,
            timeout=timeout,
            flip_order=flip_order,
            use_policies=use_policies,
            params=params,
            collect=collect_metrics,
            trial_timeout=trial_timeout,
        )
        rows = self._load_rows(key, config)
        requested = range(base_seed, base_seed + n)
        if any(s not in rows for s in requested):
            return None
        self._count("cache.hit")
        agg = TrialAggregator(
            app_cls.name, bug, base_seed, n, collect_metrics=collect_metrics
        )
        for seed in requested:
            agg.add(self._outcome_from_row(seed, rows[seed]))
        return agg.finalize()

    # -- explorations ------------------------------------------------------

    def _explore_key(
        self, app_name: str, bug: Optional[str], **fields: Any
    ) -> Tuple[str, Dict[str, Any], Type]:
        from repro.apps import get_app

        cls = get_app(app_name)
        if bug is not None and bug not in cls.bugs:
            raise KeyError(f"{app_name} has no bug {bug!r}; known: {list(cls.bugs)}")
        # The shared storage-key builder resolves max_steps=None to the
        # app default — the router hashes on the identical document.
        doc = storage_config_doc("explore", app_name, bug=bug, **fields)
        return fingerprint_doc(doc), _normalized(doc), cls

    def explore(
        self,
        app_name: str,
        bug: Optional[str] = None,
        *,
        dpor: bool = False,
        sleep_sets: bool = False,
        snapshots: bool = False,
        workers: Optional[int] = None,
        shard_depth: int = 2,
        max_schedules: int = 10_000,
        max_steps: Optional[int] = None,
        seed: int = 0,
        timeout: float = 0.100,
        use_policies: bool = True,
        params: Optional[Dict[str, Any]] = None,
        witness_limit: int = 3,
        obs: Any = None,
        bound: Optional[Any] = None,
    ):
        """Cached exploration summary; runs :func:`explore_app` on a miss.

        Only the summary (counts, DPOR stats, bounded witness list) is
        stored — the full outcome list is unbounded and cheap to
        regenerate when actually needed.  ``bound`` (a
        :class:`~repro.sim.explore.Bound` or None) cuts schedules, so it
        is part of the entry's content address.
        """
        from repro.harness.exploration import ExplorationSummary, explore_app

        if bound is not None and not bound.active:
            bound = None
        sharded = bool(dpor and workers)
        key, config, _cls = self._explore_key(
            app_name,
            bug,
            dpor=dpor,
            sleep_sets=sleep_sets,
            snapshots=snapshots,
            sharded=sharded,
            shard_depth=shard_depth if sharded else None,
            max_schedules=max_schedules,
            max_steps=max_steps,
            seed=seed,
            timeout=timeout,
            use_policies=use_policies,
            params=params,
            witness_limit=witness_limit,
            bound=bound.to_doc() if bound is not None else None,
        )
        entry = self.store.load(key, expect_config=config)
        if entry is not None and isinstance(entry.get("summary"), dict):
            self._count("cache.hit")
            return ExplorationSummary.from_wire(entry["summary"])
        self._count("cache.miss")
        res = explore_app(
            app_name,
            bug,
            dpor=dpor,
            sleep_sets=sleep_sets,
            snapshots=snapshots,
            workers=workers,
            shard_depth=shard_depth,
            max_schedules=max_schedules,
            max_steps=max_steps,
            seed=seed,
            timeout=timeout,
            use_policies=use_policies,
            params=params,
            obs=obs,
            bound=bound,
        )
        summary = res.summary(witness_limit=witness_limit)
        self.store.store(
            key,
            {
                "schema": CACHE_SCHEMA,
                "kind": "explore",
                "config": config,
                "summary": summary.to_wire(),
            },
        )
        return summary

    def fetch_explore(self, app_name: str, bug: Optional[str] = None, **kwargs: Any):
        """Hit-only exploration lookup (svc fast path); None on a miss."""
        from repro.harness.exploration import ExplorationSummary

        obs = kwargs.pop("obs", None)
        del obs  # fetch never executes, so an obs context is irrelevant
        workers = kwargs.pop("workers", None)
        shard_depth = kwargs.pop("shard_depth", 2)
        dpor = kwargs.get("dpor", False)
        sharded = bool(dpor and workers)
        bound = kwargs.pop("bound", None)
        if bound is not None and not bound.active:
            bound = None
        key, config, _cls = self._explore_key(
            app_name,
            bug,
            dpor=dpor,
            sleep_sets=kwargs.get("sleep_sets", False),
            snapshots=kwargs.get("snapshots", False),
            sharded=sharded,
            shard_depth=shard_depth if sharded else None,
            max_schedules=kwargs.get("max_schedules", 10_000),
            max_steps=kwargs.get("max_steps"),
            seed=kwargs.get("seed", 0),
            timeout=kwargs.get("timeout", 0.100),
            use_policies=kwargs.get("use_policies", True),
            params=kwargs.get("params"),
            witness_limit=kwargs.get("witness_limit", 3),
            bound=bound.to_doc() if bound is not None else None,
        )
        entry = self.store.load(key, expect_config=config)
        if entry is None or not isinstance(entry.get("summary"), dict):
            return None
        self._count("cache.hit")
        return ExplorationSummary.from_wire(entry["summary"])

    # -- inference reports -------------------------------------------------

    def _infer_key(
        self, app_name: str, **fields: Any
    ) -> Tuple[str, Dict[str, Any], Type]:
        from repro.apps import get_app

        cls = get_app(app_name)
        # The shared storage-key builder folds INFER_VERSION in — the
        # router hashes on the identical document.
        doc = storage_config_doc("infer", app_name, **fields)
        return fingerprint_doc(doc), _normalized(doc), cls

    def infer(
        self,
        app_name: str,
        *,
        seed: int = 0,
        trials: int = 20,
        timeout: float = 0.100,
        base_seed: int = 0,
        use_policies: bool = True,
        params: Optional[Dict[str, Any]] = None,
        trial_timeout: Optional[float] = None,
        steer_attempts: int = 5,
        workers: Any = None,
        obs: Any = None,
    ):
        """Cached inference report; runs the pipeline on a miss.

        Two memoization layers compose here: a warm rerun is served
        whole from the stored report (nothing executes), while a cold
        run passes *this cache* down as the pipeline's trial cache, so
        the per-candidate confirmation sweeps reuse — and extend — the
        ordinary trial entries any ``repro run`` shares.
        """
        from repro.infer.pipeline import run_inference
        from repro.infer.report import InferenceReport

        key, config, _cls = self._infer_key(
            app_name,
            trace_seed=seed,
            trials=trials,
            base_seed=base_seed,
            timeout=timeout,
            use_policies=use_policies,
            params=params,
            trial_timeout=trial_timeout,
            steer_attempts=steer_attempts,
        )
        entry = self.store.load(key, expect_config=config)
        if entry is not None and isinstance(entry.get("report"), dict):
            self._count("cache.hit")
            return InferenceReport.from_wire(entry["report"])
        self._count("cache.miss")
        report = run_inference(
            app_name,
            seed=seed,
            trials=trials,
            timeout=timeout,
            base_seed=base_seed,
            use_policies=use_policies,
            params=params,
            workers=workers,
            trial_timeout=trial_timeout,
            steer_attempts=steer_attempts,
            trial_cache=self,
            obs=obs,
        )
        self.store.store(
            key,
            {
                "schema": CACHE_SCHEMA,
                "kind": "infer",
                "config": config,
                "report": report.to_wire(),
            },
        )
        return report

    def fetch_infer(self, app_name: str, **kwargs: Any):
        """Hit-only inference lookup (svc fast path); None on a miss."""
        from repro.infer.report import InferenceReport

        kwargs.pop("obs", None)
        kwargs.pop("workers", None)
        key, config, _cls = self._infer_key(
            app_name,
            trace_seed=kwargs.get("seed", 0),
            trials=kwargs.get("trials", 20),
            base_seed=kwargs.get("base_seed", 0),
            timeout=kwargs.get("timeout", 0.100),
            use_policies=kwargs.get("use_policies", True),
            params=kwargs.get("params"),
            trial_timeout=kwargs.get("trial_timeout"),
            steer_attempts=kwargs.get("steer_attempts", 5),
        )
        entry = self.store.load(key, expect_config=config)
        if entry is None or not isinstance(entry.get("report"), dict):
            return None
        self._count("cache.hit")
        return InferenceReport.from_wire(entry["report"])

    # -- maintenance -------------------------------------------------------

    def clear(self) -> int:
        """Drop every entry (``repro cache clear``)."""
        return self.store.clear()

    def stats(self) -> StoreStats:
        """On-disk accounting (``repro cache stats``)."""
        return self.store.stats()
