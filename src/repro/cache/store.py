"""On-disk entry store: atomic writes, LRU eviction, corruption fallback.

The store is deliberately dumb — it maps a hex fingerprint to one JSON
document and knows nothing about trials or explorations.  Three
robustness rules, each proven in ``tests/cache/test_store.py``:

* **Atomic writes.**  Entries are written to a ``.tmp`` sibling and
  published with :func:`os.replace`, so a crash mid-write can never
  leave a half-written entry where a reader would find it.
* **Corruption falls back to recompute.**  A file that fails to parse,
  has the wrong schema, or whose embedded config document does not
  match the requested one is deleted and reported as a miss — the
  cache can be slow, it can never be wrong.
* **LRU size bound.**  After every store the total byte size is checked
  against ``max_bytes`` and the least-recently-used entries (by file
  mtime; hits re-touch) are evicted until the bound holds.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from .fingerprint import CACHE_SCHEMA

__all__ = ["CacheStore", "StoreStats", "DEFAULT_MAX_BYTES"]

#: Default size bound — generous for this repo's JSON entries (a 1000-trial
#: sweep with metrics is ~1 MB), small enough to exercise eviction in tests.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


@dataclass(frozen=True)
class StoreStats:
    """Point-in-time accounting of the on-disk store (``repro cache stats``)."""

    root: str
    entries: int
    total_bytes: int
    max_bytes: int


class CacheStore:
    """Filesystem store of fingerprint-keyed JSON entries.

    Layout is ``root/<key[:2]>/<key>.json`` — two-hex-char fan-out keeps
    directory listings small without mattering for correctness.  The
    store never raises on a bad entry; every failure mode degrades to a
    miss (``on_event("corrupt")`` lets the owner count it).
    """

    def __init__(
        self,
        root: os.PathLike,
        *,
        max_bytes: int = DEFAULT_MAX_BYTES,
        on_event: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.root = Path(root)
        self.max_bytes = int(max_bytes)
        self._on_event = on_event

    # -- internals ---------------------------------------------------------

    def _event(self, name: str) -> None:
        if self._on_event is not None:
            self._on_event(name)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _entry_files(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return [p for p in self.root.glob("*/*.json") if p.is_file()]

    def _discard(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    # -- read/write --------------------------------------------------------

    def load(self, key: str, *, expect_config: Optional[Dict[str, Any]] = None) -> Optional[Dict[str, Any]]:
        """Return the entry for ``key``, or ``None`` on any failure.

        ``expect_config`` is hash-collision paranoia: the caller passes
        the normalized config document it fingerprinted and the entry is
        only served if the stored copy compares equal.  Unreadable,
        unparsable, wrong-schema, and mismatched entries are deleted so
        they cannot fail again.
        """
        path = self._path(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            doc = json.loads(raw)
        except ValueError:
            self._event("corrupt")
            self._discard(path)
            return None
        if not isinstance(doc, dict) or doc.get("schema") != CACHE_SCHEMA:
            self._event("corrupt")
            self._discard(path)
            return None
        if expect_config is not None and doc.get("config") != expect_config:
            self._event("corrupt")
            self._discard(path)
            return None
        self.touch(key)
        return doc

    def store(self, key: str, doc: Dict[str, Any]) -> None:
        """Atomically publish ``doc`` under ``key``, then enforce the bound."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(doc, separators=(",", ":")), encoding="utf-8")
        os.replace(tmp, path)
        self._event("store")
        self._evict()

    def touch(self, key: str) -> None:
        """Refresh the entry's LRU position (mtime) after a hit."""
        try:
            os.utime(self._path(key))
        except OSError:
            pass

    # -- maintenance -------------------------------------------------------

    def _evict(self) -> int:
        """Drop least-recently-used entries until the byte bound holds."""
        files: List[Tuple[float, int, Path]] = []
        total = 0
        for p in self._entry_files():
            try:
                st = p.stat()
            except OSError:
                continue
            files.append((st.st_mtime, st.st_size, p))
            total += st.st_size
        if total <= self.max_bytes:
            return 0
        evicted = 0
        for _, size, p in sorted(files, key=lambda t: (t[0], str(t[2]))):
            if total <= self.max_bytes:
                break
            self._discard(p)
            total -= size
            evicted += 1
            self._event("evict")
        return evicted

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for p in self._entry_files():
            self._discard(p)
            removed += 1
        return removed

    def stats(self) -> StoreStats:
        """Entry count and byte total for ``repro cache stats``."""
        files = self._entry_files()
        total = 0
        for p in files:
            try:
                total += p.stat().st_size
            except OSError:
                pass
        return StoreStats(
            root=str(self.root),
            entries=len(files),
            total_bytes=total,
            max_bytes=self.max_bytes,
        )
