"""Content-addressed result cache for trial sweeps and explorations.

Public surface: :class:`ResultCache` (the memoizing store the harness,
svc executor and CLI share), the fingerprint helpers that define its
content addresses, and :class:`CacheStore` for the raw on-disk layer.
See :mod:`repro.cache.results` for the correctness argument and
``docs/architecture.md`` for where the cache sits in the pipeline.
"""

from .fingerprint import (
    CACHE_SCHEMA,
    canonical_json,
    explore_config_doc,
    explore_fingerprint,
    fingerprint_doc,
    infer_config_doc,
    infer_fingerprint,
    storage_config_doc,
    storage_fingerprint,
    trial_config_doc,
    trial_fingerprint,
)
from .results import ResultCache
from .store import DEFAULT_MAX_BYTES, CacheStore, StoreStats

__all__ = [
    "CACHE_SCHEMA",
    "CacheStore",
    "DEFAULT_MAX_BYTES",
    "ResultCache",
    "StoreStats",
    "canonical_json",
    "explore_config_doc",
    "explore_fingerprint",
    "fingerprint_doc",
    "infer_config_doc",
    "infer_fingerprint",
    "storage_config_doc",
    "storage_fingerprint",
    "trial_config_doc",
    "trial_fingerprint",
]
