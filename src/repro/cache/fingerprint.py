"""Canonical fingerprints: the cache's content addresses.

A cached result is only valid if it was produced by *exactly* the same
computation — trials are pure functions of ``(app spec + AppConfig,
engine/breakpoint config, seed range, trial timeout)``, explorations of
the analogous strategy tuple, so the cache key must cover every field
that can change the result and nothing that cannot.  Two rules shape
this module:

* **Canonicalisation** — the fingerprint is the SHA-256 of a canonical
  JSON rendering (sorted keys, no whitespace, containers normalised to
  lists) of a plain config document, so two configs that are equal as
  values hash identically no matter how their dicts were built or their
  fields ordered (``tests/cache/test_fingerprint.py`` fuzzes this).
* **Explicit invalidation** — every fingerprint-relevant field appears
  in the document by name: mutate any one (seed base, pause time ``T``,
  predicate refinements, app version tag, schema version, ...) and the
  key changes, so stale entries can never be served.  Fields that are
  contractually result-invariant — the worker count, retry budget,
  chunking — are deliberately *absent*: the differential batteries
  (``tests/harness/test_parallel_runner.py``, ``tests/svc/``) prove
  results bit-identical across them, so a sweep computed at any worker
  count may serve a request at any other.

The app version tag is :attr:`repro.apps.base.BaseApp.cache_version`;
bump it whenever an app's workload or oracle changes in a way that
alters trial outcomes.  ``CACHE_SCHEMA`` versions the wire layout of
the cache entries themselves — bumping it orphans (and thereby
invalidates) every existing entry.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Mapping, Optional, Type

__all__ = [
    "CACHE_SCHEMA",
    "canonical_json",
    "fingerprint_doc",
    "trial_config_doc",
    "trial_fingerprint",
    "explore_config_doc",
    "explore_fingerprint",
    "infer_config_doc",
    "infer_fingerprint",
    "storage_config_doc",
    "storage_fingerprint",
]

#: Version of the cache's on-disk entry layout; a bump invalidates all
#: existing entries (they simply stop matching any key).
CACHE_SCHEMA = 1


def _normalize(obj: Any) -> Any:
    """Reduce a config value to the JSON-compatible canonical form.

    Tuples become lists, sets/frozensets become sorted lists, dict keys
    are stringified (JSON object keys are strings anyway) — so a config
    document equals its own JSON round-trip, which is what lets a loaded
    cache entry's stored config be compared against a requested one with
    plain ``==``.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, Mapping):
        return {str(k): _normalize(obj[k]) for k in obj}
    if isinstance(obj, (set, frozenset)):
        return sorted(_normalize(v) for v in obj)
    if isinstance(obj, (list, tuple)):
        return [_normalize(v) for v in obj]
    raise TypeError(
        f"cannot canonicalise {type(obj).__name__!r} for a cache fingerprint: {obj!r}"
    )


def canonical_json(doc: Mapping[str, Any]) -> str:
    """The canonical rendering two equal configs always share."""
    return json.dumps(_normalize(doc), sort_keys=True, separators=(",", ":"))


def fingerprint_doc(doc: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of the canonical rendering of ``doc``."""
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()


def _app_version(app_cls: Type) -> str:
    return str(getattr(app_cls, "cache_version", "1"))


def trial_config_doc(
    app_cls: Type,
    *,
    bug: Optional[str],
    timeout: float,
    flip_order: bool,
    use_policies: bool,
    params: Optional[Dict[str, Any]],
    collect_metrics: bool,
    trial_timeout: Optional[float],
    only_breakpoints: Optional[frozenset] = None,
) -> Dict[str, Any]:
    """The fingerprint-relevant fields of one trial-sweep configuration.

    Everything here changes per-trial outcomes: the app (and its
    version tag), which bug's breakpoints are armed, the pause time
    ``T``, the resolution order, the Section 6.3 predicate refinements,
    the workload params, whether metrics travel with the outcomes, and
    the per-trial wall-clock budget (it decides which seeds can fail).
    The seed range is *not* here — it keys the per-seed rows inside the
    entry, which is what makes partial-range reuse possible.
    """
    return {
        "schema": CACHE_SCHEMA,
        "kind": "trials",
        "app": app_cls.name,
        "app_version": _app_version(app_cls),
        "bug": bug,
        "pause_timeout": float(timeout),
        "flip_order": bool(flip_order),
        "use_policies": bool(use_policies),
        "only_breakpoints": only_breakpoints,
        "params": dict(params or {}),
        "collect_metrics": bool(collect_metrics),
        "trial_timeout": trial_timeout,
    }


def trial_fingerprint(
    app_cls: Type,
    *,
    bug: Optional[str],
    timeout: float,
    flip_order: bool = False,
    use_policies: bool = True,
    params: Optional[Dict[str, Any]] = None,
    collect_metrics: bool = False,
    trial_timeout: Optional[float] = None,
    base_seed: int = 0,
    n: int = 100,
) -> str:
    """Full content address of one ``(config, seed range)`` sweep.

    This is the identity the property tests exercise: permuting field
    or dict order leaves it unchanged, mutating any single field —
    including ``base_seed`` and ``n`` — changes it.  (The store itself
    groups entries by the config document alone so different seed
    ranges of one config can share rows; see
    :mod:`repro.cache.results`.)
    """
    doc = trial_config_doc(
        app_cls,
        bug=bug,
        timeout=timeout,
        flip_order=flip_order,
        use_policies=use_policies,
        params=params,
        collect_metrics=collect_metrics,
        trial_timeout=trial_timeout,
    )
    doc["base_seed"] = int(base_seed)
    doc["trials"] = int(n)
    return fingerprint_doc(doc)


def explore_config_doc(
    app_cls: Type,
    *,
    bug: Optional[str],
    dpor: bool,
    sleep_sets: bool,
    snapshots: bool,
    sharded: bool,
    shard_depth: Optional[int],
    max_schedules: int,
    max_steps: Optional[int],
    seed: int,
    timeout: float,
    use_policies: bool,
    params: Optional[Dict[str, Any]],
    witness_limit: int,
    bound: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Fingerprint-relevant fields of one exploration summary.

    ``dpor``/``sleep_sets`` select the reduction (the reported
    :class:`~repro.sim.dpor.DporStats` differ across them), ``snapshots``
    selects the pool (``pool_mode`` is part of the summary), and
    ``sharded``/``shard_depth`` fix the frontier layout.  The *worker
    count* is absent: the sharded merge is bit-identical for any count
    (``tests/sim/test_snapshot_explore.py``).  ``max_steps`` must be
    resolved by the caller (an explicit value equal to the app default
    is the same computation and must hash the same).  ``bound`` is the
    doc form of the :class:`~repro.sim.explore.Bound` applied — bounding
    cuts schedules, so it is result-relevant and must key the entry
    (``None`` = unbounded; an *active* bound equal in effect to
    unbounded still hashes separately, which only costs a re-run).
    """
    return {
        "schema": CACHE_SCHEMA,
        "kind": "explore",
        "app": app_cls.name,
        "app_version": _app_version(app_cls),
        "bug": bug,
        "dpor": bool(dpor),
        "sleep_sets": bool(sleep_sets),
        "snapshots": bool(snapshots),
        "sharded": bool(sharded),
        "shard_depth": int(shard_depth) if sharded and shard_depth is not None else None,
        "max_schedules": int(max_schedules),
        "max_steps": max_steps,
        "seed": int(seed),
        "pause_timeout": float(timeout),
        "use_policies": bool(use_policies),
        "params": dict(params or {}),
        "witness_limit": int(witness_limit),
        "bound": dict(bound) if bound else None,
    }


def explore_fingerprint(app_cls: Type, **fields: Any) -> str:
    """Content address of one exploration-summary configuration."""
    return fingerprint_doc(explore_config_doc(app_cls, **fields))


def infer_config_doc(
    app_cls: Type,
    *,
    trace_seed: int,
    trials: int,
    base_seed: int,
    timeout: float,
    use_policies: bool,
    params: Optional[Dict[str, Any]],
    trial_timeout: Optional[float],
    steer_attempts: int,
    infer_version: int,
) -> Dict[str, Any]:
    """Fingerprint-relevant fields of one inference report.

    An inference report is a pure function of the traced run
    (``trace_seed`` and the app version tag fix the trace, hence the
    detector findings and candidates), the confirmation sweep shape
    (``trials``/``base_seed``/``timeout``/``use_policies``/``params``/
    ``trial_timeout`` — the same fields a trial fingerprint covers),
    the steering budget, and the pipeline's own heuristics version
    (:data:`repro.infer.INFER_VERSION` — matching tiers and the
    confirmation rule are part of the computation).  The worker count
    is absent per the parallel == serial contract.
    """
    return {
        "schema": CACHE_SCHEMA,
        "kind": "infer",
        "app": app_cls.name,
        "app_version": _app_version(app_cls),
        "trace_seed": int(trace_seed),
        "trials": int(trials),
        "base_seed": int(base_seed),
        "pause_timeout": float(timeout),
        "use_policies": bool(use_policies),
        "params": dict(params or {}),
        "trial_timeout": trial_timeout,
        "steer_attempts": int(steer_attempts),
        "infer_version": int(infer_version),
    }


def infer_fingerprint(app_cls: Type, **fields: Any) -> str:
    """Content address of one inference-report configuration."""
    return fingerprint_doc(infer_config_doc(app_cls, **fields))


def storage_config_doc(kind: str, app_name: str, **fields: Any) -> Dict[str, Any]:
    """The *storage-level* config document for any cacheable kind.

    This is the exact document :class:`~repro.cache.results.ResultCache`
    groups entries under — the seed range is deliberately absent for
    trials (it keys rows *inside* an entry), ``max_steps=None`` resolves
    to the app default for explorations, and the pipeline version is
    folded in for inference.  Exposed publicly because the fleet router
    (:mod:`repro.svc.router`) hashes jobs onto shards by this same
    identity: two jobs that could share a cache entry — e.g. overlapping
    seed ranges of one trial config — must land on the same shard for
    its cache to stay hot, so routing *must* use the storage key, not the
    full content address.

    ``fields`` are the keyword arguments of the matching
    ``*_config_doc`` helper; the app is resolved through the registry
    (``KeyError`` on an unknown name).
    """
    from repro.apps import get_app

    cls = get_app(app_name)
    if kind == "trials":
        return trial_config_doc(cls, **fields)
    if kind == "explore":
        if fields.get("max_steps") is None:
            fields["max_steps"] = cls.max_steps
        return explore_config_doc(cls, **fields)
    if kind == "infer":
        if fields.get("infer_version") is None:
            from repro.infer.pipeline import INFER_VERSION

            fields["infer_version"] = INFER_VERSION
        return infer_config_doc(cls, **fields)
    raise ValueError(f"unknown cacheable kind {kind!r}")


def storage_fingerprint(kind: str, app_name: str, **fields: Any) -> str:
    """SHA-256 content address of :func:`storage_config_doc`."""
    return fingerprint_doc(storage_config_doc(kind, app_name, **fields))
