"""Fix suggestion — candidate atomic regions for confirmed violations.

Following "Automatically finding atomic regions for fixing bugs in
concurrent programs" (PAPERS.md), a *confirmed* atomicity violation
implies a repair shape: make the violated region actually atomic by
holding one lock across it.  This stage proposes that region — the two
local access sites as the region boundary — and picks the lock:

* the lock most often held at accesses to the violated cell elsewhere
  in the logged trace (the codebase's existing discipline for that
  cell), else
* a new dedicated lock, when the trace shows the cell is never
  consistently protected.

The suggestion is advisory output in the :class:`InferenceReport`; it
never feeds back into confirmation.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Any, Dict, List, Optional

from repro.sim.trace import OP, Trace

from .candidates import BreakpointCandidate

__all__ = ["AtomicRegionFix", "suggest_fix"]


@dataclasses.dataclass(frozen=True)
class AtomicRegionFix:
    """One proposed repair: hold ``lock`` across ``loc_start..loc_end``."""

    cell: str
    region: str
    loc_start: str
    loc_end: str
    lock: str
    #: True when ``lock`` already guards other accesses to the cell in
    #: the logged trace; False means a new dedicated lock is proposed.
    existing_lock: bool

    def to_dict(self) -> Dict[str, Any]:
        """JSON form for the inference report wire."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "AtomicRegionFix":
        """Inverse of :meth:`to_dict` (ValueError on unknown fields)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown fix field(s): {sorted(unknown)}")
        return cls(**doc)

    def render(self) -> str:
        """Human-readable repair proposal."""
        how = "existing lock" if self.existing_lock else "new dedicated lock"
        scope = f" in region {self.region!r}" if self.region else ""
        return (
            f"fix: hold {self.lock} ({how}) across "
            f"{self.loc_start}..{self.loc_end} to protect {self.cell}{scope}"
        )


def _name_of(obj: Any) -> str:
    """The display name detectors use for cells and locks."""
    return getattr(obj, "name", repr(obj))


def _dominant_lock(trace: Trace, cell: str) -> Optional[str]:
    """The lock most often held at accesses to ``cell`` in the trace."""
    held: Dict[int, List[Any]] = {}
    counts: Counter = Counter()
    for ev in trace.events:
        if ev.op == OP.ACQUIRE:
            held.setdefault(ev.tid, []).append(ev.obj)
        elif ev.op == OP.RELEASE:
            stack = held.get(ev.tid)
            if stack and ev.obj in stack:
                stack.remove(ev.obj)
        elif ev.op in (OP.READ, OP.WRITE) and _name_of(ev.obj) == cell:
            for lock in held.get(ev.tid, ()):
                counts[_name_of(lock)] += 1
    if not counts:
        return None
    # Deterministic winner: highest count, then lexicographic name.
    return min(counts, key=lambda name: (-counts[name], name))


def suggest_fix(
    candidate: BreakpointCandidate, trace: Trace
) -> Optional[AtomicRegionFix]:
    """A candidate atomic region for one confirmed atomicity candidate.

    Returns None for non-atomicity candidates — races and deadlocks
    have different repair shapes the pipeline does not guess at.
    Contention-derived candidates whose source names a lock propose
    extending that lock's critical section instead of inventing one.
    """
    source = candidate.source
    kind = source.get("kind")
    if kind == "atomicity":
        cell = source.get("cell", "")
        lock = _dominant_lock(trace, cell)
        return AtomicRegionFix(
            cell=cell,
            region=source.get("region", ""),
            loc_start=candidate.loc1,
            loc_end=candidate.loc2,
            lock=lock if lock is not None else f"new_lock({cell})",
            existing_lock=lock is not None,
        )
    if kind == "contention" and candidate.kind == "contention":
        lock = source.get("lock", "")
        if not lock:
            return None
        return AtomicRegionFix(
            cell=lock,
            region="",
            loc_start=candidate.loc1,
            loc_end=candidate.loc2,
            lock=lock,
            existing_lock=True,
        )
    return None
