"""Batch confirmation — run inferred breakpoints until the bug reproduces.

Two confirmation routes, mirroring the paper's workflow:

* **Matched candidates** (:func:`confirm_bug`): the candidate denotes a
  declared registry bug, so confirmation *is* the paper's 100-run
  protocol — :func:`repro.harness.run_trials` with that bug's
  breakpoints armed, parallel via ``workers`` and memoized via the
  result cache.  A candidate is confirmed when the breakpoint fired
  and the bug's own oracle reported the failure (``bp_hits > 0`` and
  ``bug_hits > 0``).  Both resolution orders are tried (Section 5's
  "resolve the contention in both ways"): plain order first, then
  ``flip_order=True`` if the plain order did not confirm.
* **Unmatched candidates** (:func:`steer_candidate`): no declared suite
  to arm, so the pipeline falls back to CalFuzzer-style targeted
  pausing (:class:`repro.activetest.ActiveTester`) at the candidate's
  two sites over a small seed sweep — steering both threads into the
  conflict window counts as an active-testing confirmation of the
  *schedule*, reported as ``steered`` rather than ``confirmed``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Type

from repro.activetest.base import ActiveTester
from repro.apps.base import AppConfig
from repro.harness.runner import run_trials
from repro.harness.stats import TrialStats

from .candidates import BreakpointCandidate

__all__ = ["BugConfirmation", "SteerOutcome", "confirm_bug", "steer_candidate"]

#: Candidate kind -> ActiveTester pause kind.  Contention sites are lock
#: acquisitions, which the tester's deadlock mode pauses at.
_STEER_KIND = {
    "race": "race",
    "atomicity": "atomicity",
    "deadlock": "deadlock",
    "contention": "deadlock",
}


@dataclasses.dataclass(frozen=True)
class BugConfirmation:
    """Outcome of the trial-sweep route for one (bug, order) choice.

    ``stats`` is the sweep that decided the verdict: the first
    resolution order that confirmed, else the plain-order sweep.
    ``orders_tried`` records how many resolution orders ran (2 means
    the plain order failed to confirm and the flipped order was also
    swept).
    """

    bug: str
    confirmed: bool
    flip_order: bool
    orders_tried: int
    stats: TrialStats


@dataclasses.dataclass(frozen=True)
class SteerOutcome:
    """Outcome of the active-testing fallback for one candidate."""

    attempts: int
    steered: int  # runs in which both threads reached the conflict window
    first_threads: str = ""  # "t1 vs t2" of the first confirmation


def _is_confirmed(stats: TrialStats) -> bool:
    """The confirmation predicate: breakpoint fired *and* oracle failed."""
    return stats.bp_hits > 0 and stats.bug_hits > 0


def confirm_bug(
    app_cls: Type,
    bug: str,
    *,
    n: int,
    timeout: float,
    base_seed: int = 0,
    use_policies: bool = True,
    params: Optional[Dict[str, Any]] = None,
    workers: Any = None,
    trial_timeout: Optional[float] = None,
    cache: Any = None,
) -> BugConfirmation:
    """Sweep ``bug``'s breakpoints in both orders until one confirms.

    Runs through :func:`repro.harness.run_trials` — the exact code path
    the hand-written suites use, which is what makes the differential
    battery's bit-identity claim hold by construction, and what lets
    the result cache serve warm reruns (the sweep fingerprint is the
    ordinary trial fingerprint).
    """
    first: Optional[TrialStats] = None
    for orders, flip in enumerate((False, True), start=1):
        stats = run_trials(
            app_cls,
            n=n,
            bug=bug,
            timeout=timeout,
            flip_order=flip,
            use_policies=use_policies,
            base_seed=base_seed,
            params=params,
            workers=workers,
            trial_timeout=trial_timeout,
            cache=cache,
        )
        if first is None:
            first = stats
        if _is_confirmed(stats):
            return BugConfirmation(
                bug=bug, confirmed=True, flip_order=flip, orders_tried=orders, stats=stats
            )
    return BugConfirmation(
        bug=bug, confirmed=False, flip_order=False, orders_tried=2, stats=first
    )


def steer_candidate(
    app_cls: Type,
    candidate: BreakpointCandidate,
    *,
    attempts: int = 5,
    base_seed: int = 0,
    pause: float = 0.05,
    params: Optional[Dict[str, Any]] = None,
) -> SteerOutcome:
    """Targeted-pause re-execution at the candidate's two sites.

    Each attempt runs the *plain* app (no declared breakpoints armed)
    under an :class:`ActiveTester` pausing threads that reach
    ``loc1``/``loc2``; an attempt counts as steered when a second
    thread arrives at the partner site during a pause — the conflicting
    state the candidate describes was reached on demand.
    """
    steered = 0
    first_threads = ""
    for attempt in range(attempts):
        tester = ActiveTester(
            candidate.loc1,
            candidate.loc2,
            kind=_STEER_KIND[candidate.kind],
            pause=pause,
        )

        def build(kernel) -> None:
            app = app_cls(AppConfig(bug=None, params=dict(params or {})))
            app.kernel = kernel
            app._policies = {}  # noqa: SLF001 - mirrors BaseApp.run's setup
            app.setup(kernel)

        tester.run(
            build,
            seed=base_seed + attempt,
            max_steps=app_cls.max_steps,
            max_time=app_cls.horizon,
        )
        if tester.confirmations:
            steered += 1
            if not first_threads:
                conf = tester.confirmations[0]
                first_threads = f"{conf.thread1} vs {conf.thread2}"
    return SteerOutcome(attempts=attempts, steered=steered, first_threads=first_threads)
