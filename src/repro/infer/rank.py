"""Ranking — order confirmed breakpoints by usefulness.

Following the localization idea of "Error Invariants for Concurrent
Traces" (PAPERS.md): the best reproduction artefact is the one that
hits the bug most often and distorts the execution least.  The ranker
orders confirmed candidates by

1. reproduction probability, descending (the paper's "Prob." column),
2. breakpoint hit rate, descending (ties: prefer the trigger that
   actually fires),
3. pause cost, ascending — the mean virtual-runtime overhead of the
   armed sweep over the plain baseline sweep, i.e. how much the
   breakpoint's pauses stretch the execution,
4. candidate name (deterministic tie-break).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.harness.stats import TrialStats

__all__ = ["pause_cost", "rank_confirmed"]


def pause_cost(stats: TrialStats, baseline: TrialStats) -> float:
    """Mean virtual-runtime overhead of an armed sweep vs the baseline.

    Negative values are kept (a breakpoint that makes runs *end
    earlier* — e.g. by forcing a fast crash — costs nothing), so the
    value is informative, not clamped.
    """
    return stats.mean_runtime - baseline.mean_runtime


def rank_confirmed(
    rows: List[Tuple[str, TrialStats, float]],
) -> List[int]:
    """Rank positions for ``(name, stats, pause_cost)`` rows.

    Returns, for each input row, its 1-based rank under the ordering in
    the module docstring.  Pure and deterministic: equal inputs always
    rank identically, which keeps cached and fresh reports
    bit-identical.
    """
    order = sorted(
        range(len(rows)),
        key=lambda i: (
            -rows[i][1].probability,
            -rows[i][1].bp_hit_rate,
            rows[i][2],
            rows[i][0],
        ),
    )
    ranks = [0] * len(rows)
    for position, index in enumerate(order, start=1):
        ranks[index] = position
    return ranks
