"""``repro.infer`` — automatic breakpoint inference.

The push-button closing of the paper's Methodology loop: one logged
trace in, ranked *confirmed* concurrent breakpoints out, with zero
hand-written ``trigger_here`` insertions along the way.  The stages —
candidate generation from deduplicated detector reports, suite
matching, batch confirmation through the ordinary trial harness,
active-testing steering for unmatched candidates, probability/pause-
cost ranking and atomic-region fix suggestion — live in the modules
below; :func:`infer_app` runs them end to end and is what the
``repro infer`` CLI command and the service's ``"infer"`` job kind
call.
"""

from .candidates import (
    BreakpointCandidate,
    CandidateMatch,
    generate_candidates,
    match_candidate,
)
from .confirm import BugConfirmation, SteerOutcome, confirm_bug, steer_candidate
from .fixes import AtomicRegionFix, suggest_fix
from .pipeline import INFER_VERSION, infer_app, run_inference
from .rank import pause_cost, rank_confirmed
from .report import INFER_SCHEMA, CandidateResult, InferenceReport

__all__ = [
    "BreakpointCandidate",
    "CandidateMatch",
    "generate_candidates",
    "match_candidate",
    "BugConfirmation",
    "SteerOutcome",
    "confirm_bug",
    "steer_candidate",
    "AtomicRegionFix",
    "suggest_fix",
    "INFER_VERSION",
    "infer_app",
    "run_inference",
    "pause_cost",
    "rank_confirmed",
    "INFER_SCHEMA",
    "CandidateResult",
    "InferenceReport",
]
