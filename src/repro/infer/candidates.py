"""Candidate generation and matching — report to ``(l1, l2, phi)``.

The first stage of the inference pipeline: every deduplicated detector
finding (:meth:`~repro.detect.analyze.AnalysisReport.unique_findings`)
becomes one :class:`BreakpointCandidate` — the declarative breakpoint
the paper's developer would insert by hand after reading the report
(Section 5's two methodologies):

* race / atomicity reports map to ConflictTrigger/AtomicityTrigger
  pairs at the reported access sites (Methodology I),
* deadlock reports map to DeadlockTrigger pairs at the two inverted
  acquisition sites (Methodology I),
* lock contentions map to ConflictTrigger pairs to be tried in *both*
  resolution orders (Methodology II's missed-notification probe).

Candidates then get *matched* against the registry's declared suites
(:data:`repro.apps.suites.SUITES`) to learn which known bug — and thus
which oracle — a candidate denotes, via three tiers of decreasing
precision (:func:`match_candidate`).  The match tier travels with the
candidate into the report, so a consumer can tell an exact-site hit
from a heuristic attribution.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.apps.suites import SUITES
from repro.core.suite import BreakpointEntry
from repro.detect.analyze import AnalysisReport
from repro.detect.reports import (
    AtomicityReport,
    BugReport,
    ContentionReport,
    DeadlockReport,
    RaceReport,
    canonical_report_key,
    report_from_dict,
    report_to_dict,
)

__all__ = [
    "BreakpointCandidate",
    "CandidateMatch",
    "generate_candidates",
    "match_candidate",
    "KIND_COMPAT",
]

#: Candidate kind -> suite entry kinds it may denote.  A race candidate
#: can confirm a conflict *or* an atomicity suite (an unserializable
#: region is evidenced by racy accesses at its boundary); a contention
#: candidate likewise (Methodology II: the region's monitor contends);
#: deadlock candidates only ever denote deadlock suites.
KIND_COMPAT: Dict[str, frozenset] = {
    "race": frozenset({"conflict", "atomicity"}),
    "contention": frozenset({"conflict", "atomicity"}),
    "atomicity": frozenset({"atomicity", "conflict"}),
    "deadlock": frozenset({"deadlock"}),
}

#: Match tiers, most precise first (order is the ranking order).
TIER_SITE = "site"  # shares >= 1 exact location with a suite entry
TIER_FILE = "file"  # same file pair as a suite entry
TIER_UNIQUE = "unique"  # only kind-compatible bug the app declares
_TIER_ORDER = {TIER_SITE: 0, TIER_FILE: 1, TIER_UNIQUE: 2}


def _file_of(loc: str) -> str:
    """The file part of a ``file:line`` location label."""
    return loc.rsplit(":", 1)[0]


@dataclasses.dataclass(frozen=True)
class CandidateMatch:
    """Which declared bug a candidate denotes, and how surely.

    ``tier`` is one of ``"site"`` (a reported location is literally a
    declared insertion point), ``"file"`` (same file pair — detectors
    often flag the statement *next to* the declared site), or
    ``"unique"`` (no location overlap, but the app declares exactly one
    kind-compatible bug, so the attribution is unambiguous).
    """

    bug: str
    tier: str
    entry_name: str

    def to_dict(self) -> Dict[str, Any]:
        """JSON form for the inference report wire."""
        return {"bug": self.bug, "tier": self.tier, "entry": self.entry_name}

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "CandidateMatch":
        """Inverse of :meth:`to_dict`."""
        return cls(bug=doc["bug"], tier=doc["tier"], entry_name=doc["entry"])


@dataclasses.dataclass(frozen=True)
class BreakpointCandidate:
    """One inferred concurrent breakpoint ``(l1, l2, phi)``.

    ``source`` is the originating report's kind-tagged wire dict
    (:func:`~repro.detect.reports.report_to_dict`) so the candidate is
    JSON-able end to end; ``name`` is a deterministic label derived
    from the candidate's position in canonical-key order.
    """

    name: str
    kind: str  # race | deadlock | atomicity | contention
    loc1: str
    loc2: str
    predicate: str
    source: Dict[str, Any]

    @property
    def key(self) -> Tuple:
        """The originating report's canonical key (sorting identity)."""
        return canonical_report_key(report_from_dict(self.source))

    def entry(self, timeout: float = 0.100) -> BreakpointEntry:
        """The suite-style record of this candidate.

        Candidate kinds collapse onto trigger kinds the way the
        reports' own ``insertions()`` do: races and contentions insert
        ConflictTriggers, atomicity findings AtomicityTriggers,
        deadlocks DeadlockTriggers.  ``bound=1`` mirrors the evaluated
        suites' default Section 6.3 refinement.
        """
        trigger_kind = {
            "race": "conflict",
            "contention": "conflict",
            "atomicity": "atomicity",
            "deadlock": "deadlock",
        }[self.kind]
        return BreakpointEntry(
            name=self.name,
            kind=trigger_kind,
            loc_first=self.loc1,
            loc_second=self.loc2,
            predicate=self.predicate,
            timeout=timeout,
            bound=1,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON form for the inference report wire."""
        return {
            "name": self.name,
            "kind": self.kind,
            "loc1": self.loc1,
            "loc2": self.loc2,
            "predicate": self.predicate,
            "source": dict(self.source),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "BreakpointCandidate":
        """Inverse of :meth:`to_dict` (ValueError on unknown fields)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown candidate field(s): {sorted(unknown)}")
        return cls(**doc)

    def render(self) -> str:
        """The paper-style one-liner."""
        return f"{self.name} [{self.kind}] <{self.loc1}, {self.loc2}, {self.predicate}>"


def _predicate_for(report: BugReport) -> str:
    """The joint predicate phi the report implies."""
    if isinstance(report, RaceReport):
        return f"t1.{report.cell} == t2.{report.cell}"
    if isinstance(report, DeadlockReport):
        return f"t1 holds {report.lock1}, t2 holds {report.lock2}"
    if isinstance(report, AtomicityReport):
        return f"t2 inside region {report.region!r} on {report.cell}"
    if isinstance(report, ContentionReport):
        return f"t1.monitor == t2.monitor == {report.lock}"
    return "t1.obj == t2.obj"


def generate_candidates(analysis: AnalysisReport) -> List[BreakpointCandidate]:
    """Every deduplicated finding as a breakpoint candidate.

    Consumes :meth:`AnalysisReport.unique_findings` (canonical-key
    order), so the output — including the ``cand-NNN`` names — is a
    pure function of the set of findings.  Atomizer (reduction)
    reports are deliberately absent: they name a single violating site,
    not a pair; where they matter, the same region also surfaces as a
    monitor contention, which *is* generated.
    """
    out: List[BreakpointCandidate] = []
    for i, report in enumerate(analysis.unique_findings()):
        out.append(
            BreakpointCandidate(
                name=f"cand-{i:03d}",
                kind=report.kind,
                loc1=report.loc1,
                loc2=report.loc2,
                predicate=_predicate_for(report),
                source=report_to_dict(report),
            )
        )
    return out


def _suites_for(app_name: str):
    """The declared suites of one app, as ``bug -> suite``."""
    return {bug: s for (app, bug), s in SUITES.items() if app == app_name}


def match_candidate(
    candidate: BreakpointCandidate, app_cls: Type
) -> Optional[CandidateMatch]:
    """The declared bug ``candidate`` most plausibly denotes, if any.

    Tiers, best first:

    1. ``site`` — the candidate shares at least one exact location with
       a kind-compatible suite entry (more shared locations win ties).
    2. ``file`` — the candidate's file pair equals a kind-compatible
       entry's file pair (detectors flag the racy statement, suites the
       insertion point — usually lines apart in the same files).
    3. ``unique`` — no location evidence, but the app declares exactly
       one bug with kind-compatible entries, so the attribution cannot
       be wrong about *which* bug.

    Ties at one tier break on bug id then entry name, keeping the match
    deterministic.  Returns None for apps with no compatible suites.
    """
    compat = KIND_COMPAT[candidate.kind]
    cand_locs = {candidate.loc1, candidate.loc2}
    cand_files = frozenset(_file_of(loc) for loc in cand_locs)
    suites = _suites_for(app_cls.name)

    best: Optional[Tuple[int, int, str, str]] = None  # (tier, -overlap, bug, entry)
    for bug, suite in sorted(suites.items()):
        for entry in suite.entries:
            if entry.kind not in compat:
                continue
            entry_locs = {entry.loc_first, entry.loc_second}
            overlap = len(cand_locs & entry_locs)
            if overlap:
                row = (_TIER_ORDER[TIER_SITE], -overlap, bug, entry.name)
            elif cand_files == frozenset(_file_of(loc) for loc in entry_locs):
                row = (_TIER_ORDER[TIER_FILE], 0, bug, entry.name)
            else:
                continue
            if best is None or row < best:
                best = row
    if best is not None:
        tier = TIER_SITE if best[0] == _TIER_ORDER[TIER_SITE] else TIER_FILE
        return CandidateMatch(bug=best[2], tier=tier, entry_name=best[3])

    compatible_bugs = sorted(
        bug
        for bug, suite in suites.items()
        if any(entry.kind in compat for entry in suite.entries)
    )
    if len(compatible_bugs) == 1:
        bug = compatible_bugs[0]
        entry = next(e for e in suites[bug].entries if e.kind in compat)
        return CandidateMatch(bug=bug, tier=TIER_UNIQUE, entry_name=entry.name)
    return None
