"""The structured inference report — what ``repro infer`` emits.

An :class:`InferenceReport` is the pipeline's complete, serialisable
answer: the analysis the candidates came from, every candidate with its
match, confirmation verdict, rank and fix suggestion, and the plain
baseline sweep the pause costs are measured against.  The wire form
(:meth:`InferenceReport.to_wire` / :meth:`~InferenceReport.from_wire`)
is lossless — floats travel through ``repr`` exactly like the service's
:func:`~repro.svc.jobs.stats_to_wire` — so a report served from the
result cache or over the daemon is bit-identical to a fresh one.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple

from repro.harness.stats import TrialStats
from repro.svc.jobs import stats_from_wire, stats_to_wire

from .candidates import BreakpointCandidate, CandidateMatch
from .confirm import SteerOutcome
from .fixes import AtomicRegionFix

__all__ = ["CandidateResult", "InferenceReport", "INFER_SCHEMA"]

#: Version of the inference report wire layout.
INFER_SCHEMA = 1

#: Candidate verdicts, in report order strength.
CONFIRMED = "confirmed"  # suite sweep reproduced the bug
UNCONFIRMED = "unconfirmed"  # matched a bug but no sweep confirmed it
STEERED = "steered"  # unmatched; active testing reached the conflict
UNMATCHED = "unmatched"  # unmatched and steering never connected


@dataclasses.dataclass(frozen=True)
class CandidateResult:
    """One candidate's journey through the pipeline."""

    candidate: BreakpointCandidate
    status: str
    match: Optional[CandidateMatch] = None
    flip_order: bool = False
    orders_tried: int = 0
    stats: Optional[TrialStats] = None
    steer: Optional[SteerOutcome] = None
    fix: Optional[AtomicRegionFix] = None
    #: 1-based position among confirmed candidates (None otherwise).
    rank: Optional[int] = None
    #: Mean virtual-runtime overhead of the armed sweep vs the baseline.
    pause_cost: Optional[float] = None

    @property
    def probability(self) -> Optional[float]:
        """Reproduction probability of the deciding sweep, if any."""
        return self.stats.probability if self.stats is not None else None

    def to_wire(self) -> Dict[str, Any]:
        """JSON dict, lossless on round-trip."""
        return {
            "candidate": self.candidate.to_dict(),
            "status": self.status,
            "match": self.match.to_dict() if self.match is not None else None,
            "flip_order": self.flip_order,
            "orders_tried": self.orders_tried,
            "trials": stats_to_wire(self.stats) if self.stats is not None else None,
            "steer": dataclasses.asdict(self.steer) if self.steer is not None else None,
            "fix": self.fix.to_dict() if self.fix is not None else None,
            "rank": self.rank,
            "pause_cost": self.pause_cost,
        }

    @classmethod
    def from_wire(cls, doc: Dict[str, Any]) -> "CandidateResult":
        """Inverse of :meth:`to_wire` (ValueError on unknown fields)."""
        known = {
            "candidate", "status", "match", "flip_order", "orders_tried",
            "trials", "steer", "fix", "rank", "pause_cost",
        }
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown candidate result field(s): {sorted(unknown)}")
        return cls(
            candidate=BreakpointCandidate.from_dict(doc["candidate"]),
            status=doc["status"],
            match=(
                CandidateMatch.from_dict(doc["match"])
                if doc.get("match") is not None
                else None
            ),
            flip_order=bool(doc.get("flip_order", False)),
            orders_tried=int(doc.get("orders_tried", 0)),
            stats=(
                stats_from_wire(doc["trials"])
                if doc.get("trials") is not None
                else None
            ),
            steer=(
                SteerOutcome(**doc["steer"]) if doc.get("steer") is not None else None
            ),
            fix=(
                AtomicRegionFix.from_dict(doc["fix"])
                if doc.get("fix") is not None
                else None
            ),
            rank=doc.get("rank"),
            pause_cost=doc.get("pause_cost"),
        )


@dataclasses.dataclass(frozen=True)
class InferenceReport:
    """Everything ``repro infer <app>`` learned from one logged trace."""

    app: str
    trace_seed: int
    trials: int
    base_seed: int
    timeout: float
    #: :func:`repro.detect.analysis_to_dict` of the trace analysis.
    analysis: Dict[str, Any]
    #: Wire form of the plain (no breakpoints) sweep — pause-cost basis.
    baseline: Dict[str, Any]
    results: Tuple[CandidateResult, ...]

    @property
    def confirmed(self) -> List[CandidateResult]:
        """Confirmed candidates in rank order."""
        out = [r for r in self.results if r.status == CONFIRMED]
        out.sort(key=lambda r: r.rank if r.rank is not None else len(out))
        return out

    @property
    def confirmed_bugs(self) -> List[str]:
        """Distinct bug ids the pipeline reproduced, sorted."""
        return sorted({r.match.bug for r in self.confirmed if r.match is not None})

    def to_wire(self) -> Dict[str, Any]:
        """The JSON document (cache entry payload, svc result body)."""
        return {
            "type": "infer",
            "schema": INFER_SCHEMA,
            "app": self.app,
            "trace_seed": self.trace_seed,
            "trials": self.trials,
            "base_seed": self.base_seed,
            "pause_timeout": self.timeout,
            "analysis": self.analysis,
            "baseline": self.baseline,
            "candidates": [r.to_wire() for r in self.results],
        }

    @classmethod
    def from_wire(cls, doc: Dict[str, Any]) -> "InferenceReport":
        """Inverse of :meth:`to_wire` (ValueError on unknown shape)."""
        schema = doc.get("schema")
        if schema != INFER_SCHEMA:
            raise ValueError(f"unsupported inference report schema {schema!r}")
        known = {
            "type", "schema", "app", "trace_seed", "trials", "base_seed",
            "pause_timeout", "analysis", "baseline", "candidates",
        }
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown inference report field(s): {sorted(unknown)}")
        return cls(
            app=doc["app"],
            trace_seed=int(doc["trace_seed"]),
            trials=int(doc["trials"]),
            base_seed=int(doc["base_seed"]),
            timeout=doc["pause_timeout"],
            analysis=doc["analysis"],
            baseline=doc["baseline"],
            results=tuple(CandidateResult.from_wire(r) for r in doc["candidates"]),
        )

    def render(self) -> str:
        """Human-readable report: ranked confirmations, then the rest."""
        counts: Dict[str, int] = {}
        for r in self.results:
            counts[r.status] = counts.get(r.status, 0) + 1
        head = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
        lines = [
            f"Inference report: {self.app} "
            f"(trace seed {self.trace_seed}, {self.trials} trials/candidate)",
            f"  candidates: {len(self.results)} ({head})" if self.results
            else "  candidates: 0",
        ]
        for r in self.confirmed:
            stats = r.stats
            bug = r.match.bug if r.match is not None else "?"
            order = "flipped" if r.flip_order else "plain"
            lines.append(
                f"  #{r.rank} {r.candidate.render()}"
            )
            lines.append(
                f"      -> CONFIRMED {bug} ({r.match.tier} match, {order} order): "
                f"prob={stats.probability:.2f} bp={stats.bp_hit_rate:.2f} "
                f"pause_cost={r.pause_cost:+.3f}s"
            )
            if r.fix is not None:
                lines.append(f"      {r.fix.render()}")
        for r in self.results:
            if r.status == CONFIRMED:
                continue
            lines.append(f"  -  {r.candidate.render()}")
            if r.status == UNCONFIRMED and r.match is not None:
                lines.append(
                    f"      -> unconfirmed against {r.match.bug} "
                    f"({r.orders_tried} order(s) swept)"
                )
            elif r.status == STEERED and r.steer is not None:
                lines.append(
                    f"      -> steered {r.steer.steered}/{r.steer.attempts} "
                    f"({r.steer.first_threads})"
                )
            else:
                lines.append("      -> unmatched (no suite, steering never connected)")
        return "\n".join(lines)
