"""The push-button pipeline: one logged trace to ranked, confirmed bugs.

:func:`infer_app` is the subsystem's entry point (the ``repro infer``
CLI command, the svc ``"infer"`` job kind, and the library API are all
thin wrappers around it):

1. run the app once, plain, with tracing (the "one logged trace"),
2. analyse it with the full detector battery and generate breakpoint
   candidates from the deduplicated findings
   (:func:`~repro.infer.candidates.generate_candidates`),
3. match candidates to the registry's declared bugs and confirm each
   matched bug through the ordinary trial harness in both resolution
   orders (:func:`~repro.infer.confirm.confirm_bug`) — parallel via
   ``workers``, memoized via the result cache,
4. steer unmatched candidates with active testing
   (:func:`~repro.infer.confirm.steer_candidate`),
5. rank confirmed candidates by probability and pause cost
   (:mod:`repro.infer.rank`) and attach atomic-region fix suggestions
   (:mod:`repro.infer.fixes`),
6. emit the structured :class:`~repro.infer.report.InferenceReport`.

Every stage is deterministic given the configuration, so the whole
report is cacheable under one canonical-JSON fingerprint
(:func:`repro.cache.infer_fingerprint`); ``infer.*`` counters land in
the passed obs context or the ambient sink.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional

from repro.apps import get_app
from repro.apps.base import AppConfig
from repro.detect import analysis_to_dict, analyze
from repro.harness.runner import run_trials
from repro.obs.context import current_sink
from repro.svc.jobs import stats_to_wire

from .candidates import generate_candidates, match_candidate
from .confirm import confirm_bug, steer_candidate
from .fixes import suggest_fix
from .rank import pause_cost, rank_confirmed
from .report import (
    CONFIRMED,
    STEERED,
    UNCONFIRMED,
    UNMATCHED,
    CandidateResult,
    InferenceReport,
)

__all__ = ["INFER_VERSION", "infer_app", "run_inference"]

#: Version tag of the pipeline's heuristics (matching tiers, candidate
#: generation, confirmation rule).  Part of the cache fingerprint: bump
#: it whenever a heuristic change can alter a report, so stale cached
#: reports stop matching.
INFER_VERSION = 1


def _counter(obs: Any, name: str, by: int = 1) -> None:
    """Bump an ``infer.*`` counter in ``obs`` or the ambient sink."""
    registry = getattr(obs, "metrics", None) if obs is not None else current_sink()
    if registry is not None:
        registry.counter(name).inc(by)


def infer_app(
    app_name: str,
    *,
    seed: int = 0,
    trials: int = 20,
    timeout: float = 0.100,
    base_seed: int = 0,
    use_policies: bool = True,
    params: Optional[Dict[str, Any]] = None,
    workers: Any = None,
    trial_timeout: Optional[float] = None,
    steer_attempts: int = 5,
    cache: Any = None,
    obs: Any = None,
) -> InferenceReport:
    """Infer, confirm and rank breakpoints for ``app_name``.

    With a :class:`repro.cache.ResultCache`, the *whole report* is
    memoized under its inference fingerprint (a warm rerun returns the
    stored report without executing anything) and, on a cold run, the
    per-candidate trial sweeps are additionally memoized individually —
    so even a cold inference reuses any sweep a previous ``repro run``
    already paid for.
    """
    if cache is not None:
        return cache.infer(
            app_name,
            seed=seed,
            trials=trials,
            timeout=timeout,
            base_seed=base_seed,
            use_policies=use_policies,
            params=params,
            trial_timeout=trial_timeout,
            steer_attempts=steer_attempts,
            workers=workers,
            obs=obs,
        )
    return run_inference(
        app_name,
        seed=seed,
        trials=trials,
        timeout=timeout,
        base_seed=base_seed,
        use_policies=use_policies,
        params=params,
        workers=workers,
        trial_timeout=trial_timeout,
        steer_attempts=steer_attempts,
        trial_cache=None,
        obs=obs,
    )


def run_inference(
    app_name: str,
    *,
    seed: int = 0,
    trials: int = 20,
    timeout: float = 0.100,
    base_seed: int = 0,
    use_policies: bool = True,
    params: Optional[Dict[str, Any]] = None,
    workers: Any = None,
    trial_timeout: Optional[float] = None,
    steer_attempts: int = 5,
    trial_cache: Any = None,
    obs: Any = None,
) -> InferenceReport:
    """The uncached pipeline body (``trial_cache`` memoizes sweeps only).

    :class:`repro.cache.ResultCache.infer` calls this on a report-level
    miss, passing itself as ``trial_cache`` so the inner sweeps are
    still served from / recorded into the store.
    """
    cls = get_app(app_name)
    app = cls(AppConfig(bug=None, use_policies=use_policies, params=dict(params or {})))
    run = app.run(seed=seed, record_trace=True)
    trace = run.result.trace

    analysis = analyze(trace)
    candidates = generate_candidates(analysis)
    _counter(obs, "infer.reports.total", analysis.total_findings)
    _counter(obs, "infer.reports.unique", len(analysis.unique_findings()))
    _counter(obs, "infer.candidates.generated", len(candidates))

    matches = [match_candidate(c, cls) for c in candidates]
    _counter(
        obs, "infer.candidates.matched", sum(1 for m in matches if m is not None)
    )

    sweep_kwargs = dict(
        n=trials,
        timeout=timeout,
        base_seed=base_seed,
        use_policies=use_policies,
        params=params,
        workers=workers,
        trial_timeout=trial_timeout,
        cache=trial_cache,
    )
    # One confirmation per distinct bug — several candidates may denote
    # the same bug; the sweep runs once and its verdict is shared.
    confirmations: Dict[str, Any] = {}
    for match in matches:
        if match is not None and match.bug not in confirmations:
            confirmations[match.bug] = confirm_bug(cls, match.bug, **sweep_kwargs)
            _counter(obs, "infer.sweeps", confirmations[match.bug].orders_tried)

    baseline = run_trials(
        cls,
        bug=None,
        n=trials,
        timeout=timeout,
        base_seed=base_seed,
        use_policies=use_policies,
        params=params,
        workers=workers,
        trial_timeout=trial_timeout,
        cache=trial_cache,
    )
    _counter(obs, "infer.sweeps")

    results: List[CandidateResult] = []
    confirmed_rows: List[tuple] = []  # (index into results, name, stats, cost)
    for candidate, match in zip(candidates, matches):
        if match is not None:
            conf = confirmations[match.bug]
            if conf.confirmed:
                cost = pause_cost(conf.stats, baseline)
                # suggest_fix returns None for kinds with no atomic-
                # region repair shape (races, deadlocks).
                fix = suggest_fix(candidate, trace)
                if fix is not None:
                    _counter(obs, "infer.fixes.suggested")
                results.append(
                    CandidateResult(
                        candidate=candidate,
                        status=CONFIRMED,
                        match=match,
                        flip_order=conf.flip_order,
                        orders_tried=conf.orders_tried,
                        stats=conf.stats,
                        fix=fix,
                        pause_cost=cost,
                    )
                )
                confirmed_rows.append(
                    (len(results) - 1, candidate.name, conf.stats, cost)
                )
                _counter(obs, "infer.candidates.confirmed")
            else:
                results.append(
                    CandidateResult(
                        candidate=candidate,
                        status=UNCONFIRMED,
                        match=match,
                        orders_tried=conf.orders_tried,
                        stats=conf.stats,
                    )
                )
                _counter(obs, "infer.candidates.unconfirmed")
        else:
            steer = steer_candidate(
                cls,
                candidate,
                attempts=steer_attempts,
                base_seed=base_seed,
                params=params,
            )
            status = STEERED if steer.steered else UNMATCHED
            results.append(
                CandidateResult(candidate=candidate, status=status, steer=steer)
            )
            _counter(obs, f"infer.candidates.{status}")

    ranks = rank_confirmed([(name, stats, cost) for _, name, stats, cost in confirmed_rows])
    for (index, _name, _stats, _cost), rank in zip(confirmed_rows, ranks):
        results[index] = dataclasses.replace(results[index], rank=rank)

    return InferenceReport(
        app=cls.name,
        trace_seed=seed,
        trials=trials,
        base_seed=base_seed,
        timeout=timeout,
        analysis=analysis_to_dict(analysis),
        baseline=stats_to_wire(baseline),
        results=tuple(results),
    )
