"""Schedulers: the interleaving policies of the kernel.

The scheduler chooses which runnable thread performs its next syscall.
Heisenbugs are rare because the *default* schedule distribution almost
never produces the conflicting interleaving; concurrent breakpoints fix
that by pausing threads, independent of the scheduler.  The schedulers
here give us:

* :class:`RandomScheduler` — the evaluation default.  A seeded uniform
  choice among runnable threads models an unbiased preemptive scheduler;
  bug probabilities under it play the role of the paper's "probability
  over 100 executions".
* :class:`RoundRobinScheduler` — deterministic baseline, useful in tests.
* :class:`PCTScheduler` — Burckhardt et al.'s Probabilistic Concurrency
  Testing scheduler [5 in the paper]: random distinct priorities plus
  ``d-1`` random priority-change points, guaranteeing bugs of depth ``d``
  with probability ``>= 1/(n * k^(d-1))``.  Used as a bug-finding
  baseline in the A2 ablation.
* :class:`NoiseScheduler` — ConTest-style random delays [30]: each
  scheduling point may put the running thread to brief virtual sleep.

All randomness flows from a single ``random.Random(seed)`` per run, so
every execution is exactly replayable from ``(program, scheduler, seed)``.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from .thread import SimThread

__all__ = [
    "Scheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "PCTScheduler",
    "NoiseScheduler",
]


class Scheduler:
    """Interface.  ``pick`` receives runnable threads sorted by tid.

    **Live-list contract**: the kernel's fast path passes its *internal*
    tid-sorted ready list to :meth:`pick` — not a copy — so that the
    hottest call in the system allocates nothing.  Implementations must
    treat the sequence as read-only and borrowed: never mutate it, never
    retain a reference past the call (the kernel updates it in place on
    every block/wake).  Index, iterate, and pick; nothing else.  The
    differential battery runs every scheduler against the pre-rewrite
    reference kernel (which builds a fresh list per step), so a
    violation shows up as a trace divergence.
    """

    def on_spawn(self, thread: SimThread) -> None:
        """Called when a thread is created (priority assignment hooks)."""

    def pick(self, runnable: Sequence[SimThread], step: int) -> SimThread:
        """Choose the next thread to run from ``runnable`` (borrowed,
        read-only, tid-sorted; see the class docstring)."""
        raise NotImplementedError

    def delay_after_pick(self, thread: SimThread, step: int) -> float:
        """Virtual sleep to inject after the picked thread's step (noise)."""
        return 0.0


class RoundRobinScheduler(Scheduler):
    """Cycle through runnable threads in tid order."""

    def __init__(self) -> None:
        self._last_tid = -1

    def pick(self, runnable: Sequence[SimThread], step: int) -> SimThread:
        """Next runnable thread in cyclic tid order."""
        for t in runnable:
            if t.tid > self._last_tid:
                self._last_tid = t.tid
                return t
        t = runnable[0]
        self._last_tid = t.tid
        return t


class RandomScheduler(Scheduler):
    """Uniform seeded choice among runnable threads."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self.rng = random.Random(seed)

    def pick(self, runnable: Sequence[SimThread], step: int) -> SimThread:
        """Uniform seeded choice among runnable threads."""
        if len(runnable) == 1:
            return runnable[0]
        return self.rng.choice(runnable)


class PCTScheduler(Scheduler):
    """Probabilistic Concurrency Testing (PCT).

    Parameters
    ----------
    depth:
        Target bug depth ``d`` — the number of ordering constraints the
        bug needs.  ``d-1`` priority-change points are sampled in
        ``[0, steps_estimate)``.
    steps_estimate:
        Estimate ``k`` of the execution length in scheduling points.
    seed:
        RNG seed.
    """

    def __init__(self, depth: int = 2, steps_estimate: int = 1000, seed: Optional[int] = None) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.rng = random.Random(seed)
        self.depth = depth
        self.steps_estimate = max(1, steps_estimate)
        self.change_points = sorted(
            self.rng.randrange(self.steps_estimate) for _ in range(depth - 1)
        )
        self._next_cp = 0
        self._low_counter = 0  # descending priorities below all initials
        self._prio_counter = 0

    def on_spawn(self, thread: SimThread) -> None:
        # Random distinct initial priority: higher value wins.  Sampling a
        # large range makes collisions with reassigned-low values impossible.
        """Assign the new thread a random distinct priority."""
        self._prio_counter += 1
        thread.priority = self.rng.randrange(1_000_000) + 1_000_000

    def pick(self, runnable: Sequence[SimThread], step: int) -> SimThread:
        """Highest-priority runnable thread, demoting at change points."""
        best = max(runnable, key=lambda t: (t.priority, -t.tid))
        if self._next_cp < len(self.change_points) and step >= self.change_points[self._next_cp]:
            self._next_cp += 1
            self._low_counter += 1
            best.priority = -self._low_counter  # demote below everything
            best = max(runnable, key=lambda t: (t.priority, -t.tid))
        return best


class NoiseScheduler(RandomScheduler):
    """Random scheduler plus ConTest-style noise.

    After each picked step, with probability ``p`` the thread is delayed
    by a uniform virtual sleep in ``[0, max_delay]``, perturbing the
    interleaving the way ConTest's injected ``sleep``/``yield`` calls do.
    """

    def __init__(
        self,
        seed: Optional[int] = None,
        p: float = 0.05,
        max_delay: float = 0.001,
    ) -> None:
        super().__init__(seed)
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be a probability")
        self.p = p
        self.max_delay = max_delay

    def delay_after_pick(self, thread: SimThread, step: int) -> float:
        """With probability ``p``, a uniform virtual sleep."""
        if self.p and self.rng.random() < self.p:
            return self.rng.uniform(0.0, self.max_delay)
        return 0.0
