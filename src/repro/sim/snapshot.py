"""Copy-on-branch kernel snapshots — incremental exploration executors.

The DFS explorers (:mod:`repro.sim.explore`, :mod:`repro.sim.dpor`)
re-execute every schedule from step 0 with a forced choice prefix, so a
leaf at depth *d* costs O(d) even when it shares d-1 choices with the
previous leaf.  The cure is a *snapshot* of the kernel at each branch
point that later runs restore instead of replaying.

A direct ``Kernel.snapshot()`` that copies the object graph is
impossible in CPython: the continuation state of every simulated thread
lives in a suspended *generator frame*, and generator frames can be
neither deep-copied nor pickled.  This module therefore implements the
equivalent **copy-on-branch process fork**: at each branch point the
running kernel forks, the parent *parks* as a live snapshot holder (the
process image — threads, locks, condition/semaphore/barrier/event
queues, shared cells, timers, clock, RNG, trace position, obs
accumulators — is the snapshot, kept cheap by copy-on-write pages), and
the child continues the run.  To execute a new schedule the coordinator
picks the parked holder with the deepest prefix of the target choice
sequence and forks a runner from it, so only the suffix beyond the
shared prefix is executed.

Both executors present the same :class:`RunRecord`-returning ``run``
API, which is what lets the explorers guarantee identical output in
either mode by construction:

* :class:`StatelessPool` — the seed behaviour: fresh kernel, full
  replay, in-process.
* :class:`ForkSnapshotPool` — the copy-on-branch executor described
  above (POSIX ``fork`` + a unix-domain control socket).

Protocol (coordinator <-> forked processes), all messages pickled with
a length prefix:

* ``("holder", pid, prefix|None)`` — a parked process registers itself
  as the snapshot for ``prefix`` (``None`` = the pristine root).
* ``("run", run_id, prefix, skip_depths)`` — coordinator asks a holder
  to fork a runner that continues to ``prefix`` and explores freely
  beyond it.  ``skip_depths`` are depths already held by registered
  snapshots, so the runner does not park duplicates there.
* ``("begin", run_id, pid)`` — the runner announces itself (used for
  crash detection: holders auto-reap via ``SIGCHLD=SIG_IGN``, so a
  vanished pid means the runner died).
* ``("result", run_id, RunRecord)`` / ``("error", run_id, exc, text)``.

Crash safety: a holder or runner that dies is dropped and the run is
retried from the next-shallower snapshot, falling back to an in-process
stateless run — which produces the identical record — as the last
resort.  The exploration degrades, it does not abort.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import selectors
import signal
import socket
import struct
import tempfile
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from .kernel import Kernel, RunResult
from .scheduler import Scheduler
from .thread import SimThread

__all__ = [
    "Bound",
    "RunRecord",
    "PoolStats",
    "StatelessPool",
    "ForkSnapshotPool",
    "count_preemptions",
    "make_pool",
    "fork_available",
]


@dataclasses.dataclass(frozen=True)
class Bound:
    """Composable cut-strategy configuration for bounded exploration.

    ``preemptions`` caps the number of *preemptive* context switches per
    schedule (a switch away from a thread that is still runnable — a
    forced switch off a blocked or finished thread is always free);
    ``variables`` caps the number of distinct shared objects, keyed by
    their process-portable ``Type:name`` identity, that preemptions are
    charged against across a schedule's prefix.  ``None`` disables that
    strategy; a bound with both fields ``None`` is a no-op everywhere.

    The bound is **result-relevant**: it is part of the exploration cache
    fingerprint, and a sufficiently large finite bound is bit-identical
    to no bound at all (the differential battery in
    ``tests/sim/test_bounding.py`` asserts this across every registry
    app).
    """

    preemptions: Optional[int] = None
    variables: Optional[int] = None

    def __post_init__(self) -> None:
        for field in ("preemptions", "variables"):
            v = getattr(self, field)
            if v is None:
                continue
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                raise ValueError(
                    f"Bound.{field} must be a non-negative int or None, got {v!r}"
                )

    @property
    def active(self) -> bool:
        """Does this bound actually constrain anything?"""
        return self.preemptions is not None or self.variables is not None

    def to_doc(self) -> Optional[Dict[str, Optional[int]]]:
        """JSON-able form (None when inactive) for wire/cache documents."""
        if not self.active:
            return None
        return {"preemptions": self.preemptions, "variables": self.variables}

    @classmethod
    def from_doc(cls, doc: Optional[Dict[str, Optional[int]]]) -> Optional["Bound"]:
        """Inverse of :meth:`to_doc` (None stays None)."""
        if not doc:
            return None
        return cls(
            preemptions=doc.get("preemptions"), variables=doc.get("variables")
        )

    @classmethod
    def from_values(
        cls, preemptions: Optional[int] = None, variables: Optional[int] = None
    ) -> Optional["Bound"]:
        """Build a bound, collapsing the both-None case to None."""
        if preemptions is None and variables is None:
            return None
        return cls(preemptions=preemptions, variables=variables)


def count_preemptions(
    choices: Sequence[int], runnable_sets: Sequence[Tuple[int, ...]]
) -> int:
    """Preemptive switches in one schedule: depth ``d`` switched away
    from a thread that was still runnable there.  This is the reference
    recomputation the scheduler's incremental accounting is property-
    tested against."""
    n = 0
    for d in range(1, len(choices)):
        prev = choices[d - 1]
        if choices[d] != prev and prev in runnable_sets[d]:
            n += 1
    return n


class _DFSScheduler(Scheduler):
    """Follows a forced prefix, then always picks the lowest tid, and
    records the runnable set at every scheduling point.

    With a preemption :class:`Bound`, the free descent additionally
    refuses to *preempt* once the budget is spent: when the lowest-tid
    pick would switch away from a still-runnable previous thread and
    ``preemptions`` are exhausted, the scheduler stays on the previous
    thread instead (always legal — it is runnable).  At ``bound=None``
    or any budget the run never reaches, behaviour is bit-identical to
    the unbounded scheduler.  ``self.preemptions`` counts preemptive
    switches incrementally (forced-prefix ones included), a pure
    function of ``(choices, runnable_sets)`` — which is what keeps the
    count consistent when a forked snapshot resumes mid-schedule.
    """

    def __init__(self, prefix: Sequence[int], bound: Optional["Bound"] = None) -> None:
        self.prefix = list(prefix)
        self.choices: List[int] = []
        self.runnable_sets: List[Tuple[int, ...]] = []
        self.bound = bound
        self.preemptions = 0

    def pick(self, runnable: Sequence[SimThread], step: int) -> SimThread:
        tids = tuple(t.tid for t in runnable)  # kernel pre-sorts by tid
        depth = len(self.choices)
        if depth < len(self.prefix):
            wanted = self.prefix[depth]
            chosen = next(t for t in runnable if t.tid == wanted)
        else:
            chosen = runnable[0]
            b = self.bound
            if (
                b is not None
                and b.preemptions is not None
                and self.choices
                and self.preemptions >= b.preemptions
            ):
                prev = self.choices[-1]
                if chosen.tid != prev and prev in tids:
                    chosen = next(t for t in runnable if t.tid == prev)
        if self.choices:
            prev = self.choices[-1]
            if chosen.tid != prev and prev in tids:
                self.preemptions += 1
        self.choices.append(chosen.tid)
        self.runnable_sets.append(tids)
        return chosen


def fork_available() -> bool:
    """True when the copy-on-branch executor can run on this platform."""
    return hasattr(os, "fork") and hasattr(socket, "AF_UNIX")


@dataclasses.dataclass
class RunRecord:
    """Everything one executed schedule hands back to a DFS loop.

    Identical regardless of which executor produced it (the fork
    executor sanitizes the result exactly like shard workers do), which
    is what the differential battery in
    ``tests/sim/test_snapshot_explore.py`` asserts.
    """

    choices: Tuple[int, ...]
    runnable_sets: Tuple[Tuple[int, ...], ...]
    result: RunResult
    observed: Any
    #: ``Kernel.state_signature()`` at end of run — a process-portable
    #: digest of scheduling-visible kernel state, used to assert that a
    #: restored snapshot ended in the same state a full replay reaches.
    signature: str
    #: Executor-agnostic extension data (e.g. DPOR step footprints,
    #: computed in-process because they key on object identities).
    extras: Optional[dict]
    #: Kernel steps this run's process actually executed (suffix only
    #: when served from a snapshot).
    suffix_steps: int
    #: Forced choices re-fed beyond the serving snapshot's depth.
    replayed_choices: int
    #: Preemptive context switches in this schedule (see
    #: :func:`count_preemptions`, of which this is the incremental form).
    preemptions: int = 0


@dataclasses.dataclass
class PoolStats:
    """Executor counters; surfaced as ``explore.*`` obs metrics."""

    mode: str
    runs: int = 0
    parks: int = 0  # snapshots taken (fork executor)
    restores: int = 0  # runs served from a parked snapshot
    fallback_runs: int = 0  # stateless in-process retries
    executed_steps: int = 0  # kernel steps actually executed
    replayed_choices: int = 0  # forced choices re-fed past snapshots


class StatelessPool:
    """The seed executor: fresh kernel + full replay per schedule."""

    def __init__(
        self,
        build: Callable[[Kernel], None],
        *,
        seed: int = 0,
        max_steps: int = 20_000,
        max_time: float = float("inf"),
        record_trace: bool = False,
        observe: Optional[Callable[[Kernel], object]] = None,
        postprocess: Optional[Callable[[Kernel, _DFSScheduler], dict]] = None,
        sanitize: bool = False,
        bound: Optional[Bound] = None,
    ) -> None:
        self._build = build
        self._seed = seed
        self._max_steps = max_steps
        self._max_time = max_time
        self._record_trace = record_trace
        self._observe = observe
        self._postprocess = postprocess
        self._sanitize = sanitize
        self._bound = bound
        self.stats = PoolStats(mode="stateless")

    def run(self, prefix: Sequence[int]) -> RunRecord:
        """Execute one schedule from scratch (O(depth) replay)."""
        sched = _DFSScheduler(prefix, bound=self._bound)
        kernel = Kernel(
            scheduler=sched, seed=self._seed, record_trace=self._record_trace
        )
        self._build(kernel)
        result = kernel.run(max_steps=self._max_steps, max_time=self._max_time)
        observed = self._observe(kernel) if self._observe is not None else None
        extras = (
            self._postprocess(kernel, sched)
            if self._postprocess is not None
            else None
        )
        if self._sanitize:
            result = _sanitize_result(result)
        self.stats.runs += 1
        self.stats.executed_steps += kernel.step
        self.stats.replayed_choices += len(sched.prefix)
        return RunRecord(
            choices=tuple(sched.choices),
            runnable_sets=tuple(sched.runnable_sets),
            result=result,
            observed=observed,
            signature=kernel.state_signature(),
            extras=extras,
            suffix_steps=kernel.step,
            replayed_choices=len(sched.prefix),
            preemptions=sched.preemptions,
        )

    def close(self) -> None:
        pass

    def __enter__(self) -> "StatelessPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def _sanitize_result(result: RunResult) -> RunResult:
    """Strip process-local data (live generators, exception identity,
    trace events holding thread objects) — same fields the shard workers
    of ``explore_sharded`` strip."""
    if result.threads or result.deadlock is not None or result.trace is not None:
        result = dataclasses.replace(
            result, threads=[], deadlock=None, trace=None
        )
    return result


# ---------------------------------------------------------------------------
# Wire helpers (blocking side — used by forked children)
# ---------------------------------------------------------------------------

_LEN = struct.Struct("!I")


def _send_msg(sock: socket.socket, obj: Any) -> None:
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LEN.pack(len(data)) + data)


def _send_safe(sock: socket.socket, obj: Any) -> bool:
    try:
        _send_msg(sock, obj)
        return True
    except OSError:
        return False


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    buf = b""
    while len(buf) < n:
        try:
            chunk = sock.recv(n - len(buf))
        except OSError:
            return None
        if not chunk:
            return None
        buf += chunk
    return buf


def _recv_msg(sock: socket.socket) -> Optional[Any]:
    head = _recv_exact(sock, _LEN.size)
    if head is None:
        return None
    body = _recv_exact(sock, _LEN.unpack(head)[0])
    if body is None:
        return None
    return pickle.loads(body)


def _connect(addr: str) -> socket.socket:
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(addr)
    return sock


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        pass
    return True


# ---------------------------------------------------------------------------
# Child side
# ---------------------------------------------------------------------------


class _ChildCtx:
    """Per-run mutable identity inside the forked process tree.

    One instance is created before the root fork and inherited
    everywhere; activation of a parked holder rebinds ``conn``,
    ``run_id`` and ``skip`` in the resumed child, so frames inherited
    from an earlier run (the ``kernel.run()`` call in
    :func:`_child_main`) finish the *current* run correctly.
    """

    def __init__(
        self,
        addr: str,
        build: Callable[[Kernel], None],
        observe: Optional[Callable[[Kernel], object]],
        postprocess: Optional[Callable[[Kernel, _DFSScheduler], dict]],
        seed: int,
        max_steps: int,
        max_time: float,
        record_trace: bool,
        bound: Optional[Bound] = None,
        park_budget: int = 48,
    ) -> None:
        self.addr = addr
        self.build = build
        self.observe = observe
        self.postprocess = postprocess
        self.seed = seed
        self.max_steps = max_steps
        self.max_time = max_time
        self.record_trace = record_trace
        self.bound = bound
        # The pool evicts down to its holder cap after every run, so
        # parking more than the cap *within* one run is pure waste — on
        # deep, wide trees (hundreds of branch points per schedule) it
        # used to fork an unbounded holder chain and thrash the machine.
        self.park_budget_init = park_budget
        self.park_budget = park_budget
        # Rebound per run:
        self.conn: Optional[socket.socket] = None
        self.run_id = -1
        self.skip: Set[int] = set()
        self.kernel: Optional[Kernel] = None
        self.sched: Optional[_DFSScheduler] = None
        self.steps_base = 0
        self.replayed = 0

    def maybe_park(self, sched: "_ForkDFSScheduler") -> None:
        """At a branch point: fork; the parent parks as the snapshot
        holder for the current choice prefix, the child continues."""
        depth = len(sched.choices)
        if depth in self.skip or self.park_budget <= 0:
            return
        self.skip.add(depth)
        try:
            pid = os.fork()
        except OSError:
            return  # cannot snapshot here; the run continues unparked
        if pid == 0:
            self.park_budget -= 1
            return  # child: carry on executing the schedule
        # Parent: park.  The blocked recv below is the snapshot at rest.
        try:
            conn = _connect(self.addr)
            _send_msg(conn, ("holder", os.getpid(), tuple(sched.choices)))
        except OSError:
            os._exit(1)
        run_id, prefix, skip = _park_loop(conn)
        # Forked runner: adopt the new run identity and resume inside
        # pick() with the remainder of the target prefix forced.
        if list(prefix[:depth]) != sched.choices:
            _send_error(
                conn,
                run_id,
                RuntimeError(
                    f"snapshot mismatch: parked at {tuple(sched.choices)}, "
                    f"asked to run {prefix}"
                ),
            )
            os._exit(1)
        self.conn = conn
        self.run_id = run_id
        self.skip = set(skip)
        self.park_budget = self.park_budget_init
        assert self.kernel is not None
        self.steps_base = self.kernel.step
        self.replayed = len(prefix) - depth
        sched.prefix = list(prefix)
        _send_safe(conn, ("begin", run_id, os.getpid()))


class _ForkDFSScheduler(_DFSScheduler):
    """DFS scheduler that parks a copy-on-write snapshot at every new
    branch point before choosing."""

    def __init__(self, prefix: Sequence[int], ctx: _ChildCtx) -> None:
        super().__init__(prefix, bound=ctx.bound)
        self.ctx = ctx

    def pick(self, runnable: Sequence[SimThread], step: int) -> SimThread:
        if len(runnable) > 1:
            self.ctx.maybe_park(self)
        return super().pick(runnable, step)


def _park_loop(conn: socket.socket) -> Tuple[int, Tuple[int, ...], Tuple[int, ...]]:
    """Block until asked to run; returns only in the forked runner."""
    while True:
        msg = _recv_msg(conn)
        if msg is None or msg[0] == "die":
            os._exit(0)
        if msg[0] != "run":
            continue
        _, run_id, prefix, skip = msg
        try:
            pid = os.fork()
        except OSError:
            _send_safe(conn, ("error", run_id, None, "fork failed in holder"))
            continue
        if pid == 0:
            return run_id, tuple(prefix), tuple(skip)
        # Parent holder keeps parking, reusable for further runs.


def _send_error(conn: Optional[socket.socket], run_id: int, err: BaseException) -> None:
    if conn is None:
        return
    try:
        payload = pickle.dumps(err, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        payload = None
    _send_safe(
        conn, ("error", run_id, payload, f"{type(err).__name__}: {err}")
    )


def _finish_run(ctx: _ChildCtx, result: RunResult) -> None:
    kernel, sched = ctx.kernel, ctx.sched
    assert kernel is not None and sched is not None and ctx.conn is not None
    observed = ctx.observe(kernel) if ctx.observe is not None else None
    extras = (
        ctx.postprocess(kernel, sched) if ctx.postprocess is not None else None
    )
    rec = RunRecord(
        choices=tuple(sched.choices),
        runnable_sets=tuple(sched.runnable_sets),
        result=_sanitize_result(result),
        observed=observed,
        signature=kernel.state_signature(),
        extras=extras,
        suffix_steps=kernel.step - ctx.steps_base,
        replayed_choices=ctx.replayed,
        preemptions=sched.preemptions,
    )
    _send_safe(ctx.conn, ("result", ctx.run_id, rec))


def _child_main(ctx: _ChildCtx, inherited: List[socket.socket]) -> None:
    """Root of the forked subtree; never returns."""
    # Auto-reap every descendant: the disposition is inherited, so no
    # holder or runner in this subtree ever leaves a zombie.  Set only
    # here — the coordinator process must keep normal SIGCHLD semantics
    # (multiprocessing and the coordinator's own waitpid rely on them).
    signal.signal(signal.SIGCHLD, signal.SIG_IGN)
    for sock in inherited:
        try:
            sock.close()
        except OSError:
            pass
    try:
        conn = _connect(ctx.addr)
        _send_msg(conn, ("holder", os.getpid(), None))
    except OSError:
        os._exit(1)
    run_id, prefix, skip = _park_loop(conn)
    # Runner forked from the pristine root: fresh kernel, full replay.
    ctx.conn = conn
    ctx.run_id = run_id
    ctx.skip = set(skip)
    ctx.park_budget = ctx.park_budget_init
    _send_safe(conn, ("begin", run_id, os.getpid()))
    try:
        sched = _ForkDFSScheduler(prefix, ctx)
        kernel = Kernel(
            scheduler=sched, seed=ctx.seed, record_trace=ctx.record_trace
        )
        ctx.kernel = kernel
        ctx.sched = sched
        ctx.steps_base = 0
        ctx.replayed = len(prefix)
        ctx.build(kernel)
        result = kernel.run(max_steps=ctx.max_steps, max_time=ctx.max_time)
        # NOTE: if this run was handed off through parked holders, the
        # lines below execute in a *descendant* process with ctx rebound
        # to that run's identity — exactly what _finish_run needs.
        _finish_run(ctx, result)
    except BaseException as err:  # noqa: BLE001 — forwarded to coordinator
        _send_error(ctx.conn, ctx.run_id, err)
        os._exit(1)
    os._exit(0)


# ---------------------------------------------------------------------------
# Coordinator side
# ---------------------------------------------------------------------------


class _CoordConn:
    """Non-blocking connection with frame reassembly."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.buf = b""
        self.closed = False
        self.prefix: Optional[Tuple[int, ...]] = None  # set for holders
        self.pid: Optional[int] = None
        self.touch = 0

    def read(self) -> Tuple[List[Any], bool]:
        msgs: List[Any] = []
        eof = False
        while True:
            try:
                chunk = self.sock.recv(65536)
            except BlockingIOError:
                break
            except OSError:
                eof = True
                break
            if not chunk:
                eof = True
                break
            self.buf += chunk
        while len(self.buf) >= _LEN.size:
            (n,) = _LEN.unpack(self.buf[: _LEN.size])
            if len(self.buf) < _LEN.size + n:
                break
            body = self.buf[_LEN.size : _LEN.size + n]
            self.buf = self.buf[_LEN.size + n :]
            msgs.append(pickle.loads(body))
        return msgs, eof


class ForkSnapshotPool:
    """Copy-on-branch snapshot executor (see module docstring)."""

    def __init__(
        self,
        build: Callable[[Kernel], None],
        *,
        seed: int = 0,
        max_steps: int = 20_000,
        max_time: float = float("inf"),
        record_trace: bool = False,
        observe: Optional[Callable[[Kernel], object]] = None,
        postprocess: Optional[Callable[[Kernel, _DFSScheduler], dict]] = None,
        max_holders: int = 48,
        bound: Optional[Bound] = None,
    ) -> None:
        if not fork_available():
            raise RuntimeError("ForkSnapshotPool requires os.fork and AF_UNIX")
        self.stats = PoolStats(mode="fork")
        self._max_holders = max_holders
        self._serial = StatelessPool(
            build,
            seed=seed,
            max_steps=max_steps,
            max_time=max_time,
            record_trace=record_trace,
            observe=observe,
            postprocess=postprocess,
            sanitize=True,
            bound=bound,
        )
        self._dir = tempfile.mkdtemp(prefix="repro-snap-")
        self._addr = os.path.join(self._dir, "ctl.sock")
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(self._addr)
        self._listener.listen(128)
        self._listener.setblocking(False)
        self._sel = selectors.DefaultSelector()
        self._sel.register(self._listener, selectors.EVENT_READ, None)
        self._holders: Dict[Tuple[int, ...], _CoordConn] = {}
        self._root: Optional[_CoordConn] = None
        self._inbox: Dict[int, Tuple[str, Any, Any]] = {}
        self._begun: Dict[int, int] = {}
        self._next_run_id = 0
        self._tick = 0
        self._closed = False
        ctx = _ChildCtx(
            self._addr,
            build,
            observe,
            postprocess,
            seed,
            max_steps,
            max_time,
            record_trace,
            bound=bound,
            park_budget=max_holders,
        )
        pid = os.fork()
        if pid == 0:
            _child_main(ctx, [self._listener])
            os._exit(1)  # unreachable
        self._root_pid = pid
        # Wait for the root to register (it is doing interpreter-warm
        # work only: connect + one send).
        deadline = time.monotonic() + 10.0
        while self._root is None and time.monotonic() < deadline:
            self._pump(0.05)
            if not _alive(self._root_pid):
                break

    # -- event pump ----------------------------------------------------
    def _pump(self, timeout: float) -> None:
        for key, _ in self._sel.select(timeout):
            if key.fileobj is self._listener:
                while True:
                    try:
                        sock, _ = self._listener.accept()
                    except (BlockingIOError, OSError):
                        break
                    sock.setblocking(False)
                    conn = _CoordConn(sock)
                    self._sel.register(sock, selectors.EVENT_READ, conn)
                continue
            conn = key.data
            msgs, eof = conn.read()
            for msg in msgs:
                self._dispatch(conn, msg)
            if eof:
                self._forget(conn)

    def _dispatch(self, conn: _CoordConn, msg: Any) -> None:
        kind = msg[0]
        if kind == "holder":
            _, pid, prefix = msg
            conn.pid = pid
            self._tick += 1
            conn.touch = self._tick
            if prefix is None:
                self._root = conn
                return
            key = tuple(prefix)
            conn.prefix = key
            old = self._holders.get(key)
            if old is not None and old is not conn:
                self._kill_holder(old)
            self._holders[key] = conn
            self.stats.parks += 1
        elif kind == "begin":
            self._begun[msg[1]] = msg[2]
        elif kind == "result":
            self._inbox[msg[1]] = ("ok", msg[2], None)
        elif kind == "error":
            self._inbox[msg[1]] = ("error", msg[2], msg[3])

    def _forget(self, conn: _CoordConn) -> None:
        try:
            self._sel.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        conn.closed = True
        if conn.prefix is not None and self._holders.get(conn.prefix) is conn:
            del self._holders[conn.prefix]
        if self._root is conn:
            self._root = None

    def _kill_holder(self, conn: _CoordConn) -> None:
        _send_coord(conn, ("die",))
        self._forget(conn)

    # -- serving -------------------------------------------------------
    def _best_holder(self, prefix: Tuple[int, ...]) -> Optional[_CoordConn]:
        best: Optional[_CoordConn] = None
        best_len = -1
        for key, conn in self._holders.items():
            if len(key) > len(prefix) or conn.closed:
                continue
            if prefix[: len(key)] == key and len(key) > best_len:
                best, best_len = conn, len(key)
        if best is not None:
            return best
        return self._root

    def _skip_depths(self, prefix: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(
            sorted(
                len(key)
                for key in self._holders
                if len(key) <= len(prefix) and prefix[: len(key)] == key
            )
        )

    def run(self, prefix: Sequence[int]) -> RunRecord:
        """Execute one schedule from the deepest parked prefix holder."""
        prefix = tuple(int(x) for x in prefix)
        self._pump(0.0)
        while not self._closed:
            holder = self._best_holder(prefix)
            if holder is None:
                break
            run_id = self._next_run_id
            self._next_run_id += 1
            self._tick += 1
            holder.touch = self._tick
            if not _send_coord(
                holder, ("run", run_id, prefix, self._skip_depths(prefix))
            ):
                self._forget(holder)
                continue
            outcome = self._await(run_id, holder)
            if outcome is None:
                # Lost runner/holder: drop the snapshot, retry shallower.
                self._forget(holder)
                continue
            kind, payload, text = outcome
            if kind == "error":
                raise _unpickle_error(payload, text)
            rec: RunRecord = payload
            self.stats.runs += 1
            self.stats.executed_steps += rec.suffix_steps
            self.stats.replayed_choices += rec.replayed_choices
            if holder.prefix is not None:
                self.stats.restores += 1
            self._evict()
            return rec
        # Every snapshot path failed: identical record, in-process.
        self.stats.fallback_runs += 1
        rec = self._serial.run(prefix)
        self.stats.runs += 1
        self.stats.executed_steps += rec.suffix_steps
        self.stats.replayed_choices += rec.replayed_choices
        return rec

    def _await(self, run_id: int, serving: _CoordConn) -> Optional[Tuple[str, Any, Any]]:
        grace: Optional[float] = None
        while True:
            self._pump(0.05)
            if run_id in self._inbox:
                self._begun.pop(run_id, None)
                return self._inbox.pop(run_id)
            if serving.closed:
                return None
            pid = self._begun.get(run_id, serving.pid)
            if pid is not None and not _alive(pid):
                # The runner is gone; give in-flight bytes a moment.
                now = time.monotonic()
                if grace is None:
                    grace = now + 0.5
                elif now > grace:
                    self._begun.pop(run_id, None)
                    return None

    def _evict(self) -> None:
        while len(self._holders) > self._max_holders:
            victim = min(self._holders.values(), key=lambda c: c.touch)
            self._kill_holder(victim)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Tear down the pool and reap every parked holder."""
        if self._closed:
            return
        self._closed = True
        for conn in list(self._holders.values()):
            self._kill_holder(conn)
        if self._root is not None:
            self._kill_holder(self._root)
        for key in list(self._sel.get_map().values()):
            if key.fileobj is self._listener:
                continue
            self._forget(key.data)
        try:
            self._sel.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        self._sel.close()
        try:
            os.unlink(self._addr)
        except OSError:
            pass
        try:
            os.rmdir(self._dir)
        except OSError:
            pass
        # The root is this process's direct child; reap it.
        deadline = time.monotonic() + 2.0
        while _alive(self._root_pid) and time.monotonic() < deadline:
            try:
                pid, _ = os.waitpid(self._root_pid, os.WNOHANG)
            except ChildProcessError:
                return
            if pid:
                return
            time.sleep(0.01)
        try:
            os.kill(self._root_pid, signal.SIGKILL)
            os.waitpid(self._root_pid, 0)
        except (ProcessLookupError, ChildProcessError, OSError):
            pass

    def __enter__(self) -> "ForkSnapshotPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __del__(self) -> None:  # last-resort cleanup
        try:
            self.close()
        except Exception:
            pass


def _send_coord(conn: _CoordConn, obj: Any) -> bool:
    if conn.closed:
        return False
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    payload = _LEN.pack(len(data)) + data
    try:
        conn.sock.setblocking(True)
        conn.sock.sendall(payload)
        conn.sock.setblocking(False)
        return True
    except OSError:
        return False


def _unpickle_error(payload: Optional[bytes], text: Any) -> BaseException:
    if payload is not None:
        try:
            err = pickle.loads(payload)
            if isinstance(err, BaseException):
                return err
        except Exception:
            pass
    return RuntimeError(f"exploration worker failed: {text}")


def make_pool(
    build: Callable[[Kernel], None],
    *,
    snapshots: bool = False,
    seed: int = 0,
    max_steps: int = 20_000,
    max_time: float = float("inf"),
    record_trace: bool = False,
    observe: Optional[Callable[[Kernel], object]] = None,
    postprocess: Optional[Callable[[Kernel, _DFSScheduler], dict]] = None,
    max_holders: int = 48,
    bound: Optional[Bound] = None,
):
    """Pick the executor: fork-based snapshots when requested and
    available, the seed stateless replayer otherwise."""
    if snapshots and fork_available():
        return ForkSnapshotPool(
            build,
            seed=seed,
            max_steps=max_steps,
            max_time=max_time,
            record_trace=record_trace,
            observe=observe,
            postprocess=postprocess,
            max_holders=max_holders,
            bound=bound,
        )
    return StatelessPool(
        build,
        seed=seed,
        max_steps=max_steps,
        max_time=max_time,
        record_trace=record_trace,
        observe=observe,
        postprocess=postprocess,
        sanitize=snapshots,
        bound=bound,
    )
