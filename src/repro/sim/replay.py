"""Schedule recording and exact replay.

``(program, scheduler, seed)`` already determines a run; these utilities
make the schedule itself a first-class artefact:

* :class:`RecordingScheduler` wraps any scheduler and logs the tid chosen
  at every step;
* :class:`ReplayScheduler` re-applies a recorded choice list, yielding a
  bit-exact re-execution — including of *shorter* prefixes, which the
  exhaustive explorer (:mod:`repro.sim.explore`) uses to steer runs down
  chosen branches.

This is the "record and replay" baseline the paper contrasts against
(Section 1's heavy-weight alternative) in its cheapest possible form: on
the simulation substrate the recording is just the choice list, so the
comparison benches can put breakpoints and replay side by side.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .scheduler import RandomScheduler, Scheduler
from .thread import SimThread

__all__ = ["RecordingScheduler", "ReplayScheduler", "ReplayDivergence"]


class ReplayDivergence(RuntimeError):
    """The program reached a state the recorded schedule cannot drive.

    Raised when the recorded tid is not runnable at the replayed step —
    the program under replay differs from the recorded one (or the
    recording was truncated and ``strict`` is set).
    """


class RecordingScheduler(Scheduler):
    """Delegates to an inner scheduler and records every choice."""

    def __init__(self, inner: Optional[Scheduler] = None, seed: Optional[int] = None) -> None:
        self.inner = inner if inner is not None else RandomScheduler(seed)
        self.choices: List[int] = []

    def on_spawn(self, thread: SimThread) -> None:
        """Forward the spawn to the inner scheduler."""
        self.inner.on_spawn(thread)

    def pick(self, runnable: Sequence[SimThread], step: int) -> SimThread:
        """Delegate the choice and record the picked tid."""
        chosen = self.inner.pick(runnable, step)
        self.choices.append(chosen.tid)
        return chosen

    def delay_after_pick(self, thread: SimThread, step: int) -> float:
        """Delegate noise injection to the inner scheduler."""
        return self.inner.delay_after_pick(thread, step)


class ReplayScheduler(Scheduler):
    """Re-applies a recorded choice list.

    After the recording is exhausted, falls back to ``fallback`` (default:
    deterministic lowest-tid) so prefix replays still run to completion.
    With ``strict=True``, divergence — a recorded tid that is not
    runnable — raises :class:`ReplayDivergence` instead of falling back.
    """

    def __init__(
        self,
        choices: Sequence[int],
        fallback: Optional[Scheduler] = None,
        strict: bool = False,
    ) -> None:
        self.choices = list(choices)
        self.fallback = fallback
        self.strict = strict
        self._idx = 0
        self.replayed = 0
        self.diverged = False

    def on_spawn(self, thread: SimThread) -> None:
        """Forward the spawn to the fallback scheduler, if any."""
        if self.fallback is not None:
            self.fallback.on_spawn(thread)

    def pick(self, runnable: Sequence[SimThread], step: int) -> SimThread:
        """Re-apply the recorded tid; fall back or raise on divergence."""
        if self._idx < len(self.choices):
            wanted = self.choices[self._idx]
            self._idx += 1
            for t in runnable:
                if t.tid == wanted:
                    self.replayed += 1
                    return t
            self.diverged = True
            if self.strict:
                raise ReplayDivergence(
                    f"recorded tid {wanted} not runnable at step {step} "
                    f"(runnable: {[t.tid for t in runnable]})"
                )
        if self.fallback is not None:
            return self.fallback.pick(runnable, step)
        return runnable[0]
