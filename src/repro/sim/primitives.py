"""Synchronisation primitives for simulated threads.

These mirror ``threading``'s primitives — :class:`SimLock`,
:class:`SimRLock`, :class:`SimCondition`, :class:`SimSemaphore`,
:class:`SimBarrier`, :class:`SimEvent` — plus a correct bounded
:class:`SimQueue` built from them.  The objects themselves are passive
state (owner, waiter queues); all blocking behaviour is implemented by the
kernel's syscall dispatch, so a primitive is exactly as buggy or correct
as the semantics of its syscalls.

Monitor semantics are Java-faithful where it matters for the benchmarks:
``notify`` with no waiters is lost (missed notifications), ``wait``
releases and reacquires the monitor, and waiters woken by ``notify`` must
recontend for the lock.

Each generator helper (``yield from lock.acquire()``) is a scheduling
point.  Helpers accept an optional ``loc`` tag so benchmark code can label
events with the original program's source lines (e.g.
``"SocketClientFactory.java:872"``).
"""

from __future__ import annotations

import itertools
from typing import Any, Deque, List, Optional

from collections import deque

from .syscalls import (
    Acquire,
    AcquireSem,
    BarrierWait,
    EventClear,
    EventSet,
    EventWait,
    Notify,
    Release,
    ReleaseSem,
    Wait,
)

__all__ = [
    "SimLock",
    "SimRLock",
    "SimCondition",
    "SimSemaphore",
    "SimBarrier",
    "SimEvent",
    "SimQueue",
]

_ids = itertools.count(1)


def _waiter_tids(waiters: List[Any]) -> tuple:
    """Tids of queued waiters, in queue order (for ``state_key``)."""
    return tuple(getattr(w, "tid", None) for w in waiters)


class SimLock:
    """A non-reentrant mutex.

    ``tag`` is the lock's *type* label for ``isLockTypeHeld`` predicates
    (defaults to ``name``).  Acquiring a ``SimLock`` twice from the same
    thread is a self-deadlock, as with ``threading.Lock``.
    """

    reentrant = False

    def __init__(self, name: str = "", tag: Optional[str] = None) -> None:
        self.uid = next(_ids)
        self.name = name or f"lock{self.uid}"
        self.tag = tag if tag is not None else self.name
        self.owner = None  # SimThread | None
        self.count = 0  # recursion depth (RLock only exceeds 1)
        self.waiters: List[Any] = []  # blocked SimThreads, FIFO

    def acquire(self, loc: Optional[str] = None):
        """``yield from lock.acquire()`` — block until held."""
        yield Acquire(self, loc=loc)
        return True

    def release(self, loc: Optional[str] = None):
        """``yield from lock.release()``."""
        yield Release(self, loc=loc)

    def locked(self) -> bool:
        """Non-blocking inspection (no scheduling point)."""
        return self.owner is not None

    def state_key(self) -> tuple:
        """Process-portable structural state (uids/tids, no ``id()``),
        folded into :meth:`repro.sim.Kernel.state_signature`."""
        return (
            type(self).__name__,
            self.uid,
            self.name,
            self.owner.tid if self.owner is not None else None,
            self.count,
            _waiter_tids(self.waiters),
        )

    def __repr__(self) -> str:
        o = self.owner.name if self.owner is not None else None
        return f"{type(self).__name__}({self.name!r}, owner={o!r})"


class SimRLock(SimLock):
    """Reentrant mutex: the Java monitor used by ``synchronized`` blocks."""

    reentrant = True


class SimCondition:
    """Condition variable bound to a lock (created if not supplied).

    ``wait``/``notify`` follow monitor rules: callers must hold ``lock``;
    ``wait`` atomically releases it and blocks; notified waiters move to
    the lock's contention queue and reacquire before ``wait`` returns.
    """

    def __init__(self, lock: Optional[SimLock] = None, name: str = "") -> None:
        self.uid = next(_ids)
        self.name = name or f"cond{self.uid}"
        self.lock = lock if lock is not None else SimRLock(name=f"{self.name}.lock")
        self.waiters: List[Any] = []

    def acquire(self, loc: Optional[str] = None):
        """Acquire the condition's lock (generator syscall)."""
        return (yield from self.lock.acquire(loc=loc))

    def release(self, loc: Optional[str] = None):
        """Release the condition's lock."""
        yield from self.lock.release(loc=loc)

    def wait(self, timeout: Optional[float] = None, loc: Optional[str] = None):
        """``ok = yield from cond.wait(timeout)`` — False on timeout."""
        ok = yield Wait(self, timeout, loc=loc)
        return ok

    def wait_for(self, predicate, timeout: Optional[float] = None, loc: Optional[str] = None):
        """``ok = yield from cond.wait_for(pred)`` — the recheck loop done
        right (``threading.Condition.wait_for`` semantics).

        Re-evaluates ``predicate()`` after every wake; with a timeout the
        remaining budget shrinks across waits and the final predicate
        value is returned.  Benchmarks implementing *buggy* waiters avoid
        this helper on purpose — the missed-notification bugs are exactly
        what happens without it.
        """
        from .syscalls import Now

        remaining = timeout
        result = predicate()
        while not result:
            if remaining is not None and remaining <= 0:
                return predicate()
            before = yield Now()
            yield from self.wait(remaining, loc=loc)
            if remaining is not None:
                after = yield Now()
                remaining -= after - before
            result = predicate()
        return result

    def notify(self, n: int = 1, loc: Optional[str] = None):
        """Wake up to ``n`` waiters; lost if none are waiting."""
        yield Notify(self, n, loc=loc)

    def notify_all(self, loc: Optional[str] = None):
        """Wake every waiter."""
        yield Notify(self, None, loc=loc)

    def state_key(self) -> tuple:
        """Hashable state summary for exploration hashing."""
        return (
            "SimCondition",
            self.uid,
            self.name,
            self.lock.uid,
            _waiter_tids(self.waiters),
        )

    def __repr__(self) -> str:
        return f"SimCondition({self.name!r}, waiters={len(self.waiters)})"


class SimSemaphore:
    """Counting semaphore."""

    def __init__(self, value: int = 1, name: str = "") -> None:
        if value < 0:
            raise ValueError("semaphore initial value must be >= 0")
        self.uid = next(_ids)
        self.name = name or f"sem{self.uid}"
        self.value = value
        self.waiters: List[Any] = []

    def acquire(self, loc: Optional[str] = None):
        """Take one permit, blocking while none are free."""
        yield AcquireSem(self, loc=loc)
        return True

    def release(self, loc: Optional[str] = None):
        """Return one permit and wake a waiter."""
        yield ReleaseSem(self, loc=loc)

    def state_key(self) -> tuple:
        """Hashable state summary for exploration hashing."""
        return (
            "SimSemaphore",
            self.uid,
            self.name,
            self.value,
            _waiter_tids(self.waiters),
        )

    def __repr__(self) -> str:
        return f"SimSemaphore({self.name!r}, value={self.value})"


class SimBarrier:
    """Cyclic barrier for ``parties`` threads."""

    def __init__(self, parties: int, name: str = "") -> None:
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self.uid = next(_ids)
        self.name = name or f"barrier{self.uid}"
        self.parties = parties
        self.count = 0
        self.generation = 0
        self.waiters: List[Any] = []

    def wait(self, loc: Optional[str] = None):
        """``idx = yield from barrier.wait()`` — arrival index 0..parties-1."""
        idx = yield BarrierWait(self, loc=loc)
        return idx

    def state_key(self) -> tuple:
        """Hashable state summary for exploration hashing."""
        return (
            "SimBarrier",
            self.uid,
            self.name,
            self.parties,
            self.count,
            self.generation,
            _waiter_tids(self.waiters),
        )

    def __repr__(self) -> str:
        return f"SimBarrier({self.name!r}, {self.count}/{self.parties})"


class SimEvent:
    """One-shot (clearable) event flag."""

    def __init__(self, name: str = "") -> None:
        self.uid = next(_ids)
        self.name = name or f"event{self.uid}"
        self.flag = False
        self.waiters: List[Any] = []

    def wait(self, timeout: Optional[float] = None, loc: Optional[str] = None):
        """Block until the flag is set (optional timeout)."""
        ok = yield EventWait(self, timeout, loc=loc)
        return ok

    def set(self, loc: Optional[str] = None):
        """Set the flag and wake all waiters."""
        yield EventSet(self, loc=loc)

    def clear(self, loc: Optional[str] = None):
        """Reset the flag."""
        yield EventClear(self, loc=loc)

    def is_set(self) -> bool:
        """Current flag value."""
        return self.flag

    def state_key(self) -> tuple:
        """Hashable state summary for exploration hashing."""
        return (
            "SimEvent",
            self.uid,
            self.name,
            self.flag,
            _waiter_tids(self.waiters),
        )

    def __repr__(self) -> str:
        return f"SimEvent({self.name!r}, set={self.flag})"


class SimQueue:
    """A *correct* bounded FIFO queue, composed from a monitor.

    Provided as the reference implementation for producer/consumer apps
    (the buggy benchmarks implement their own flawed variants).  With
    ``maxsize=0`` the queue is unbounded.
    """

    def __init__(self, maxsize: int = 0, name: str = "") -> None:
        self.uid = next(_ids)
        self.name = name or f"queue{self.uid}"
        self.maxsize = maxsize
        self.items: Deque[Any] = deque()
        self.mutex = SimRLock(name=f"{self.name}.mutex")
        self.not_empty = SimCondition(self.mutex, name=f"{self.name}.not_empty")
        self.not_full = SimCondition(self.mutex, name=f"{self.name}.not_full")

    def qsize(self) -> int:
        """Number of queued items."""
        return len(self.items)

    def put(self, item: Any, loc: Optional[str] = None):
        """Enqueue an item, blocking while the queue is full."""
        yield from self.mutex.acquire(loc=loc)
        while self.maxsize and len(self.items) >= self.maxsize:
            yield from self.not_full.wait(loc=loc)
        self.items.append(item)
        yield from self.not_empty.notify(loc=loc)
        yield from self.mutex.release(loc=loc)

    def get(self, loc: Optional[str] = None):
        """Dequeue an item, blocking while the queue is empty."""
        yield from self.mutex.acquire(loc=loc)
        while not self.items:
            yield from self.not_empty.wait(loc=loc)
        item = self.items.popleft()
        yield from self.not_full.notify(loc=loc)
        yield from self.mutex.release(loc=loc)
        return item

    def state_key(self) -> tuple:
        """Hashable state summary for exploration hashing."""
        return (
            "SimQueue",
            self.uid,
            self.name,
            self.maxsize,
            len(self.items),
            self.mutex.state_key(),
            self.not_empty.state_key(),
            self.not_full.state_key(),
        )

    def __repr__(self) -> str:
        return f"SimQueue({self.name!r}, size={len(self.items)})"
