"""ASCII timeline rendering of execution traces.

Turns a recorded trace into a per-thread lane diagram — the first thing a
developer wants to *see* when a breakpoint fires or a deadlock is
detected::

    t=0.0000  appender   | acquire      AsyncAppender.buffer @ AsyncAppender.java:100
    t=0.0000  appender   | write        buffer.count = 1
    t=0.0022  Dispatcher |     trigger_postpone  [missed-notify1]
    t=0.0103  admin      |         acquire       AsyncAppender.buffer
    ...

Lanes are ordered by thread id; each event line is indented into its
thread's lane.  ``around_breakpoints`` trims a long trace to windows
around the trigger events — the slice of history that explains a match.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .trace import OP, Event, Trace

__all__ = ["render_timeline", "render_choice_path", "around_breakpoints"]

_VALUE_OPS = {OP.READ, OP.WRITE}
_SKIP_BY_DEFAULT = {OP.FORK, OP.SLEEP}


def _describe(ev: Event) -> str:
    obj_name = getattr(ev.obj, "name", None)
    if ev.op == OP.WRITE:
        return f"write       {obj_name} = {ev.extra!r}"
    if ev.op == OP.READ:
        return f"read        {obj_name} -> {ev.extra!r}"
    if ev.op.startswith("trigger"):
        name = (ev.extra or {}).get("name", "?") if isinstance(ev.extra, dict) else "?"
        tail = ""
        if isinstance(ev.extra, dict) and "threads" in ev.extra:
            tail = f" threads={ev.extra['threads']}"
        return f"{ev.op:<11} [{name}]{tail}"
    if ev.op == OP.NOTIFY:
        return f"notify      {obj_name} (woke {ev.extra})"
    if obj_name is not None:
        return f"{ev.op:<11} {obj_name}"
    return ev.op


def render_timeline(
    trace: Trace | Sequence[Event],
    include: Optional[Iterable[str]] = None,
    show_loc: bool = True,
    lane_width: int = 12,
    limit: Optional[int] = None,
) -> str:
    """Render events as per-thread lanes.

    ``include`` restricts to the given op-codes (default: everything
    except forks and sleeps).  ``limit`` caps the number of rendered
    lines.
    """
    events = list(trace)
    wanted = set(include) if include is not None else None

    lanes: List[int] = []
    names = {}
    for ev in events:
        if ev.tid not in names:
            names[ev.tid] = ev.tname
            lanes.append(ev.tid)
    lanes.sort()
    lane_index = {tid: i for i, tid in enumerate(lanes)}

    lines = []
    for ev in events:
        if wanted is not None:
            if ev.op not in wanted:
                continue
        elif ev.op in _SKIP_BY_DEFAULT:
            continue
        indent = "    " * lane_index.get(ev.tid, 0)
        desc = _describe(ev)
        loc = f"  @ {ev.loc}" if show_loc and ev.loc not in ("?", None) else ""
        lines.append(f"t={ev.time:0.4f}  {ev.tname:<{lane_width}}|{indent} {desc}{loc}")
        if limit is not None and len(lines) >= limit:
            lines.append(f"... ({len(events)} events total)")
            break
    header = "  ".join(f"[{names[tid]}]" for tid in lanes)
    return f"lanes: {header}\n" + "\n".join(lines)


def render_choice_path(
    choices: Sequence[int],
    runnable_sets: Optional[Sequence[Sequence[int]]] = None,
    limit: int = 24,
) -> str:
    """One-line rendering of a scheduling-choice witness.

    Explorer outcomes identify a schedule by its choice tuple; this
    prints it compactly for the ``repro explore`` CLI, marking the real
    branch points (``!`` where more than one thread was runnable) when
    the runnable sets are available::

        tid 0 0 1!0 1! ... (+12 more)

    The choice tuple is directly replayable via ``explore(prefix=...)``
    or a forced-prefix scheduler.
    """
    parts = []
    for d, tid in enumerate(choices[:limit]):
        branchy = (
            runnable_sets is not None
            and d < len(runnable_sets)
            and len(runnable_sets[d]) > 1
        )
        parts.append(f"{tid}!" if branchy else str(tid))
    tail = f" ... (+{len(choices) - limit} more)" if len(choices) > limit else ""
    return "tid " + " ".join(parts) + tail


def around_breakpoints(trace: Trace, context: int = 5) -> List[Event]:
    """The events surrounding each breakpoint event (± ``context``)."""
    events = list(trace)
    keep = set()
    for idx, ev in enumerate(events):
        if ev.op in (OP.TRIGGER_VISIT, OP.TRIGGER_POSTPONE, OP.TRIGGER_HIT, OP.TRIGGER_TIMEOUT):
            lo = max(0, idx - context)
            hi = min(len(events), idx + context + 1)
            keep.update(range(lo, hi))
    return [events[i] for i in sorted(keep)]
