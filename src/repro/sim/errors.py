"""Exception types for the simulation kernel."""

from __future__ import annotations

__all__ = [
    "SimError",
    "SimDeadlockError",
    "SimStallError",
    "SimLimitError",
    "SimSyscallError",
    "ThreadFailure",
]


class SimError(Exception):
    """Base class for kernel-level errors."""


class SimDeadlockError(SimError):
    """All live threads are blocked with no pending timer: a true deadlock.

    ``waiters`` maps thread name -> description of what it is blocked on;
    ``cycle`` (if found) lists the thread names in a wait-for cycle.
    """

    def __init__(self, waiters, cycle=None):
        self.waiters = dict(waiters)
        self.cycle = list(cycle) if cycle else None
        detail = "; ".join(f"{t} blocked on {w}" for t, w in self.waiters.items())
        msg = f"deadlock: {detail}"
        if self.cycle:
            msg += f" (cycle: {' -> '.join(self.cycle)})"
        super().__init__(msg)


class SimStallError(SimError):
    """The run exceeded its virtual-time horizon with threads still live.

    The kernel reports this for missed-notification bugs: threads wait on
    a condition that is never signalled while a timer (or nothing at all)
    keeps virtual time crawling.  The paper detects such stalls "by large
    timeouts" (Section 6); ``max_time`` plays that role here.
    """


class SimLimitError(SimError):
    """The run exceeded ``max_steps`` (runaway loop guard)."""


class SimSyscallError(SimError):
    """A simulated thread misused a primitive (e.g. releasing a lock it
    does not hold, waiting on a condition without its lock)."""


class ThreadInterrupted(Exception):
    """Delivered into a thread by the ``Interrupt`` syscall (the analogue
    of Java's ``InterruptedException``).  Deliberately NOT a
    :class:`SimError`: application code is expected to catch it."""


class ThreadFailure:
    """Record of an uncaught exception inside a simulated thread.

    Not an exception itself: the kernel collects failures in the run
    result so bug oracles can inspect them (a crashing thread *is* the
    observable error for several benchmarks, e.g. stringbuffer's
    out-of-bounds exception or pbzip2's null dereference).
    """

    __slots__ = ("thread_name", "exc", "time", "step")

    def __init__(self, thread_name: str, exc: BaseException, time: float, step: int):
        self.thread_name = thread_name
        self.exc = exc
        self.time = time
        self.step = step

    def __repr__(self) -> str:
        return (
            f"ThreadFailure({self.thread_name!r}, {type(self.exc).__name__}: "
            f"{self.exc}, t={self.time:.6f})"
        )
