"""Shared memory with observable accesses.

Data races are interactions on *memory locations*; for the detectors
(Eraser locksets, vector-clock happens-before) and for race-triggering
breakpoints to see them, racy state must live in :class:`SharedCell` /
:class:`SharedArray` objects whose reads and writes are syscalls.  Plain
Python attributes remain invisible to analysis — benchmarks use them for
state that is not part of the bug.

A read-modify-write on a cell is two syscalls with a preemption point in
between::

    v = yield from counter.get()
    yield from counter.set(v + 1)      # lost-update window here

which is precisely the non-atomicity the racy benchmarks rely on.
"""

from __future__ import annotations

import itertools
from typing import Any, List, Optional

from .syscalls import Read, Write

__all__ = ["SharedCell", "SharedArray"]

_ids = itertools.count(1)


class SharedCell:
    """A single observable memory location."""

    __slots__ = ("uid", "name", "value")

    def __init__(self, value: Any = None, name: str = "") -> None:
        self.uid = next(_ids)
        self.name = name or f"cell{self.uid}"
        self.value = value

    def get(self, loc: Optional[str] = None):
        """``v = yield from cell.get()`` — observable read."""
        v = yield Read(self, loc=loc)
        return v

    def set(self, value: Any, loc: Optional[str] = None):
        """``yield from cell.set(v)`` — observable write."""
        yield Write(self, value, loc=loc)

    def peek(self) -> Any:
        """Unobserved read for oracles/tests *outside* simulated threads."""
        return self.value

    def poke(self, value: Any) -> None:
        """Unobserved write for setup code outside simulated threads."""
        self.value = value

    def state_key(self) -> tuple:
        """Process-portable structural state (``repr`` of the value, so
        cells holding plain data compare across processes; cells holding
        custom objects need those objects' reprs to be stable)."""
        return ("SharedCell", self.uid, self.name, repr(self.value))

    def __repr__(self) -> str:
        return f"SharedCell({self.name!r}={self.value!r})"


class SharedArray:
    """A fixed-length vector of observable locations sharing one name.

    Element accesses are observable per-index (the event's ``extra``
    carries the index), so detectors can distinguish same-index conflicts
    — enough for the moldyn/raytracer-style accumulation races.
    """

    __slots__ = ("uid", "name", "cells")

    def __init__(self, size: int, fill: Any = 0, name: str = "") -> None:
        self.uid = next(_ids)
        self.name = name or f"array{self.uid}"
        self.cells: List[SharedCell] = [
            SharedCell(fill, name=f"{self.name}[{i}]") for i in range(size)
        ]

    def __len__(self) -> int:
        return len(self.cells)

    def get(self, index: int, loc: Optional[str] = None):
        """Observable read of cell ``index`` (generator syscall)."""
        v = yield from self.cells[index].get(loc=loc)
        return v

    def set(self, index: int, value: Any, loc: Optional[str] = None):
        """Observable write of cell ``index`` (generator syscall)."""
        yield from self.cells[index].set(value, loc=loc)

    def add(self, index: int, delta: Any, loc: Optional[str] = None):
        """Racy read-modify-write: the classic lost-update pattern."""
        v = yield from self.cells[index].get(loc=loc)
        yield from self.cells[index].set(v + delta, loc=loc)

    def snapshot(self) -> List[Any]:
        """Unobserved copy of all values (for oracles)."""
        return [c.value for c in self.cells]

    def state_key(self) -> tuple:
        """Hashable state summary for exploration hashing."""
        return (
            "SharedArray",
            self.uid,
            self.name,
            tuple(c.state_key() for c in self.cells),
        )

    def __repr__(self) -> str:
        return f"SharedArray({self.name!r}, len={len(self.cells)})"
