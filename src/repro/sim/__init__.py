"""``repro.sim`` — deterministic concurrency simulation substrate.

Simulated threads are generator functions yielding syscalls; the
:class:`Kernel` executes them under a pluggable, seeded scheduler on a
virtual clock.  See :mod:`repro.sim.kernel` for the execution model and
DESIGN.md for why this substrate replaces the paper's JVM/pthreads
testbed.

Quick example::

    from repro.sim import Kernel, SimLock, SharedCell

    counter = SharedCell(0, name="counter")
    lock = SimLock("counter_lock")

    def worker():
        for _ in range(100):
            yield from lock.acquire()
            v = yield from counter.get()
            yield from counter.set(v + 1)
            yield from lock.release()

    k = Kernel(seed=42)
    k.spawn(worker, name="w1")
    k.spawn(worker, name="w2")
    result = k.run()
    assert result.ok and counter.peek() == 200
"""

from .errors import (
    SimDeadlockError,
    ThreadInterrupted,
    SimError,
    SimLimitError,
    SimStallError,
    SimSyscallError,
    ThreadFailure,
)
from .kernel import Kernel, RunResult
from .memory import SharedArray, SharedCell
from .primitives import (
    SimBarrier,
    SimCondition,
    SimEvent,
    SimLock,
    SimQueue,
    SimRLock,
    SimSemaphore,
)
from .scheduler import (
    NoiseScheduler,
    PCTScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
)
from .syscalls import (
    Annotate,
    BeginAtomic,
    EndAtomic,
    Interrupt,
    Join,
    Now,
    Sleep,
    Trigger,
    Yield,
)
from .dpor import DporStats, explore_dpor, explore_dpor_sharded
from .explore import Exploration, Outcome, explore, explore_sharded, merge_shards
from .replay import RecordingScheduler, ReplayDivergence, ReplayScheduler
from .snapshot import (
    Bound,
    ForkSnapshotPool,
    PoolStats,
    RunRecord,
    StatelessPool,
    count_preemptions,
    fork_available,
    make_pool,
)
from .thread import SimThread, TState
from .timeline import around_breakpoints, render_choice_path, render_timeline
from .trace import OP, Event, Trace

__all__ = [
    "Kernel",
    "RunResult",
    "SimThread",
    "TState",
    "SimLock",
    "SimRLock",
    "SimCondition",
    "SimSemaphore",
    "SimBarrier",
    "SimEvent",
    "SimQueue",
    "SharedCell",
    "SharedArray",
    "Scheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "PCTScheduler",
    "NoiseScheduler",
    "RecordingScheduler",
    "ReplayScheduler",
    "ReplayDivergence",
    "Bound",
    "count_preemptions",
    "Exploration",
    "Outcome",
    "explore",
    "explore_sharded",
    "merge_shards",
    "explore_dpor",
    "explore_dpor_sharded",
    "DporStats",
    "RunRecord",
    "PoolStats",
    "StatelessPool",
    "ForkSnapshotPool",
    "make_pool",
    "fork_available",
    "render_timeline",
    "render_choice_path",
    "around_breakpoints",
    "OP",
    "Event",
    "Trace",
    "Sleep",
    "Yield",
    "Join",
    "Interrupt",
    "ThreadInterrupted",
    "Now",
    "Annotate",
    "BeginAtomic",
    "EndAtomic",
    "Trigger",
    "SimError",
    "SimDeadlockError",
    "SimStallError",
    "SimLimitError",
    "SimSyscallError",
    "ThreadFailure",
]
