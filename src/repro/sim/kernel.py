"""The deterministic concurrency kernel.

A :class:`Kernel` executes simulated threads (generators yielding
syscalls) under a pluggable scheduler on a *virtual clock*.  This is the
evaluation substrate that replaces the paper's JVM/pthreads testbed
(DESIGN.md, substitution table): Heisenbug probability is a property of
the schedule distribution, which the scheduler reproduces; virtual time
makes 100-trial probability estimates with 100 ms–10 s breakpoint pauses
run in milliseconds of wall time; and ``(program, scheduler, seed)``
exactly determines the run, so every reported bug is replayable.

Key mechanics:

* **One syscall per step.**  The scheduler picks a runnable thread, the
  kernel resumes its generator, receives the next syscall, applies its
  effect, and loops.  Python code between yields is atomic.
* **Virtual time.**  Each step costs ``step_cost`` virtual seconds;
  ``Sleep``/timeouts arm a timer heap; when nothing is runnable the clock
  jumps to the next deadline.  "Runtime" and "overhead" in the Table 1
  reproduction are virtual-clock readings.
* **Breakpoints.**  The ``Trigger`` syscall routes through a
  :class:`~repro.core.engine.BreakpointEngine` shared with the OS
  backend.  On a match the kernel *pins* the first-action thread so its
  next instruction executes before the partner resumes — the exact
  scheduling action of paper Section 2, which the OS backend can only
  approximate.
* **Stall/deadlock detection.**  No runnable thread and no timers with
  live threads is a deadlock (reported with the wait-for cycle, like the
  Jigsaw example); exceeding ``max_time`` with live threads is a stall —
  the paper's "stalls due to missed notifications are detected by large
  timeouts".

Fast path
---------

Steps/sec is the scaling limit for every trial, exploration, and
service job, so the per-step loop is written for raw speed (see
DESIGN.md "Kernel fast path"):

* The runnable set is a **maintained tid-sorted list** (``_ready``),
  updated at every state transition, instead of a per-step scan+sort of
  all threads.  The scheduler receives the live list; by contract
  (:class:`~repro.sim.scheduler.Scheduler.pick`) schedulers must not
  retain or mutate it.
* Syscall dispatch is a **precomputed class-keyed handler table**
  (``_HANDLERS``), resolved once per syscall class instead of a 20-way
  ``isinstance`` chain per step.
* Trace append is **O(1) amortized into a flat slot buffer**
  (:class:`~repro.sim.trace.Trace`); the hot handlers skip all record
  work — including source-location frame walks — when tracing is off.
* Scheduler noise is consulted only when the scheduler actually
  overrides ``delay_after_pick`` (checked once per run, not per step).

The pre-rewrite loop survives verbatim as
:class:`repro.sim._reference.ReferenceKernel`: the differential battery
asserts both kernels pick identical threads and emit bit-identical
traces, and the golden corpus (``tests/sim/golden/``) pins fingerprints
per app+seed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import heapq
import itertools
import math
import random
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core import runtimectx
from repro.core.engine import BreakpointEngine, Matched, MatchedGroup, Postponed, Skipped

from . import syscalls as sc
from .errors import SimDeadlockError, SimSyscallError, ThreadFailure, ThreadInterrupted
from .primitives import SimCondition, SimEvent, SimLock
from .scheduler import RandomScheduler, Scheduler
from .thread import SimThread, TState, current_location
from .trace import OP, Trace

__all__ = ["Kernel", "RunResult"]


def _assign_mix_slots() -> List[str]:
    """Give every syscall class a small integer ``_mix_idx`` and return
    the matching metric names.

    The per-dispatch syscall-mix accounting is the only per-step work
    observability adds, so it has to be as close to free as Python
    allows: ``mix[call._mix_idx] += 1`` (one cached class-attribute load
    plus a list subscript) beats hashing the class into a dict by ~30 %.
    Classes defined after import (tests, extensions) are registered
    lazily via :meth:`Kernel._count_unslotted_syscall`.
    """
    names: List[str] = []

    def walk(cls: type) -> None:
        for sub in cls.__subclasses__():
            sub._mix_idx = len(names)
            names.append(f"kernel.syscall.{sub.__name__}")
            walk(sub)

    walk(sc.Syscall)
    return names


_MIX_NAMES: List[str] = _assign_mix_slots()

#: Zero slab matching the import-time slot count — the common case when
#: re-zeroing a pooled :class:`SlotCounters` (slabs that grew lazy slots
#: fall back to a fresh zero list of their own length).
_MIX_ZEROS: List[int] = [0] * len(_MIX_NAMES)

#: Lazily bound :class:`repro.obs.context.SlotCounters` — resolved on
#: the first instrumented construction so the module keeps no static
#: obs dependency.
_SlotCounters = None


@dataclasses.dataclass
class RunResult:
    """Outcome of :meth:`Kernel.run`."""

    time: float
    steps: int
    completed: bool  # every non-daemon thread finished
    deadlocked: bool
    deadlock: Optional[SimDeadlockError]
    stalled: bool  # max_time reached with live threads
    limit_hit: bool  # max_steps reached
    failures: List[ThreadFailure]
    trace: Optional[Trace]
    breakpoint_stats: Dict[str, Any]
    threads: List[SimThread]

    @property
    def ok(self) -> bool:
        """Clean termination: completed, no failures, no deadlock/stall."""
        return self.completed and not self.failures and not self.deadlocked and not self.stalled

    @property
    def stall_or_deadlock(self) -> bool:
        """The paper's "stall" error symptom covers both."""
        return self.deadlocked or self.stalled

    def breakpoint_hit(self, name: str) -> bool:
        """Did the named breakpoint fire in this run?"""
        st = self.breakpoint_stats.get(name)
        return bool(st and st.hits > 0)

    def summary(self) -> str:
        """One-line human summary of the run."""
        status = (
            "ok"
            if self.ok
            else "deadlock"
            if self.deadlocked
            else "stall"
            if self.stalled
            else "limit"
            if self.limit_hit
            else f"{len(self.failures)} failure(s)"
            if self.failures
            else "incomplete"
        )
        return f"RunResult({status}, t={self.time:.4f}s, steps={self.steps})"


class Kernel:
    """Deterministic discrete-event executor for simulated threads.

    Parameters
    ----------
    scheduler:
        Interleaving policy; defaults to :class:`RandomScheduler(seed)`.
    seed:
        Seeds the default scheduler and the kernel's application RNG
        (``kernel.rng``, for workload jitter inside simulated threads).
    record_trace:
        Record an event per syscall (needed by detectors; costs time and
        memory, so off by default for probability experiments).
    step_cost:
        Virtual seconds charged per scheduling step (models instruction
        time between synchronisation points).
    obs:
        Optional :class:`repro.obs.ObsContext` (duck-typed, no import
        dependency).  When given, the kernel counts steps, context
        switches, and the syscall mix into the metrics registry —
        accumulated in a flat :class:`~repro.obs.context.SlotCounters`
        slab during the run and folded once at the end, so the per-step
        cost stays inside the obs overhead gate — and publishes
        low-frequency bus events (thread lifecycle, deadlock/stall, run
        end).  Breakpoint instrumentation lives in the shared
        :class:`BreakpointEngine`, which receives the same context.
    """

    def __init__(
        self,
        scheduler: Optional[Scheduler] = None,
        seed: Optional[int] = None,
        record_trace: bool = False,
        step_cost: float = 1e-6,
        obs: Any = None,
    ) -> None:
        self.scheduler = scheduler if scheduler is not None else RandomScheduler(seed)
        self.rng = random.Random(seed if seed is None else seed ^ 0x5DEECE66D)
        self.now = 0.0
        self.step = 0
        self.step_cost = step_cost
        self.trace: Optional[Trace] = Trace() if record_trace else None
        #: Bound append of the trace (None when untraced): one attribute
        #: load instead of two plus a bound-method build per hot event.
        self._tappend = self.trace.append if record_trace else None
        self.obs = obs
        self.engine = BreakpointEngine(obs=obs)
        #: Scheduling steps where the picked thread differed from the
        #: previous one (tracked unconditionally; it is two attribute ops).
        self.ctx_switches = 0
        self._last_tid = -1
        #: Per-syscall dispatch counts in a flat slot slab, indexed by
        #: each class's ``_mix_idx`` (see :func:`_assign_mix_slots`);
        #: folded into ``kernel.syscall.*`` counters at flush.
        self._mix_counters = None
        self._syscall_mix: Optional[List[int]] = None
        self._obs_scratch = None
        self._obs_flushed = False
        # Assigned unconditionally (None when uninstrumented) so plain
        # and instrumented kernels materialise the *same* attribute set
        # in the same order — divergent instance shapes would knock the
        # class off CPython's shared-keys dicts and tax every attribute
        # access in a mixed plain/instrumented sweep.
        self._sig_spawn = None
        self._sig_thread_end = None
        self._sig_run_end = None
        if obs is not None:
            global _SlotCounters
            if _SlotCounters is None:
                # Deferred import: the kernel keeps no static obs
                # dependency, and a caller passing ``obs`` has already
                # imported the package.
                from repro.obs.context import SlotCounters

                _SlotCounters = SlotCounters
            # Per-context construction scratch.  A sweep constructs one
            # instrumented kernel per trial against a shared context
            # (``reuse_obs``), so the signal endpoints — get-or-create
            # on the bus anyway — and the slot slab are cached on the
            # context: steady-state obs construction zeroes a short int
            # list instead of re-walking import + allocation + bus
            # lookups.  The slab is checked out here and checked back
            # in by :meth:`_flush_obs`; a second kernel constructed
            # before the first flushes just allocates a fresh slab.
            scratch = getattr(obs, "_kernel_scratch", None)
            if scratch is None:
                sig = obs.bus.signal
                scratch = [
                    None,
                    sig("kernel.spawn"),
                    sig("kernel.thread_end"),
                    sig("kernel.run_end"),
                ]
                try:
                    obs._kernel_scratch = scratch
                except AttributeError:  # exotic duck-typed context
                    pass
            mc = scratch[0]
            if mc is not None:
                mc.counts[:] = _MIX_ZEROS if len(mc.counts) == len(
                    _MIX_ZEROS
                ) else [0] * len(mc.counts)
            else:
                mc = _SlotCounters(_MIX_NAMES)
            scratch[0] = None  # checked out until flush
            self._obs_scratch = scratch
            self._mix_counters = mc
            self._syscall_mix = mc.counts
            self._sig_spawn = scratch[1]
            self._sig_thread_end = scratch[2]
            self._sig_run_end = scratch[3]
        self.threads: List[SimThread] = []
        #: Tid-sorted list of RUNNABLE threads — the scheduler's view.
        #: Invariant: a thread appears here exactly when its state is
        #: RUNNABLE; every transition in/out of RUNNABLE updates it.
        self._ready: List[SimThread] = []
        self._live_foreground = 0  # alive non-daemon threads (run-loop gate)
        self._tids = itertools.count(0)
        self._timer_seq = itertools.count(0)
        self._timers: List[Tuple[float, int, SimThread, int, str, Any]] = []
        self._pinned: List[SimThread] = []
        self._wait_ctx: Dict[SimThread, Tuple[str, Any]] = {}  # why a thread waits on a lock
        self.current: Optional[SimThread] = None
        #: Optional syscall interceptor for active-testing tools
        #: (:mod:`repro.activetest`): called as ``hook(thread, syscall)``
        #: before dispatch; returning a positive delay postpones the
        #: syscall by that many virtual seconds (the CalFuzzer-style
        #: "insert a pause at this operation" primitive).
        self.pre_dispatch: Optional[Callable[[SimThread, Any], Optional[float]]] = None
        self.failures: List[ThreadFailure] = []
        self._limit_hit = False
        self._stalled = False
        self._deadlock: Optional[SimDeadlockError] = None

    # ------------------------------------------------------------------
    # Ready-set maintenance
    # ------------------------------------------------------------------
    def _ready_add(self, t: SimThread) -> None:
        """Insert ``t`` into the tid-sorted ready list."""
        ready = self._ready
        if not ready or ready[-1].tid < t.tid:
            ready.append(t)
            return
        tid = t.tid
        lo, hi = 0, len(ready)
        while lo < hi:
            mid = (lo + hi) // 2
            if ready[mid].tid < tid:
                lo = mid + 1
            else:
                hi = mid
        ready.insert(lo, t)

    # ------------------------------------------------------------------
    # Thread management
    # ------------------------------------------------------------------
    def spawn(
        self,
        fn: Callable[..., Any],
        *args: Any,
        name: Optional[str] = None,
        daemon: bool = False,
        **kwargs: Any,
    ) -> SimThread:
        """Create a simulated thread running ``fn(*args, **kwargs)``.

        ``fn`` must be a generator function (its body yields syscalls).
        """
        gen = fn(*args, **kwargs)
        if not hasattr(gen, "send"):
            raise TypeError(f"thread body {fn!r} must be a generator function")
        tid = next(self._tids)
        t = SimThread(tid, name or f"T{tid}", gen, daemon=daemon)
        t.state = TState.RUNNABLE
        t.spawn_time = self.now
        if not daemon:
            self._live_foreground += 1
        self.threads.append(t)
        # Tids are monotone, so a new thread always sorts last.
        self._ready.append(t)
        self.scheduler.on_spawn(t)
        if self.trace is not None:
            self._record(OP.FORK, obj=t, loc=self.current.location() if self.current else "main")
        if self.obs is not None and self._sig_spawn.active:
            self._sig_spawn(tid=tid, name=t.name, daemon=daemon, time=self.now)
        return t

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _arm_timer(self, thread: SimThread, delay: float, kind: str, payload: Any = None) -> None:
        heapq.heappush(
            self._timers,
            (self.now + delay, next(self._timer_seq), thread, thread.wake_epoch, kind, payload),
        )

    def _fire_due_timers(self) -> None:
        while self._timers and self._timers[0][0] <= self.now:
            _, _, thread, epoch, kind, payload = heapq.heappop(self._timers)
            if epoch != thread.wake_epoch or not thread.alive:
                continue  # stale: the thread was woken by another path
            self._timer_fired(thread, kind, payload)

    def _timer_fired(self, thread: SimThread, kind: str, payload: Any) -> None:
        if kind == "sleep":
            self._wake(thread, None)
        elif kind == "noise":
            # Scheduler-injected delay: wake WITHOUT touching ``pending``
            # — the preceding step's syscall result is still undelivered.
            thread.wake_epoch += 1
            thread.state = TState.RUNNABLE
            thread.waiting_on = None
            self._ready_add(thread)
        elif kind == "wait_timeout":
            cond: SimCondition = payload
            if thread in cond.waiters:
                cond.waiters.remove(thread)
            # A timed-out waiter still reacquires the monitor before
            # ``wait`` returns False, exactly like threading.Condition.
            ctx = self._wait_ctx.pop(thread, ("wait_return", (cond, 1, False)))
            self._begin_reacquire(thread, cond.lock, ctx[1][1], False)
        elif kind == "join_timeout":
            target: SimThread = payload
            if thread in target.joiners:
                target.joiners.remove(thread)
            self._wake(thread, False)
        elif kind == "event_timeout":
            event: SimEvent = payload
            if thread in event.waiters:
                event.waiters.remove(thread)
            self._wake(thread, False)
        elif kind == "retry":
            # An active-testing pause expired: perform the postponed
            # syscall now (without re-consulting the interceptor).
            thread.wake_epoch += 1
            thread.state = TState.RUNNABLE
            thread.waiting_on = None
            self._ready_add(thread)
            prev = self.current
            self.current = thread
            try:
                self._dispatch(thread, payload)
            except SimSyscallError as err:
                thread.pending_exc = RuntimeError(str(err))
            finally:
                self.current = prev
        elif kind == "trigger_timeout":
            entry = payload
            if entry.matched_with is None:
                self.engine.expire(entry)
                self._record(
                    OP.TRIGGER_TIMEOUT, obj=entry.inst, loc="?", extra={"name": entry.inst.name},
                    thread=thread,
                )
                self._wake(thread, False)
            # else: matched in the same instant; the match path woke it.
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unknown timer kind {kind!r}")

    def _wake(self, thread: SimThread, result: Any) -> None:
        """Move a blocked/sleeping thread back to the runnable set."""
        thread.wake_epoch += 1
        if thread.state is not TState.RUNNABLE:
            # Inlined _ready_add append fast path (hottest wake shape).
            ready = self._ready
            if not ready or ready[-1].tid < thread.tid:
                ready.append(thread)
            else:
                self._ready_add(thread)
        thread.state = TState.RUNNABLE
        thread.waiting_on = None
        thread.pending = result

    def _block(self, t: SimThread, state: TState, waiting_on: Any) -> None:
        """Take a RUNNABLE thread out of the ready set."""
        t.state = state
        t.waiting_on = waiting_on
        self._ready.remove(t)

    # ------------------------------------------------------------------
    # Lock plumbing (shared by Acquire, Release, Condition re-acquire)
    # ------------------------------------------------------------------
    def _grant_lock(
        self, lock: SimLock, thread: SimThread, count: int, loc: Optional[str] = None
    ) -> None:
        lock.owner = thread
        lock.count = count
        thread.held_locks.append(lock)
        ta = self._tappend
        if ta is not None:
            ta(
                self.now,
                thread.tid,
                thread.name,
                OP.ACQUIRE,
                lock,
                loc or current_location(thread.gen),
                None,
                self.step,
            )

    def _begin_reacquire(self, thread: SimThread, lock: SimLock, count: int, result: Any) -> None:
        """A notified/timed-out waiter recontends for the monitor."""
        if lock.owner is None and not lock.waiters:
            self._grant_lock(lock, thread, count)
            self._wake(thread, result)
        else:
            # The thread is already off the ready list (it was blocked on
            # the condition/timeout that got it here).
            self._wait_ctx[thread] = ("wait_return", (lock, count, result))
            thread.waiting_on = lock
            thread.state = TState.BLOCKED
            lock.waiters.append(thread)

    def _release_lock_fully(self, lock: SimLock, thread: SimThread) -> None:
        """Drop ownership and hand the lock to its next FIFO waiter,
        honouring wait-returns (one frame: release + hand-off)."""
        lock.owner = None
        lock.count = 0
        if lock in thread.held_locks:
            thread.held_locks.remove(lock)
        if not lock.waiters:
            return
        nxt = lock.waiters.pop(0)
        ctx = self._wait_ctx.pop(nxt, None)
        if ctx is not None and ctx[0] == "wait_return":
            _, (lk, count, result) = ctx
            self._grant_lock(lock, nxt, count)
            self._wake(nxt, result)
        else:
            loc = ctx[1] if ctx is not None and ctx[0] == "acquire" else None
            self._grant_lock(lock, nxt, 1, loc=loc)
            self._wake(nxt, True)

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def _record(
        self,
        op: str,
        obj: Any = None,
        loc: Optional[str] = None,
        extra: Any = None,
        thread: Optional[SimThread] = None,
    ) -> None:
        ta = self._tappend
        if ta is None:
            return
        t = thread if thread is not None else self.current
        tid = t.tid if t else -1
        tname = t.name if t else "main"
        if loc is None:
            loc = current_location(t.gen) if t else "?"
        ta(self.now, tid, tname, op, obj, loc, extra, self.step)

    def _loc(self, call: sc.Syscall, thread: SimThread) -> str:
        # Frame inspection is the single hottest non-essential operation
        # in the dispatch path; skip it entirely when nothing records.
        if self.trace is None:
            return call.loc or "?"
        return call.loc if call.loc is not None else current_location(thread.gen)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, max_steps: int = 2_000_000, max_time: float = math.inf) -> RunResult:
        """Execute until all non-daemon threads finish, or a terminal
        condition (deadlock, stall, step limit) is reached.

        The loop body is intentionally inlined (selection + step
        execution in one frame): at ~10^5–10^6 steps/sec every Python
        call boundary on the per-step path is measurable.  Semantics are
        pinned step-for-step to :class:`ReferenceKernel` by the
        differential battery.
        """
        scheduler = self.scheduler
        pick = scheduler.pick
        # Noise is an opt-in scheduler feature; resolve the override once
        # instead of calling a no-op method every step.
        noisy = type(scheduler).delay_after_pick is not Scheduler.delay_after_pick
        ready = self._ready
        pinned = self._pinned
        step_cost = self.step_cost
        runnable_state = TState.RUNNABLE
        handlers = _HANDLERS
        mix = self._syscall_mix
        pre_dispatch = self.pre_dispatch

        while True:
            if self.step >= max_steps:
                self._limit_hit = True
                break
            if self._live_foreground == 0:
                break  # normal completion (daemons abandoned, as in CPython)

            # ---- selection ------------------------------------------
            if self.now > max_time:
                self._stalled = True
                break
            thread = None
            if pinned:
                while pinned:
                    t = pinned.pop(0)
                    if t.state is runnable_state:
                        thread = t
                        break
            if thread is None:
                if ready:
                    thread = pick(ready, self.step)
                elif self._advance_idle(max_time):
                    continue  # timers fired; re-select
                else:
                    break  # deadlock or stall, flags already set

            # ---- one step -------------------------------------------
            self.current = thread
            self.step += 1
            thread.steps += 1
            self.now += step_cost
            if thread.tid != self._last_tid:
                self.ctx_switches += 1
                self._last_tid = thread.tid

            pending, thread.pending = thread.pending, None
            exc, thread.pending_exc = thread.pending_exc, None
            try:
                if exc is not None:
                    item = thread.gen.throw(exc)
                else:
                    item = thread.gen.send(pending)
            except StopIteration as stop:
                self._finish(thread, getattr(stop, "value", None))
            except BaseException as err:  # noqa: BLE001 - thread failure is data here
                self._fail(thread, err)
            else:
                try:
                    delay = None
                    if pre_dispatch is not None and isinstance(item, sc.Syscall):
                        delay = pre_dispatch(thread, item)
                    if delay is not None and delay > 0:
                        self._block(thread, TState.SLEEPING, "active-test pause")
                        self._arm_timer(thread, delay, "retry", item)
                    else:
                        # Inlined _dispatch: one call frame per step saved.
                        try:
                            h = handlers[item.__class__]
                        except KeyError:
                            h = self._resolve_handler(thread, item)
                        if mix is not None:
                            try:
                                mix[item._mix_idx] += 1
                            except (AttributeError, IndexError):
                                self._count_unslotted_syscall(item.__class__)
                        h(self, thread, item)
                except SimSyscallError as err:
                    # Misuse of a primitive surfaces inside the offending thread.
                    thread.pending_exc = RuntimeError(str(err))
            # Breakpoint ordering: the first-action thread has now executed
            # its next instruction; release partners parked on it.
            if thread.order_waiters:
                for w in thread.order_waiters:
                    if w.state is TState.ORDER_WAIT:
                        self._wake(w, True)
                thread.order_waiters.clear()
            # Scheduler-injected noise (ConTest baseline).  Uses the
            # pending-preserving "noise" timer: the delayed thread may be
            # carrying an undelivered syscall result.
            if noisy and thread.state is runnable_state:
                delay = scheduler.delay_after_pick(thread, self.step)
                if delay > 0.0:
                    self._block(thread, TState.SLEEPING, "noise")
                    self._arm_timer(thread, delay, "noise")
            self.current = None

        return self._result()

    def _advance_idle(self, max_time: float) -> bool:
        """Nothing runnable: advance the clock to the next live timer and
        fire it, or diagnose deadlock/stall.  Returns True when timers
        fired and selection should retry."""
        # Drop stale timers (their thread was woken by another path)
        # before advancing the clock — otherwise a dead breakpoint
        # timeout would postpone deadlock detection and inflate the
        # reported stall time.
        timers = self._timers
        while timers:
            _, _, th, epoch, _, _ = timers[0]
            if epoch != th.wake_epoch or not th.alive:
                heapq.heappop(timers)
            else:
                break
        if timers:
            deadline = timers[0][0]
            if deadline > max_time:
                self.now = max_time
                self._stalled = any(t.alive for t in self.threads)
                return False
            self.now = max(self.now, deadline)
            self._fire_due_timers()
            return True
        # No runnable threads, no timers.
        if any(t.alive for t in self.threads):
            self._deadlock = self._diagnose_deadlock()
        return False

    def _finish(self, thread: SimThread, result: Any) -> None:
        thread.state = TState.DONE
        thread.result = result
        thread.finish_time = self.now
        self._ready.remove(thread)
        if not thread.daemon:
            self._live_foreground -= 1
        self._record(OP.END, obj=thread, loc="?", thread=thread)
        if self.obs is not None and self._sig_thread_end.active:
            self._sig_thread_end(
                tid=thread.tid, name=thread.name, outcome="done",
                steps=thread.steps, time=self.now,
            )
        for j in thread.joiners:
            self._wake(j, True)
            self._record(OP.JOINED, obj=thread, loc="?", thread=j)
        thread.joiners.clear()

    def _fail(self, thread: SimThread, err: BaseException) -> None:
        thread.state = TState.FAILED
        thread.exc = err
        thread.finish_time = self.now
        self._ready.remove(thread)
        if not thread.daemon:
            self._live_foreground -= 1
        self.failures.append(ThreadFailure(thread.name, err, self.now, self.step))
        self._record(OP.FAIL, obj=thread, loc="?", extra=repr(err), thread=thread)
        if self.obs is not None and self._sig_thread_end.active:
            self._sig_thread_end(
                tid=thread.tid, name=thread.name, outcome="failed",
                error=repr(err), steps=thread.steps, time=self.now,
            )
        for j in thread.joiners:
            self._wake(j, True)
            self._record(OP.JOINED, obj=thread, loc="?", thread=j)
        thread.joiners.clear()

    # ------------------------------------------------------------------
    # Syscall dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, t: SimThread, call: Any) -> None:
        """Apply one syscall's effect via the precomputed handler table."""
        try:
            h = _HANDLERS[call.__class__]
        except KeyError:
            h = self._resolve_handler(t, call)
        mix = self._syscall_mix
        if mix is not None:
            try:
                mix[call._mix_idx] += 1
            except (AttributeError, IndexError):
                self._count_unslotted_syscall(call.__class__)
        h(self, t, call)

    def _resolve_handler(self, t: SimThread, call: Any) -> Callable[..., None]:
        """Cold path of dispatch: validate the syscall and cache the
        handler of its nearest handled base class."""
        if not isinstance(call, sc.Syscall):
            raise SimSyscallError(f"thread {t.name} yielded non-syscall {call!r}")
        for base in call.__class__.__mro__:
            h = _HANDLERS.get(base)
            if h is not None:
                _HANDLERS[call.__class__] = h
                return h
        raise SimSyscallError(f"unhandled syscall {call!r}")  # pragma: no cover - defensive

    # -- locks ----------------------------------------------------------
    def _h_acquire(self, t: SimThread, call: sc.Acquire) -> None:
        lock = call.lock
        if lock.owner is t:
            if lock.reentrant:
                # Nested monitor entry: no ownership transition, no event.
                lock.count += 1
                t.pending = True
            else:
                # Self-deadlock, like threading.Lock: block on ourselves.
                loc = self._loc(call, t)
                self._record(OP.ACQUIRE_REQ, obj=lock, loc=loc)
                self._block(t, TState.BLOCKED, lock)
                lock.waiters.append(t)
                self._wait_ctx[t] = ("acquire", loc)
        elif lock.owner is None and not lock.waiters:
            # Uncontended grant: the single hottest lock transition.
            lock.owner = t
            lock.count = 1
            t.held_locks.append(lock)
            ta = self._tappend
            if ta is not None:
                ta(
                    self.now,
                    t.tid,
                    t.name,
                    OP.ACQUIRE,
                    lock,
                    call.loc if call.loc is not None else current_location(t.gen),
                    None,
                    self.step,
                )
            t.pending = True
        else:
            loc = self._loc(call, t)
            self._record(OP.ACQUIRE_REQ, obj=lock, loc=loc)
            self._block(t, TState.BLOCKED, lock)
            lock.waiters.append(t)
            self._wait_ctx[t] = ("acquire", loc)

    def _h_release(self, t: SimThread, call: sc.Release) -> None:
        lock = call.lock
        if lock.owner is not t:
            raise SimSyscallError(f"{t.name} released {lock.name} it does not hold")
        lock.count -= 1
        if lock.count > 0:
            return
        ta = self._tappend
        if ta is not None:
            ta(
                self.now,
                t.tid,
                t.name,
                OP.RELEASE,
                lock,
                call.loc if call.loc is not None else current_location(t.gen),
                None,
                self.step,
            )
        self._release_lock_fully(lock, t)

    # -- monitors ---------------------------------------------------------
    def _h_wait(self, t: SimThread, call: sc.Wait) -> None:
        cond = call.cond
        lock = cond.lock
        if lock.owner is not t:
            raise SimSyscallError(f"{t.name} waits on {cond.name} without holding {lock.name}")
        loc = self._loc(call, t)
        saved = lock.count
        self._record(OP.WAIT_ENTER, obj=cond, loc=loc)
        self._record(OP.RELEASE, obj=lock, loc=loc)
        lock.count = 0
        self._release_lock_fully(lock, t)
        self._block(t, TState.BLOCKED, cond)
        cond.waiters.append(t)
        self._wait_ctx[t] = ("wait_return", (lock, saved, True))
        if call.timeout is not None:
            self._arm_timer(t, call.timeout, "wait_timeout", cond)

    def _h_notify(self, t: SimThread, call: sc.Notify) -> None:
        cond = call.cond
        n = call.n
        if cond.lock.owner is not t:
            raise SimSyscallError(f"{t.name} notifies {cond.name} without holding its lock")
        count = len(cond.waiters) if n is None else min(n, len(cond.waiters))
        self._record(OP.NOTIFY, obj=cond, loc=self._loc(call, t), extra=count)
        for _ in range(count):
            w = cond.waiters.pop(0)
            w.wake_epoch += 1  # invalidate any wait_timeout timer
            ctx = self._wait_ctx.pop(w, ("wait_return", (cond.lock, 1, True)))
            _, (lk, saved, _result) = ctx
            self._record(OP.WAIT_EXIT, obj=cond, loc="?", thread=w)
            self._begin_reacquire(w, lk, saved, True)

    # -- time / memory / control ------------------------------------------
    def _h_sleep(self, t: SimThread, call: sc.Sleep) -> None:
        self._record(OP.SLEEP, obj=None, loc=self._loc(call, t), extra=call.duration)
        if call.duration <= 0:
            t.pending = None
        else:
            self._block(t, TState.SLEEPING, "sleep")
            self._arm_timer(t, call.duration, "sleep")

    def _h_read(self, t: SimThread, call: sc.Read) -> None:
        cell = call.cell
        value = cell.value
        ta = self._tappend
        if ta is not None:
            ta(
                self.now, t.tid, t.name, OP.READ, cell,
                call.loc if call.loc is not None else current_location(t.gen), value, self.step,
            )
        t.pending = value

    def _h_write(self, t: SimThread, call: sc.Write) -> None:
        value = call.value
        cell = call.cell
        cell.value = value
        ta = self._tappend
        if ta is not None:
            ta(
                self.now, t.tid, t.name, OP.WRITE, cell,
                call.loc if call.loc is not None else current_location(t.gen), value, self.step,
            )

    def _h_yield(self, t: SimThread, call: sc.Yield) -> None:
        t.pending = None

    def _h_now(self, t: SimThread, call: sc.Now) -> None:
        t.pending = self.now

    def _h_join(self, t: SimThread, call: sc.Join) -> None:
        target = call.thread
        loc = self._loc(call, t)
        self._record(OP.JOIN, obj=target, loc=loc)
        if not target.alive:
            self._record(OP.JOINED, obj=target, loc=loc)
            t.pending = True
            return
        self._block(t, TState.BLOCKED, target)
        target.joiners.append(t)
        if call.timeout is not None:
            self._arm_timer(t, call.timeout, "join_timeout", target)

    def _h_interrupt(self, t: SimThread, call: sc.Interrupt) -> None:
        t.pending = self.interrupt(call.thread, call.exc)

    # -- semaphores --------------------------------------------------------
    def _h_sem_p(self, t: SimThread, call: sc.AcquireSem) -> None:
        sem = call.sem
        if sem.value > 0:
            sem.value -= 1
            # SEM_P is recorded at *grant* time so the trace order gives
            # the happens-before edge V -> P.
            self._record(OP.SEM_P, obj=sem, loc=self._loc(call, t))
            t.pending = True
        else:
            self._block(t, TState.BLOCKED, sem)
            sem.waiters.append(t)

    def _h_sem_v(self, t: SimThread, call: sc.ReleaseSem) -> None:
        sem = call.sem
        self._record(OP.SEM_V, obj=sem, loc=self._loc(call, t))
        if sem.waiters:
            w = sem.waiters.pop(0)
            self._record(OP.SEM_P, obj=sem, loc="?", thread=w)
            self._wake(w, True)
        else:
            sem.value += 1

    # -- barriers -----------------------------------------------------------
    def _h_barrier(self, t: SimThread, call: sc.BarrierWait) -> None:
        barrier = call.barrier
        idx = barrier.count
        barrier.count += 1
        self._record(OP.BARRIER, obj=barrier, loc=self._loc(call, t), extra=idx)
        if barrier.count >= barrier.parties:
            for i, w in enumerate(barrier.waiters):
                # Release events after the last arrival: every waiter's
                # continuation is ordered after every arrival.
                self._record(OP.BARRIER, obj=barrier, loc="?", extra="release", thread=w)
                self._wake(w, i)
            barrier.waiters.clear()
            barrier.count = 0
            barrier.generation += 1
            t.pending = idx
        else:
            self._block(t, TState.BLOCKED, barrier)
            barrier.waiters.append(t)

    # -- events ---------------------------------------------------------------
    def _h_event_wait(self, t: SimThread, call: sc.EventWait) -> None:
        event = call.event
        if event.flag:
            self._record(OP.EVENT_WAIT, obj=event, loc=self._loc(call, t))
            t.pending = True
            return
        self._block(t, TState.BLOCKED, event)
        event.waiters.append(t)
        if call.timeout is not None:
            self._arm_timer(t, call.timeout, "event_timeout", event)

    def _h_event_set(self, t: SimThread, call: sc.EventSet) -> None:
        event = call.event
        event.flag = True
        self._record(OP.EVENT_SET, obj=event, loc=self._loc(call, t))
        for w in event.waiters:
            # EVENT_WAIT is recorded at wake time (after EVENT_SET in
            # trace order) so the set -> wait-return edge is visible.
            self._record(OP.EVENT_WAIT, obj=event, loc="?", thread=w)
            self._wake(w, True)
        event.waiters.clear()

    def _h_event_clear(self, t: SimThread, call: sc.EventClear) -> None:
        call.event.flag = False

    # -- annotations -------------------------------------------------------
    def _h_begin_atomic(self, t: SimThread, call: sc.BeginAtomic) -> None:
        self._record(OP.ATOMIC_BEGIN, obj=None, loc=self._loc(call, t), extra=call.label)

    def _h_end_atomic(self, t: SimThread, call: sc.EndAtomic) -> None:
        self._record(OP.ATOMIC_END, obj=None, loc=self._loc(call, t), extra=call.label)

    def _h_annotate(self, t: SimThread, call: sc.Annotate) -> None:
        self._record(
            OP.ANNOTATE, obj=None, loc=self._loc(call, t),
            extra={"kind": call.kind, "data": call.data},
        )

    # -- concurrent breakpoints --------------------------------------------
    def _h_trigger(self, t: SimThread, call: sc.Trigger) -> None:
        from repro.core.config import GLOBAL

        inst = call.inst
        if not GLOBAL.enabled:
            t.pending = False
            return
        loc = self._loc(call, t)
        self._record(OP.TRIGGER_VISIT, obj=inst, loc=loc, extra={"name": inst.name})
        runtimectx.push_held_locks(t.held_locks)
        try:
            result = self.engine.arrive(
                inst, call.is_first, thread_key=t.tid, now=self.now, timeout=call.timeout
            )
        finally:
            runtimectx.pop_held_locks()

        if isinstance(result, Skipped):
            t.pending = False
            return

        if isinstance(result, MatchedGroup):
            threads = [e.handle if e.handle is not None else t for e in result.ordered]
            self._record(
                OP.TRIGGER_HIT,
                obj=inst,
                loc=loc,
                extra={"name": inst.name, "threads": tuple(th.name for th in threads)},
            )
            # Wake everyone, then chain the ordering: rank 0 is pinned,
            # each later rank resumes only after its predecessor's next
            # instruction has executed.
            for th in threads:
                if th is not t:
                    self._wake(th, True)
            t.pending = True
            self._pinned.append(threads[0])
            for prev, nxt in zip(threads, threads[1:]):
                self._block(nxt, TState.ORDER_WAIT, prev)
                prev.order_waiters.append(nxt)
            return

        if isinstance(result, Matched):
            partner_thread: SimThread = result.partner.handle
            self._record(
                OP.TRIGGER_HIT,
                obj=inst,
                loc=loc,
                extra={"name": inst.name, "threads": (t.name, partner_thread.name)},
            )
            self._wake(partner_thread, True)
            t.pending = True
            first_entry = result.entry if result.entry.acts_first else result.partner
            first_thread = t if first_entry is result.entry else partner_thread
            second_thread = partner_thread if first_entry is result.entry else t
            # Exact Section 2 semantics: first thread's next instruction
            # runs before the second thread resumes.
            self._pinned.append(first_thread)
            self._block(second_thread, TState.ORDER_WAIT, first_thread)
            first_thread.order_waiters.append(second_thread)
            return

        assert isinstance(result, Postponed)
        entry = result.entry
        entry.handle = t
        self._record(OP.TRIGGER_POSTPONE, obj=inst, loc=loc, extra={"name": inst.name})
        self._block(t, TState.BLOCKED, ("breakpoint", entry))
        self._arm_timer(t, call.timeout, "trigger_timeout", entry)

    # ------------------------------------------------------------------
    # Interruption
    # ------------------------------------------------------------------
    def interrupt(self, target: SimThread, exc: Optional[BaseException] = None) -> bool:
        """Deliver ``exc`` into ``target`` at its next scheduling point.

        Blocked threads are unwound from whatever they wait on first; a
        thread parked in a condition ``wait`` reacquires the monitor
        before the exception is raised (Java's ``InterruptedException``
        contract).  Returns False for finished threads.
        """
        if not target.alive:
            return False
        if exc is None:
            exc = ThreadInterrupted()
        target.pending_exc = exc

        waiting = target.waiting_on
        if target.state in (TState.RUNNABLE, TState.NEW, TState.ORDER_WAIT):
            # Will run (or be released by its predecessor) anyway; the
            # exception fires at its next step.
            return True
        if target.state is TState.SLEEPING:
            self._wake(target, None)
            return True

        # BLOCKED: unwind the wait.
        from .primitives import SimBarrier, SimCondition, SimEvent, SimSemaphore

        if isinstance(waiting, SimCondition):
            if target in waiting.waiters:
                waiting.waiters.remove(target)
            target.wake_epoch += 1  # kill the wait timer
            ctx = self._wait_ctx.pop(target, ("wait_return", (waiting.lock, 1, False)))
            _, (lock, count, _result) = ctx
            # Reacquire the monitor; the exception is raised once granted.
            self._begin_reacquire(target, lock, count, False)
            return True
        if isinstance(waiting, SimLock):
            if target in waiting.waiters:
                waiting.waiters.remove(target)
            self._wait_ctx.pop(target, None)
            self._wake(target, None)
            return True
        if isinstance(waiting, (SimSemaphore, SimBarrier, SimEvent)):
            if target in waiting.waiters:
                waiting.waiters.remove(target)
            self._wake(target, None)
            return True
        if isinstance(waiting, SimThread):  # join
            if target in waiting.joiners:
                waiting.joiners.remove(target)
            self._wake(target, None)
            return True
        if isinstance(waiting, tuple) and waiting and waiting[0] == "breakpoint":
            self.engine.cancel(waiting[1])
            self._wake(target, None)
            return True
        # Unknown wait (active-test pause etc.): wake and deliver.
        self._wake(target, None)
        return True

    # ------------------------------------------------------------------
    # Deadlock diagnosis & results
    # ------------------------------------------------------------------
    def _diagnose_deadlock(self) -> SimDeadlockError:
        waiters = {t.name: t.describe_block() for t in self.threads if t.blocked}
        # Follow lock-ownership edges to find a cycle.
        cycle = None
        for start in self.threads:
            if not start.blocked or not isinstance(start.waiting_on, SimLock):
                continue
            seen: List[SimThread] = []
            cur: Optional[SimThread] = start
            while cur is not None and cur not in seen:
                seen.append(cur)
                target = cur.waiting_on
                cur = target.owner if isinstance(target, SimLock) else None
            if cur is not None:
                cycle = [x.name for x in seen[seen.index(cur):]] + [cur.name]
                break
        return SimDeadlockError(waiters, cycle)

    def _count_unslotted_syscall(self, cls: type) -> None:
        """Cold path of the mix accounting: register a syscall class
        defined after import (no ``_mix_idx`` yet, or one beyond this
        kernel's slot list) and count the dispatch."""
        idx = getattr(cls, "_mix_idx", None)
        if idx is None:
            idx = cls._mix_idx = len(_MIX_NAMES)
            _MIX_NAMES.append(f"kernel.syscall.{cls.__name__}")
        mix = self._syscall_mix
        assert mix is not None
        if idx >= len(mix):
            mix.extend([0] * (idx + 1 - len(mix)))
        mix[idx] += 1

    def _check_step_accounting(self) -> None:
        """End-of-run consistency cross-check of the three independent
        step counts: the kernel's global counter (what obs flush
        reports), the per-thread counters (what ``sim.timeline`` /
        ``RunResult.threads`` consumers re-derive totals from), and the
        trace's final event step.  A mismatch means an accounting bug
        that would silently skew every downstream metric, so it is a
        hard error, not a warning."""
        per_thread = sum(t.steps for t in self.threads)
        if per_thread != self.step:
            raise RuntimeError(
                f"step accounting mismatch: kernel counted {self.step} steps "
                f"but thread counters sum to {per_thread}"
            )
        if self.trace is not None:
            last = self.trace.last_step()
            if last > self.step:
                raise RuntimeError(
                    f"step accounting mismatch: trace records step {last} "
                    f"but the kernel only counted {self.step}"
                )

    def _flush_obs(self) -> None:
        """Fold the run's accumulated counts into the metrics registry.

        Called once from :meth:`_result`; hot-path accumulation uses
        flat slot counters so instrumented runs stay within the <5 %
        obs-overhead gate (``benchmarks/bench_obs_overhead.py``).
        """
        obs = self.obs
        if obs is None or self._obs_flushed:
            return
        self._obs_flushed = True
        m = obs.metrics
        counts = {
            "kernel.runs": 1,
            "kernel.steps": self.step,
            "kernel.ctx_switches": self.ctx_switches,
            "kernel.threads_spawned": len(self.threads),
        }
        if self._mix_counters is not None:
            self._mix_counters.fold_into(counts)
        if self.failures:
            counts["kernel.thread_failures"] = len(self.failures)
        if self._deadlock is not None:
            counts["kernel.deadlocks"] = 1
        if self._stalled:
            counts["kernel.stalls"] = 1
        if self._limit_hit:
            counts["kernel.step_limit_hits"] = 1
        # The engine contributes its engine.* counters into the same
        # dict so the run's counters land in one registry call.
        self.engine.flush_metrics(into=counts)
        m.add_counters(counts)
        m.histogram("kernel.virtual_seconds").observe(self.now)
        if self._sig_run_end.active:
            self._sig_run_end(
                time=self.now,
                steps=self.step,
                deadlocked=self._deadlock is not None,
                stalled=self._stalled,
                failures=len(self.failures),
            )
        scratch = self._obs_scratch
        if scratch is not None and scratch[0] is None:
            # Check the slab back into the per-context pool.  This
            # kernel is done counting (flush runs once); dropping the
            # references makes any post-flush counting attempt a silent
            # no-op instead of corrupting the next trial's slab.
            scratch[0] = self._mix_counters
            self._obs_scratch = None
            self._mix_counters = None
            self._syscall_mix = None

    def _result(self) -> RunResult:
        completed = all(not t.alive or t.daemon for t in self.threads)
        self._check_step_accounting()
        self._flush_obs()
        return RunResult(
            time=self.now,
            steps=self.step,
            completed=completed and not self._deadlock and not self._stalled,
            deadlocked=self._deadlock is not None,
            deadlock=self._deadlock,
            stalled=self._stalled,
            limit_hit=self._limit_hit,
            failures=list(self.failures),
            trace=self.trace,
            breakpoint_stats=self.engine.snapshot(),
            threads=list(self.threads),
        )

    def state_signature(self) -> str:
        """Process-portable digest of scheduling-visible kernel state.

        Covers the clock, step count, RNG state, every thread's
        lifecycle (state, wake epoch, held locks, what it waits on),
        pending timers, and the state keys of synchronisation primitives
        reachable from threads.  Two kernels that executed the same
        choice sequence produce the same signature *in any process* —
        identities are ``uid``/``tid`` based, never ``id()`` based — so
        the snapshot executor can prove a restored run ended in the
        state a full replay reaches (``RunRecord.signature``).

        It is a fidelity check, not a full heap dump: application state
        held in plain Python objects is outside the kernel's view (the
        differential batteries compare it via ``observe`` snapshots and
        traces instead).
        """
        prims: Dict[int, Any] = {}

        def note(obj: Any) -> Any:
            if isinstance(obj, SimThread):
                return ("SimThread", obj.tid)
            key = getattr(obj, "state_key", None)
            if key is None:
                return type(obj).__name__
            prims[obj.uid] = obj
            return (type(obj).__name__, obj.uid)

        threads = tuple(
            (
                t.tid,
                t.name,
                t.state.name,
                t.wake_epoch,
                t.steps,
                t.daemon,
                tuple(note(lk) for lk in t.held_locks),
                note(t.waiting_on) if t.waiting_on is not None else None,
            )
            for t in self.threads
        )
        timers = tuple(
            (when, seq, thread.tid, epoch, kind)
            for when, seq, thread, epoch, kind, _payload in sorted(
                self._timers, key=lambda e: (e[0], e[1])
            )
        )
        body = repr(
            (
                self.step,
                self.now,
                self.ctx_switches,
                self.rng.getstate(),
                threads,
                timers,
                tuple(prims[uid].state_key() for uid in sorted(prims)),
                tuple(
                    sorted(
                        (name, repr(stats))
                        for name, stats in self.engine.snapshot().items()
                    )
                ),
                self._limit_hit,
                self._stalled,
                self._deadlock is not None,
                len(self.failures),
            )
        )
        return hashlib.sha1(body.encode()).hexdigest()


#: Class-keyed syscall dispatch table (the fast path of
#: :meth:`Kernel._dispatch`).  Subclasses of handled syscalls are
#: resolved through their MRO and cached here on first dispatch.
_HANDLERS: Dict[type, Callable[..., None]] = {
    sc.Acquire: Kernel._h_acquire,
    sc.Release: Kernel._h_release,
    sc.Wait: Kernel._h_wait,
    sc.Notify: Kernel._h_notify,
    sc.Sleep: Kernel._h_sleep,
    sc.Read: Kernel._h_read,
    sc.Write: Kernel._h_write,
    sc.Yield: Kernel._h_yield,
    sc.Now: Kernel._h_now,
    sc.Join: Kernel._h_join,
    sc.Interrupt: Kernel._h_interrupt,
    sc.AcquireSem: Kernel._h_sem_p,
    sc.ReleaseSem: Kernel._h_sem_v,
    sc.BarrierWait: Kernel._h_barrier,
    sc.EventWait: Kernel._h_event_wait,
    sc.EventSet: Kernel._h_event_set,
    sc.EventClear: Kernel._h_event_clear,
    sc.BeginAtomic: Kernel._h_begin_atomic,
    sc.EndAtomic: Kernel._h_end_atomic,
    sc.Annotate: Kernel._h_annotate,
    sc.Trigger: Kernel._h_trigger,
}
