"""The deterministic concurrency kernel.

A :class:`Kernel` executes simulated threads (generators yielding
syscalls) under a pluggable scheduler on a *virtual clock*.  This is the
evaluation substrate that replaces the paper's JVM/pthreads testbed
(DESIGN.md, substitution table): Heisenbug probability is a property of
the schedule distribution, which the scheduler reproduces; virtual time
makes 100-trial probability estimates with 100 ms–10 s breakpoint pauses
run in milliseconds of wall time; and ``(program, scheduler, seed)``
exactly determines the run, so every reported bug is replayable.

Key mechanics:

* **One syscall per step.**  The scheduler picks a runnable thread, the
  kernel resumes its generator, receives the next syscall, applies its
  effect, and loops.  Python code between yields is atomic.
* **Virtual time.**  Each step costs ``step_cost`` virtual seconds;
  ``Sleep``/timeouts arm a timer heap; when nothing is runnable the clock
  jumps to the next deadline.  "Runtime" and "overhead" in the Table 1
  reproduction are virtual-clock readings.
* **Breakpoints.**  The ``Trigger`` syscall routes through a
  :class:`~repro.core.engine.BreakpointEngine` shared with the OS
  backend.  On a match the kernel *pins* the first-action thread so its
  next instruction executes before the partner resumes — the exact
  scheduling action of paper Section 2, which the OS backend can only
  approximate.
* **Stall/deadlock detection.**  No runnable thread and no timers with
  live threads is a deadlock (reported with the wait-for cycle, like the
  Jigsaw example); exceeding ``max_time`` with live threads is a stall —
  the paper's "stalls due to missed notifications are detected by large
  timeouts".
"""

from __future__ import annotations

import dataclasses
import hashlib
import heapq
import itertools
import math
import random
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core import runtimectx
from repro.core.engine import BreakpointEngine, Matched, MatchedGroup, Postponed, Skipped

from . import syscalls as sc
from .errors import SimDeadlockError, SimSyscallError, ThreadFailure, ThreadInterrupted
from .primitives import SimCondition, SimEvent, SimLock
from .scheduler import RandomScheduler, Scheduler
from .thread import SimThread, TState
from .trace import OP, Trace

__all__ = ["Kernel", "RunResult"]


def _assign_mix_slots() -> List[str]:
    """Give every syscall class a small integer ``_mix_idx`` and return
    the matching metric names.

    The per-dispatch syscall-mix accounting is the only per-step work
    observability adds, so it has to be as close to free as Python
    allows: ``mix[call._mix_idx] += 1`` (one cached class-attribute load
    plus a list subscript) beats hashing the class into a dict by ~30 %.
    Classes defined after import (tests, extensions) are registered
    lazily via :meth:`Kernel._count_unslotted_syscall`.
    """
    names: List[str] = []

    def walk(cls: type) -> None:
        for sub in cls.__subclasses__():
            sub._mix_idx = len(names)
            names.append(f"kernel.syscall.{sub.__name__}")
            walk(sub)

    walk(sc.Syscall)
    return names


_MIX_NAMES: List[str] = _assign_mix_slots()


@dataclasses.dataclass
class RunResult:
    """Outcome of :meth:`Kernel.run`."""

    time: float
    steps: int
    completed: bool  # every non-daemon thread finished
    deadlocked: bool
    deadlock: Optional[SimDeadlockError]
    stalled: bool  # max_time reached with live threads
    limit_hit: bool  # max_steps reached
    failures: List[ThreadFailure]
    trace: Optional[Trace]
    breakpoint_stats: Dict[str, Any]
    threads: List[SimThread]

    @property
    def ok(self) -> bool:
        """Clean termination: completed, no failures, no deadlock/stall."""
        return self.completed and not self.failures and not self.deadlocked and not self.stalled

    @property
    def stall_or_deadlock(self) -> bool:
        """The paper's "stall" error symptom covers both."""
        return self.deadlocked or self.stalled

    def breakpoint_hit(self, name: str) -> bool:
        """Did the named breakpoint fire in this run?"""
        st = self.breakpoint_stats.get(name)
        return bool(st and st.hits > 0)

    def summary(self) -> str:
        """One-line human summary of the run."""
        status = (
            "ok"
            if self.ok
            else "deadlock"
            if self.deadlocked
            else "stall"
            if self.stalled
            else "limit"
            if self.limit_hit
            else f"{len(self.failures)} failure(s)"
            if self.failures
            else "incomplete"
        )
        return f"RunResult({status}, t={self.time:.4f}s, steps={self.steps})"


class Kernel:
    """Deterministic discrete-event executor for simulated threads.

    Parameters
    ----------
    scheduler:
        Interleaving policy; defaults to :class:`RandomScheduler(seed)`.
    seed:
        Seeds the default scheduler and the kernel's application RNG
        (``kernel.rng``, for workload jitter inside simulated threads).
    record_trace:
        Record an event per syscall (needed by detectors; costs time and
        memory, so off by default for probability experiments).
    step_cost:
        Virtual seconds charged per scheduling step (models instruction
        time between synchronisation points).
    obs:
        Optional :class:`repro.obs.ObsContext` (duck-typed, no import
        dependency).  When given, the kernel counts steps, context
        switches, and the syscall mix into the metrics registry —
        accumulated in plain ints/dicts during the run and flushed once
        at the end, so the per-step cost stays inside the obs overhead
        gate — and publishes low-frequency bus events (thread lifecycle,
        deadlock/stall, run end).  Breakpoint instrumentation lives in
        the shared :class:`BreakpointEngine`, which receives the same
        context.
    """

    def __init__(
        self,
        scheduler: Optional[Scheduler] = None,
        seed: Optional[int] = None,
        record_trace: bool = False,
        step_cost: float = 1e-6,
        obs: Any = None,
    ) -> None:
        self.scheduler = scheduler if scheduler is not None else RandomScheduler(seed)
        self.rng = random.Random(seed if seed is None else seed ^ 0x5DEECE66D)
        self.now = 0.0
        self.step = 0
        self.step_cost = step_cost
        self.trace: Optional[Trace] = Trace() if record_trace else None
        self.obs = obs
        self.engine = BreakpointEngine(obs=obs)
        #: Scheduling steps where the picked thread differed from the
        #: previous one (tracked unconditionally; it is two attribute ops).
        self.ctx_switches = 0
        self._last_tid = -1
        #: Per-syscall dispatch counts, indexed by each class's
        #: ``_mix_idx`` slot (see :func:`_assign_mix_slots`); translated
        #: to ``kernel.syscall.*`` counters at flush.
        self._syscall_mix: Optional[List[int]] = (
            [0] * len(_MIX_NAMES) if obs is not None else None
        )
        self._obs_flushed = False
        if obs is not None:
            self._sig_spawn = obs.bus.signal("kernel.spawn")
            self._sig_thread_end = obs.bus.signal("kernel.thread_end")
            self._sig_run_end = obs.bus.signal("kernel.run_end")
        self.threads: List[SimThread] = []
        self._live_foreground = 0  # alive non-daemon threads (run-loop gate)
        self._tids = itertools.count(0)
        self._timer_seq = itertools.count(0)
        self._timers: List[Tuple[float, int, SimThread, int, str, Any]] = []
        self._pinned: List[SimThread] = []
        self._wait_ctx: Dict[SimThread, Tuple[str, Any]] = {}  # why a thread waits on a lock
        self.current: Optional[SimThread] = None
        #: Optional syscall interceptor for active-testing tools
        #: (:mod:`repro.activetest`): called as ``hook(thread, syscall)``
        #: before dispatch; returning a positive delay postpones the
        #: syscall by that many virtual seconds (the CalFuzzer-style
        #: "insert a pause at this operation" primitive).
        self.pre_dispatch: Optional[Callable[[SimThread, Any], Optional[float]]] = None
        self.failures: List[ThreadFailure] = []
        self._limit_hit = False
        self._stalled = False
        self._deadlock: Optional[SimDeadlockError] = None

    # ------------------------------------------------------------------
    # Thread management
    # ------------------------------------------------------------------
    def spawn(
        self,
        fn: Callable[..., Any],
        *args: Any,
        name: Optional[str] = None,
        daemon: bool = False,
        **kwargs: Any,
    ) -> SimThread:
        """Create a simulated thread running ``fn(*args, **kwargs)``.

        ``fn`` must be a generator function (its body yields syscalls).
        """
        gen = fn(*args, **kwargs)
        if not hasattr(gen, "send"):
            raise TypeError(f"thread body {fn!r} must be a generator function")
        tid = next(self._tids)
        t = SimThread(tid, name or f"T{tid}", gen, daemon=daemon)
        t.state = TState.RUNNABLE
        t.spawn_time = self.now
        if not daemon:
            self._live_foreground += 1
        self.threads.append(t)
        self.scheduler.on_spawn(t)
        self._record(OP.FORK, obj=t, loc=self.current.location() if self.current else "main")
        if self.obs is not None and self._sig_spawn.active:
            self._sig_spawn(tid=tid, name=t.name, daemon=daemon, time=self.now)
        return t

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _arm_timer(self, thread: SimThread, delay: float, kind: str, payload: Any = None) -> None:
        heapq.heappush(
            self._timers,
            (self.now + delay, next(self._timer_seq), thread, thread.wake_epoch, kind, payload),
        )

    def _fire_due_timers(self) -> None:
        while self._timers and self._timers[0][0] <= self.now:
            _, _, thread, epoch, kind, payload = heapq.heappop(self._timers)
            if epoch != thread.wake_epoch or not thread.alive:
                continue  # stale: the thread was woken by another path
            self._timer_fired(thread, kind, payload)

    def _timer_fired(self, thread: SimThread, kind: str, payload: Any) -> None:
        if kind == "sleep":
            self._wake(thread, None)
        elif kind == "noise":
            # Scheduler-injected delay: wake WITHOUT touching ``pending``
            # — the preceding step's syscall result is still undelivered.
            thread.wake_epoch += 1
            thread.state = TState.RUNNABLE
            thread.waiting_on = None
        elif kind == "wait_timeout":
            cond: SimCondition = payload
            if thread in cond.waiters:
                cond.waiters.remove(thread)
            # A timed-out waiter still reacquires the monitor before
            # ``wait`` returns False, exactly like threading.Condition.
            ctx = self._wait_ctx.pop(thread, ("wait_return", (cond, 1, False)))
            self._begin_reacquire(thread, cond.lock, ctx[1][1], False)
        elif kind == "join_timeout":
            target: SimThread = payload
            if thread in target.joiners:
                target.joiners.remove(thread)
            self._wake(thread, False)
        elif kind == "event_timeout":
            event: SimEvent = payload
            if thread in event.waiters:
                event.waiters.remove(thread)
            self._wake(thread, False)
        elif kind == "retry":
            # An active-testing pause expired: perform the postponed
            # syscall now (without re-consulting the interceptor).
            thread.wake_epoch += 1
            thread.state = TState.RUNNABLE
            thread.waiting_on = None
            prev = self.current
            self.current = thread
            try:
                self._dispatch(thread, payload)
            except SimSyscallError as err:
                thread.pending_exc = RuntimeError(str(err))
            finally:
                self.current = prev
        elif kind == "trigger_timeout":
            entry = payload
            if entry.matched_with is None:
                self.engine.expire(entry)
                self._record(
                    OP.TRIGGER_TIMEOUT, obj=entry.inst, loc="?", extra={"name": entry.inst.name},
                    thread=thread,
                )
                self._wake(thread, False)
            # else: matched in the same instant; the match path woke it.
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unknown timer kind {kind!r}")

    def _wake(self, thread: SimThread, result: Any) -> None:
        """Move a blocked/sleeping thread back to the runnable set."""
        thread.wake_epoch += 1
        thread.state = TState.RUNNABLE
        thread.waiting_on = None
        thread.pending = result

    # ------------------------------------------------------------------
    # Lock plumbing (shared by Acquire, Release, Condition re-acquire)
    # ------------------------------------------------------------------
    def _grant_lock(
        self, lock: SimLock, thread: SimThread, count: int, loc: Optional[str] = None
    ) -> None:
        lock.owner = thread
        lock.count = count
        thread.held_locks.append(lock)
        self._record(OP.ACQUIRE, obj=lock, loc=loc or thread.location(), thread=thread)

    def _begin_reacquire(self, thread: SimThread, lock: SimLock, count: int, result: Any) -> None:
        """A notified/timed-out waiter recontends for the monitor."""
        if lock.owner is None and not lock.waiters:
            self._grant_lock(lock, thread, count)
            self._wake(thread, result)
        else:
            self._wait_ctx[thread] = ("wait_return", (lock, count, result))
            thread.waiting_on = lock
            thread.state = TState.BLOCKED
            lock.waiters.append(thread)

    def _release_lock_fully(self, lock: SimLock, thread: SimThread) -> None:
        lock.owner = None
        lock.count = 0
        if lock in thread.held_locks:
            thread.held_locks.remove(lock)
        self._hand_off(lock)

    def _hand_off(self, lock: SimLock) -> None:
        """Grant a free lock to its next FIFO waiter, honouring wait-returns."""
        if lock.owner is not None or not lock.waiters:
            return
        nxt = lock.waiters.pop(0)
        ctx = self._wait_ctx.pop(nxt, None)
        if ctx is not None and ctx[0] == "wait_return":
            _, (lk, count, result) = ctx
            self._grant_lock(lock, nxt, count)
            self._wake(nxt, result)
        else:
            loc = ctx[1] if ctx is not None and ctx[0] == "acquire" else None
            self._grant_lock(lock, nxt, 1, loc=loc)
            self._wake(nxt, True)

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def _record(
        self,
        op: str,
        obj: Any = None,
        loc: Optional[str] = None,
        extra: Any = None,
        thread: Optional[SimThread] = None,
    ) -> None:
        if self.trace is None:
            return
        t = thread if thread is not None else self.current
        tid = t.tid if t else -1
        tname = t.name if t else "main"
        if loc is None:
            loc = t.location() if t else "?"
        self.trace.record(self.now, tid, tname, op, obj, loc, extra, step=self.step)

    def _loc(self, call: sc.Syscall, thread: SimThread) -> str:
        # Frame inspection is the single hottest non-essential operation
        # in the dispatch path; skip it entirely when nothing records.
        if self.trace is None:
            return call.loc or "?"
        return call.loc if call.loc is not None else thread.location()

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, max_steps: int = 2_000_000, max_time: float = math.inf) -> RunResult:
        """Execute until all non-daemon threads finish, or a terminal
        condition (deadlock, stall, step limit) is reached."""
        while True:
            if self.step >= max_steps:
                self._limit_hit = True
                break
            if self._live_foreground == 0:
                break  # normal completion (daemons abandoned, as in CPython)

            thread = self._next_thread(max_time)
            if thread is None:
                break  # deadlock or stall, flags already set
            self._execute_step(thread)

        return self._result()

    def _next_thread(self, max_time: float) -> Optional[SimThread]:
        while True:
            if self.now > max_time:
                self._stalled = True
                return None
            while self._pinned:
                t = self._pinned.pop(0)
                if t.state is TState.RUNNABLE:
                    return t
            runnable = [t for t in self.threads if t.state is TState.RUNNABLE]
            if runnable:
                runnable.sort(key=lambda t: t.tid)
                return self.scheduler.pick(runnable, self.step)
            # Drop stale timers (their thread was woken by another path)
            # before advancing the clock — otherwise a dead breakpoint
            # timeout would postpone deadlock detection and inflate the
            # reported stall time.
            while self._timers:
                _, _, th, epoch, _, _ = self._timers[0]
                if epoch != th.wake_epoch or not th.alive:
                    heapq.heappop(self._timers)
                else:
                    break
            if self._timers:
                deadline = self._timers[0][0]
                if deadline > max_time:
                    self.now = max_time
                    self._stalled = any(t.alive for t in self.threads)
                    return None
                self.now = max(self.now, deadline)
                self._fire_due_timers()
                continue
            # No runnable threads, no timers.
            if any(t.alive for t in self.threads):
                self._deadlock = self._diagnose_deadlock()
                return None
            return None

    def _execute_step(self, thread: SimThread) -> None:
        self.current = thread
        self.step += 1
        thread.steps += 1
        self.now += self.step_cost
        if thread.tid != self._last_tid:
            self.ctx_switches += 1
            self._last_tid = thread.tid
        if thread.state is TState.NEW:
            thread.state = TState.RUNNABLE

        pending, thread.pending = thread.pending, None
        exc, thread.pending_exc = thread.pending_exc, None
        try:
            if exc is not None:
                item = thread.gen.throw(exc)
            else:
                item = thread.gen.send(pending)
        except StopIteration as stop:
            self._finish(thread, getattr(stop, "value", None))
        except BaseException as err:  # noqa: BLE001 - thread failure is data here
            self._fail(thread, err)
        else:
            try:
                delay = None
                if self.pre_dispatch is not None and isinstance(item, sc.Syscall):
                    delay = self.pre_dispatch(thread, item)
                if delay is not None and delay > 0:
                    thread.state = TState.SLEEPING
                    thread.waiting_on = "active-test pause"
                    self._arm_timer(thread, delay, "retry", item)
                else:
                    self._dispatch(thread, item)
            except SimSyscallError as err:
                # Misuse of a primitive surfaces inside the offending thread.
                thread.pending_exc = RuntimeError(str(err))
        # Breakpoint ordering: the first-action thread has now executed its
        # next instruction; release partners parked on it.
        if thread.order_waiters:
            for w in thread.order_waiters:
                if w.state is TState.ORDER_WAIT:
                    self._wake(w, True)
            thread.order_waiters.clear()
        # Scheduler-injected noise (ConTest baseline).  Uses the
        # pending-preserving "noise" timer: the delayed thread may be
        # carrying an undelivered syscall result.
        if thread.state is TState.RUNNABLE:
            delay = self.scheduler.delay_after_pick(thread, self.step)
            if delay > 0.0:
                thread.state = TState.SLEEPING
                thread.waiting_on = "noise"
                self._arm_timer(thread, delay, "noise")
        self.current = None

    def _finish(self, thread: SimThread, result: Any) -> None:
        thread.state = TState.DONE
        thread.result = result
        thread.finish_time = self.now
        if not thread.daemon:
            self._live_foreground -= 1
        self._record(OP.END, obj=thread, loc="?", thread=thread)
        if self.obs is not None and self._sig_thread_end.active:
            self._sig_thread_end(
                tid=thread.tid, name=thread.name, outcome="done",
                steps=thread.steps, time=self.now,
            )
        for j in thread.joiners:
            self._wake(j, True)
            self._record(OP.JOINED, obj=thread, loc="?", thread=j)
        thread.joiners.clear()

    def _fail(self, thread: SimThread, err: BaseException) -> None:
        thread.state = TState.FAILED
        thread.exc = err
        thread.finish_time = self.now
        if not thread.daemon:
            self._live_foreground -= 1
        self.failures.append(ThreadFailure(thread.name, err, self.now, self.step))
        self._record(OP.FAIL, obj=thread, loc="?", extra=repr(err), thread=thread)
        if self.obs is not None and self._sig_thread_end.active:
            self._sig_thread_end(
                tid=thread.tid, name=thread.name, outcome="failed",
                error=repr(err), steps=thread.steps, time=self.now,
            )
        for j in thread.joiners:
            self._wake(j, True)
            self._record(OP.JOINED, obj=thread, loc="?", thread=j)
        thread.joiners.clear()

    # ------------------------------------------------------------------
    # Syscall dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, t: SimThread, call: Any) -> None:
        if not isinstance(call, sc.Syscall):
            raise SimSyscallError(f"thread {t.name} yielded non-syscall {call!r}")
        mix = self._syscall_mix
        if mix is not None:
            try:
                mix[call._mix_idx] += 1
            except (AttributeError, IndexError):
                self._count_unslotted_syscall(call.__class__)
        loc = self._loc(call, t)

        if isinstance(call, sc.Acquire):
            self._do_acquire(t, call.lock, loc)
        elif isinstance(call, sc.Release):
            self._do_release(t, call.lock, loc)
        elif isinstance(call, sc.Wait):
            self._do_wait(t, call.cond, call.timeout, loc)
        elif isinstance(call, sc.Notify):
            self._do_notify(t, call.cond, call.n, loc)
        elif isinstance(call, sc.Sleep):
            self._record(OP.SLEEP, obj=None, loc=loc, extra=call.duration)
            if call.duration <= 0:
                t.pending = None
            else:
                t.state = TState.SLEEPING
                t.waiting_on = "sleep"
                self._arm_timer(t, call.duration, "sleep")
        elif isinstance(call, sc.Read):
            value = call.cell.value
            self._record(OP.READ, obj=call.cell, loc=loc, extra=value)
            t.pending = value
        elif isinstance(call, sc.Write):
            call.cell.value = call.value
            self._record(OP.WRITE, obj=call.cell, loc=loc, extra=call.value)
        elif isinstance(call, sc.Yield):
            t.pending = None
        elif isinstance(call, sc.Now):
            t.pending = self.now
        elif isinstance(call, sc.Join):
            self._do_join(t, call.thread, call.timeout, loc)
        elif isinstance(call, sc.Interrupt):
            t.pending = self.interrupt(call.thread, call.exc)
        elif isinstance(call, sc.AcquireSem):
            self._do_sem_p(t, call.sem, loc)
        elif isinstance(call, sc.ReleaseSem):
            self._do_sem_v(t, call.sem, loc)
        elif isinstance(call, sc.BarrierWait):
            self._do_barrier(t, call.barrier, loc)
        elif isinstance(call, sc.EventWait):
            self._do_event_wait(t, call.event, call.timeout, loc)
        elif isinstance(call, sc.EventSet):
            call.event.flag = True
            self._record(OP.EVENT_SET, obj=call.event, loc=loc)
            for w in call.event.waiters:
                # EVENT_WAIT is recorded at wake time (after EVENT_SET in
                # trace order) so the set -> wait-return edge is visible.
                self._record(OP.EVENT_WAIT, obj=call.event, loc="?", thread=w)
                self._wake(w, True)
            call.event.waiters.clear()
        elif isinstance(call, sc.EventClear):
            call.event.flag = False
        elif isinstance(call, sc.BeginAtomic):
            self._record(OP.ATOMIC_BEGIN, obj=None, loc=loc, extra=call.label)
        elif isinstance(call, sc.EndAtomic):
            self._record(OP.ATOMIC_END, obj=None, loc=loc, extra=call.label)
        elif isinstance(call, sc.Annotate):
            self._record(OP.ANNOTATE, obj=None, loc=loc, extra={"kind": call.kind, "data": call.data})
        elif isinstance(call, sc.Trigger):
            self._do_trigger(t, call, loc)
        else:  # pragma: no cover - defensive
            raise SimSyscallError(f"unhandled syscall {call!r}")

    # -- locks ----------------------------------------------------------
    def _do_acquire(self, t: SimThread, lock: SimLock, loc: str) -> None:
        if lock.owner is t:
            if lock.reentrant:
                # Nested monitor entry: no ownership transition, no event.
                lock.count += 1
                t.pending = True
            else:
                # Self-deadlock, like threading.Lock: block on ourselves.
                self._record(OP.ACQUIRE_REQ, obj=lock, loc=loc)
                t.state = TState.BLOCKED
                t.waiting_on = lock
                lock.waiters.append(t)
                self._wait_ctx[t] = ("acquire", loc)
        elif lock.owner is None and not lock.waiters:
            self._grant_lock(lock, t, 1, loc=loc)
            t.pending = True
        else:
            self._record(OP.ACQUIRE_REQ, obj=lock, loc=loc)
            t.state = TState.BLOCKED
            t.waiting_on = lock
            lock.waiters.append(t)
            self._wait_ctx[t] = ("acquire", loc)

    def _do_release(self, t: SimThread, lock: SimLock, loc: str) -> None:
        if lock.owner is not t:
            raise SimSyscallError(f"{t.name} released {lock.name} it does not hold")
        lock.count -= 1
        if lock.count > 0:
            return
        self._record(OP.RELEASE, obj=lock, loc=loc)
        self._release_lock_fully(lock, t)

    # -- monitors ---------------------------------------------------------
    def _do_wait(self, t: SimThread, cond: SimCondition, timeout: Optional[float], loc: str) -> None:
        lock = cond.lock
        if lock.owner is not t:
            raise SimSyscallError(f"{t.name} waits on {cond.name} without holding {lock.name}")
        saved = lock.count
        self._record(OP.WAIT_ENTER, obj=cond, loc=loc)
        self._record(OP.RELEASE, obj=lock, loc=loc)
        lock.count = 0
        self._release_lock_fully(lock, t)
        t.state = TState.BLOCKED
        t.waiting_on = cond
        cond.waiters.append(t)
        self._wait_ctx[t] = ("wait_return", (lock, saved, True))
        if timeout is not None:
            self._arm_timer(t, timeout, "wait_timeout", cond)

    def _do_notify(self, t: SimThread, cond: SimCondition, n: Optional[int], loc: str) -> None:
        if cond.lock.owner is not t:
            raise SimSyscallError(f"{t.name} notifies {cond.name} without holding its lock")
        count = len(cond.waiters) if n is None else min(n, len(cond.waiters))
        self._record(OP.NOTIFY, obj=cond, loc=loc, extra=count)
        for _ in range(count):
            w = cond.waiters.pop(0)
            w.wake_epoch += 1  # invalidate any wait_timeout timer
            ctx = self._wait_ctx.pop(w, ("wait_return", (cond.lock, 1, True)))
            _, (lk, saved, _result) = ctx
            self._record(OP.WAIT_EXIT, obj=cond, loc="?", thread=w)
            self._begin_reacquire(w, lk, saved, True)

    # -- join ------------------------------------------------------------
    def _do_join(self, t: SimThread, target: SimThread, timeout: Optional[float], loc: str) -> None:
        self._record(OP.JOIN, obj=target, loc=loc)
        if not target.alive:
            self._record(OP.JOINED, obj=target, loc=loc)
            t.pending = True
            return
        t.state = TState.BLOCKED
        t.waiting_on = target
        target.joiners.append(t)
        if timeout is not None:
            self._arm_timer(t, timeout, "join_timeout", target)

    # -- semaphores --------------------------------------------------------
    def _do_sem_p(self, t: SimThread, sem: Any, loc: str) -> None:
        if sem.value > 0:
            sem.value -= 1
            # SEM_P is recorded at *grant* time so the trace order gives
            # the happens-before edge V -> P.
            self._record(OP.SEM_P, obj=sem, loc=loc)
            t.pending = True
        else:
            t.state = TState.BLOCKED
            t.waiting_on = sem
            sem.waiters.append(t)

    def _do_sem_v(self, t: SimThread, sem: Any, loc: str) -> None:
        self._record(OP.SEM_V, obj=sem, loc=loc)
        if sem.waiters:
            w = sem.waiters.pop(0)
            self._record(OP.SEM_P, obj=sem, loc="?", thread=w)
            self._wake(w, True)
        else:
            sem.value += 1

    # -- barriers -----------------------------------------------------------
    def _do_barrier(self, t: SimThread, barrier: Any, loc: str) -> None:
        idx = barrier.count
        barrier.count += 1
        self._record(OP.BARRIER, obj=barrier, loc=loc, extra=idx)
        if barrier.count >= barrier.parties:
            for i, w in enumerate(barrier.waiters):
                # Release events after the last arrival: every waiter's
                # continuation is ordered after every arrival.
                self._record(OP.BARRIER, obj=barrier, loc="?", extra="release", thread=w)
                self._wake(w, i)
            barrier.waiters.clear()
            barrier.count = 0
            barrier.generation += 1
            t.pending = idx
        else:
            t.state = TState.BLOCKED
            t.waiting_on = barrier
            barrier.waiters.append(t)

    # -- events ---------------------------------------------------------------
    def _do_event_wait(self, t: SimThread, event: Any, timeout: Optional[float], loc: str) -> None:
        if event.flag:
            self._record(OP.EVENT_WAIT, obj=event, loc=loc)
            t.pending = True
            return
        t.state = TState.BLOCKED
        t.waiting_on = event
        event.waiters.append(t)
        if timeout is not None:
            self._arm_timer(t, timeout, "event_timeout", event)

    # -- concurrent breakpoints --------------------------------------------
    def _do_trigger(self, t: SimThread, call: sc.Trigger, loc: str) -> None:
        from repro.core.config import GLOBAL

        inst = call.inst
        if not GLOBAL.enabled:
            t.pending = False
            return
        self._record(OP.TRIGGER_VISIT, obj=inst, loc=loc, extra={"name": inst.name})
        runtimectx.push_held_locks(t.held_locks)
        try:
            result = self.engine.arrive(
                inst, call.is_first, thread_key=t.tid, now=self.now, timeout=call.timeout
            )
        finally:
            runtimectx.pop_held_locks()

        if isinstance(result, Skipped):
            t.pending = False
            return

        if isinstance(result, MatchedGroup):
            threads = [e.handle if e.handle is not None else t for e in result.ordered]
            self._record(
                OP.TRIGGER_HIT,
                obj=inst,
                loc=loc,
                extra={"name": inst.name, "threads": tuple(th.name for th in threads)},
            )
            # Wake everyone, then chain the ordering: rank 0 is pinned,
            # each later rank resumes only after its predecessor's next
            # instruction has executed.
            for th in threads:
                if th is not t:
                    self._wake(th, True)
            t.pending = True
            self._pinned.append(threads[0])
            for prev, nxt in zip(threads, threads[1:]):
                nxt.state = TState.ORDER_WAIT
                nxt.waiting_on = prev
                prev.order_waiters.append(nxt)
            return

        if isinstance(result, Matched):
            partner_thread: SimThread = result.partner.handle
            self._record(
                OP.TRIGGER_HIT,
                obj=inst,
                loc=loc,
                extra={"name": inst.name, "threads": (t.name, partner_thread.name)},
            )
            self._wake(partner_thread, True)
            t.pending = True
            first_entry = result.entry if result.entry.acts_first else result.partner
            second_entry = result.partner if result.entry.acts_first else result.entry
            first_thread = t if first_entry is result.entry else partner_thread
            second_thread = partner_thread if first_entry is result.entry else t
            # Exact Section 2 semantics: first thread's next instruction
            # runs before the second thread resumes.
            self._pinned.append(first_thread)
            second_thread.state = TState.ORDER_WAIT
            second_thread.waiting_on = first_thread
            first_thread.order_waiters.append(second_thread)
            return

        assert isinstance(result, Postponed)
        entry = result.entry
        entry.handle = t
        self._record(OP.TRIGGER_POSTPONE, obj=inst, loc=loc, extra={"name": inst.name})
        t.state = TState.BLOCKED
        t.waiting_on = ("breakpoint", entry)
        self._arm_timer(t, call.timeout, "trigger_timeout", entry)

    # ------------------------------------------------------------------
    # Interruption
    # ------------------------------------------------------------------
    def interrupt(self, target: SimThread, exc: Optional[BaseException] = None) -> bool:
        """Deliver ``exc`` into ``target`` at its next scheduling point.

        Blocked threads are unwound from whatever they wait on first; a
        thread parked in a condition ``wait`` reacquires the monitor
        before the exception is raised (Java's ``InterruptedException``
        contract).  Returns False for finished threads.
        """
        if not target.alive:
            return False
        if exc is None:
            exc = ThreadInterrupted()
        target.pending_exc = exc

        waiting = target.waiting_on
        if target.state in (TState.RUNNABLE, TState.NEW, TState.ORDER_WAIT):
            # Will run (or be released by its predecessor) anyway; the
            # exception fires at its next step.
            return True
        if target.state is TState.SLEEPING:
            self._wake(target, None)
            return True

        # BLOCKED: unwind the wait.
        from .primitives import SimBarrier, SimCondition, SimEvent, SimSemaphore

        if isinstance(waiting, SimCondition):
            if target in waiting.waiters:
                waiting.waiters.remove(target)
            target.wake_epoch += 1  # kill the wait timer
            ctx = self._wait_ctx.pop(target, ("wait_return", (waiting.lock, 1, False)))
            _, (lock, count, _result) = ctx
            # Reacquire the monitor; the exception is raised once granted.
            self._begin_reacquire(target, lock, count, False)
            return True
        if isinstance(waiting, SimLock):
            if target in waiting.waiters:
                waiting.waiters.remove(target)
            self._wait_ctx.pop(target, None)
            self._wake(target, None)
            return True
        if isinstance(waiting, (SimSemaphore, SimBarrier, SimEvent)):
            if target in waiting.waiters:
                waiting.waiters.remove(target)
            self._wake(target, None)
            return True
        if isinstance(waiting, SimThread):  # join
            if target in waiting.joiners:
                waiting.joiners.remove(target)
            self._wake(target, None)
            return True
        if isinstance(waiting, tuple) and waiting and waiting[0] == "breakpoint":
            self.engine.cancel(waiting[1])
            self._wake(target, None)
            return True
        # Unknown wait (active-test pause etc.): wake and deliver.
        self._wake(target, None)
        return True

    # ------------------------------------------------------------------
    # Deadlock diagnosis & results
    # ------------------------------------------------------------------
    def _diagnose_deadlock(self) -> SimDeadlockError:
        waiters = {t.name: t.describe_block() for t in self.threads if t.blocked}
        # Follow lock-ownership edges to find a cycle.
        cycle = None
        for start in self.threads:
            if not start.blocked or not isinstance(start.waiting_on, SimLock):
                continue
            seen: List[SimThread] = []
            cur: Optional[SimThread] = start
            while cur is not None and cur not in seen:
                seen.append(cur)
                target = cur.waiting_on
                cur = target.owner if isinstance(target, SimLock) else None
            if cur is not None:
                cycle = [x.name for x in seen[seen.index(cur):]] + [cur.name]
                break
        return SimDeadlockError(waiters, cycle)

    def _count_unslotted_syscall(self, cls: type) -> None:
        """Cold path of the mix accounting: register a syscall class
        defined after import (no ``_mix_idx`` yet, or one beyond this
        kernel's slot list) and count the dispatch."""
        idx = getattr(cls, "_mix_idx", None)
        if idx is None:
            idx = cls._mix_idx = len(_MIX_NAMES)
            _MIX_NAMES.append(f"kernel.syscall.{cls.__name__}")
        mix = self._syscall_mix
        assert mix is not None
        if idx >= len(mix):
            mix.extend([0] * (idx + 1 - len(mix)))
        mix[idx] += 1

    def _flush_obs(self) -> None:
        """Fold the run's accumulated counts into the metrics registry.

        Called once from :meth:`_result`; hot-path accumulation uses
        plain ints/dicts so instrumented runs stay within the <5 %
        obs-overhead gate (``benchmarks/bench_obs_overhead.py``).
        """
        obs = self.obs
        if obs is None or self._obs_flushed:
            return
        self._obs_flushed = True
        m = obs.metrics
        counts = {
            "kernel.runs": 1,
            "kernel.steps": self.step,
            "kernel.ctx_switches": self.ctx_switches,
            "kernel.threads_spawned": len(self.threads),
        }
        if self._syscall_mix is not None:
            names = _MIX_NAMES
            for idx, n in enumerate(self._syscall_mix):
                if n:
                    counts[names[idx]] = n
        if self.failures:
            counts["kernel.thread_failures"] = len(self.failures)
        if self._deadlock is not None:
            counts["kernel.deadlocks"] = 1
        if self._stalled:
            counts["kernel.stalls"] = 1
        if self._limit_hit:
            counts["kernel.step_limit_hits"] = 1
        m.add_counters(counts)
        m.histogram("kernel.virtual_seconds").observe(self.now)
        self.engine.flush_metrics()
        if self._sig_run_end.active:
            self._sig_run_end(
                time=self.now,
                steps=self.step,
                deadlocked=self._deadlock is not None,
                stalled=self._stalled,
                failures=len(self.failures),
            )

    def _result(self) -> RunResult:
        completed = all(not t.alive or t.daemon for t in self.threads)
        self._flush_obs()
        return RunResult(
            time=self.now,
            steps=self.step,
            completed=completed and not self._deadlock and not self._stalled,
            deadlocked=self._deadlock is not None,
            deadlock=self._deadlock,
            stalled=self._stalled,
            limit_hit=self._limit_hit,
            failures=list(self.failures),
            trace=self.trace,
            breakpoint_stats=self.engine.snapshot(),
            threads=list(self.threads),
        )

    def state_signature(self) -> str:
        """Process-portable digest of scheduling-visible kernel state.

        Covers the clock, step count, RNG state, every thread's
        lifecycle (state, wake epoch, held locks, what it waits on),
        pending timers, and the state keys of synchronisation primitives
        reachable from threads.  Two kernels that executed the same
        choice sequence produce the same signature *in any process* —
        identities are ``uid``/``tid`` based, never ``id()`` based — so
        the snapshot executor can prove a restored run ended in the
        state a full replay reaches (``RunRecord.signature``).

        It is a fidelity check, not a full heap dump: application state
        held in plain Python objects is outside the kernel's view (the
        differential batteries compare it via ``observe`` snapshots and
        traces instead).
        """
        prims: Dict[int, Any] = {}

        def note(obj: Any) -> Any:
            if isinstance(obj, SimThread):
                return ("SimThread", obj.tid)
            key = getattr(obj, "state_key", None)
            if key is None:
                return type(obj).__name__
            prims[obj.uid] = obj
            return (type(obj).__name__, obj.uid)

        threads = tuple(
            (
                t.tid,
                t.name,
                t.state.name,
                t.wake_epoch,
                t.steps,
                t.daemon,
                tuple(note(lk) for lk in t.held_locks),
                note(t.waiting_on) if t.waiting_on is not None else None,
            )
            for t in self.threads
        )
        timers = tuple(
            (when, seq, thread.tid, epoch, kind)
            for when, seq, thread, epoch, kind, _payload in sorted(
                self._timers, key=lambda e: (e[0], e[1])
            )
        )
        body = repr(
            (
                self.step,
                self.now,
                self.ctx_switches,
                self.rng.getstate(),
                threads,
                timers,
                tuple(prims[uid].state_key() for uid in sorted(prims)),
                tuple(
                    sorted(
                        (name, repr(stats))
                        for name, stats in self.engine.snapshot().items()
                    )
                ),
                self._limit_hit,
                self._stalled,
                self._deadlock is not None,
                len(self.failures),
            )
        )
        return hashlib.sha1(body.encode()).hexdigest()
