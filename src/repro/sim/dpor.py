"""Dynamic partial-order reduction (Flanagan & Godefroid style).

Plain DFS exploration (:mod:`repro.sim.explore`) branches at *every*
scheduling point, so independent operations are permuted uselessly — the
tree is exponential in total steps.  DPOR observes, after each executed
schedule, which steps were actually *dependent* (two different threads
touching the same object, at least one effectful) and adds backtracking
branches only where reordering dependent pairs could produce a different
behaviour.  Every Mazurkiewicz trace (equivalence class of schedules up
to commuting independent steps) is still visited at least once.

Dependence here is object-based and conservative:

* two accesses to the same :class:`SharedCell` with at least one write;
* any two operations on the same lock / condition / semaphore / barrier /
  event;
* breakpoint operations on the same name.

When a dependent later step's thread was *not* runnable at the earlier
point, the standard conservative fallback adds all runnable threads
there.  The result is exact for the programs this explorer targets (no
timers — timed operations make steps non-commutable with the clock and
are rejected).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Set, Tuple

from .explore import Exploration, Outcome, _DFSScheduler
from .kernel import Kernel
from .trace import OP

__all__ = ["explore_dpor", "DporStats"]

#: Ops that conflict with any other op on the same object.
_SYNC_OPS = {
    OP.ACQUIRE,
    OP.ACQUIRE_REQ,
    OP.RELEASE,
    OP.WAIT_ENTER,
    OP.WAIT_EXIT,
    OP.NOTIFY,
    OP.SEM_P,
    OP.SEM_V,
    OP.BARRIER,
    OP.EVENT_WAIT,
    OP.EVENT_SET,
    OP.TRIGGER_POSTPONE,
    OP.TRIGGER_HIT,
}
_TIMED_OPS = {OP.SLEEP}


@dataclasses.dataclass
class DporStats:
    schedules: int
    branches_added: int
    conservative_fallbacks: int


def _step_footprints(trace, n_choices: int) -> List[Set[Tuple[int, str]]]:
    """Per choice index: the set of (object id, class) touched, where
    class is 'w' (write), 'r' (read) or 's' (sync)."""
    foot: List[Set[Tuple[int, str]]] = [set() for _ in range(n_choices)]
    for ev in trace:
        if ev.op in _TIMED_OPS:
            raise ValueError(
                "DPOR exploration does not support timed operations "
                "(Sleep/timeouts); use explore() instead"
            )
        idx = ev.step - 1  # pick k executes as kernel step k+1
        if not 0 <= idx < n_choices or ev.obj is None:
            continue
        if ev.op == OP.WRITE:
            foot[idx].add((id(ev.obj), "w"))
        elif ev.op == OP.READ:
            foot[idx].add((id(ev.obj), "r"))
        elif ev.op in _SYNC_OPS:
            foot[idx].add((id(ev.obj), "s"))
    return foot


def _dependent(a: Set[Tuple[int, str]], b: Set[Tuple[int, str]]) -> bool:
    for obj_a, cls_a in a:
        for obj_b, cls_b in b:
            if obj_a != obj_b:
                continue
            if cls_a == "s" or cls_b == "s":
                return True
            if cls_a == "w" or cls_b == "w":
                return True
    return False


def explore_dpor(
    build: Callable[[Kernel], None],
    max_schedules: int = 10_000,
    max_steps: int = 20_000,
    seed: int = 0,
    observe: Optional[Callable[[Kernel], object]] = None,
) -> Tuple[Exploration, DporStats]:
    """DPOR-reduced schedule exploration.

    Same contract as :func:`repro.sim.explore.explore` (deterministic
    ``build``, fresh kernel per run), plus the reduction statistics.
    Programs using ``Sleep`` or timeouts are rejected — wall-clock order
    does not commute.
    """
    outcomes: List[Outcome] = []
    visited_prefixes: Set[Tuple[int, ...]] = set()
    stack: List[List[int]] = [[]]
    branches_added = 0
    fallbacks = 0
    complete = True

    while stack:
        if len(outcomes) >= max_schedules:
            complete = False
            break
        prefix = stack.pop()
        key = tuple(prefix)
        if key in visited_prefixes:
            continue
        visited_prefixes.add(key)

        sched = _DFSScheduler(prefix)
        kernel = Kernel(scheduler=sched, seed=seed, record_trace=True)
        build(kernel)
        result = kernel.run(max_steps=max_steps)
        observed = observe(kernel) if observe is not None else None
        outcomes.append(Outcome(tuple(sched.choices), result, observed))

        choices = sched.choices
        runnables = sched.runnable_sets
        foot = _step_footprints(kernel.trace, len(choices))

        for j in range(len(choices)):
            tid_j = choices[j]
            # The race with the *last* dependent transition of another
            # thread (Flanagan-Godefroid): reordering step j before step
            # i may expose a different behaviour.  (No happens-before
            # pruning here — redundant branches are deduplicated by the
            # visited-prefix set, at worst costing extra runs.)
            for i in range(j - 1, -1, -1):
                if choices[i] == tid_j:
                    continue
                if _dependent(foot[i], foot[j]):
                    if tid_j in runnables[i]:
                        branch = choices[:i] + [tid_j]
                        if tuple(branch) not in visited_prefixes:
                            stack.append(branch)
                            branches_added += 1
                    else:
                        fallbacks += 1
                        for alt in runnables[i]:
                            if alt != choices[i]:
                                branch = choices[:i] + [alt]
                                if tuple(branch) not in visited_prefixes:
                                    stack.append(branch)
                                    branches_added += 1
                    break

    return (
        Exploration(outcomes=outcomes, complete=complete),
        DporStats(
            schedules=len(outcomes),
            branches_added=branches_added,
            conservative_fallbacks=fallbacks,
        ),
    )
