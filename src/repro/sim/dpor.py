"""Dynamic partial-order reduction (Flanagan & Godefroid style).

Plain DFS exploration (:mod:`repro.sim.explore`) branches at *every*
scheduling point, so independent operations are permuted uselessly — the
tree is exponential in total steps.  DPOR observes, after each executed
schedule, which steps were actually *dependent* (two different threads
touching the same object, at least one effectful) and adds backtracking
branches only where reordering dependent pairs could produce a different
behaviour.  Every Mazurkiewicz trace (equivalence class of schedules up
to commuting independent steps) is still visited at least once.

The explorer is the classical explicit-path DFS: one frame per depth of
the current schedule holds the tids already explored from that state,
the backtrack set race analysis filled in, and (optionally) the state's
sleep set.  After each run the race analysis adds backtrack points to
frames along the current path only; the search then resumes from the
deepest frame with an unexplored backtrack tid.  Because deeper frames
are discarded on backtracking, a sibling's subtree is fully explored
before the next sibling starts — the traversal order sleep-set
soundness depends on.

Dependence here is object-based and conservative:

* two accesses to the same :class:`SharedCell` with at least one write;
* any two operations on the same lock / condition / semaphore / barrier /
  event;
* breakpoint operations on the same name.

When a dependent later step's thread was *not* runnable at the earlier
point, the standard conservative fallback adds all runnable threads
there.  The result is exact for the programs this explorer targets (no
timers — timed operations make steps non-commutable with the clock and
are rejected).

Three orthogonal extensions on top of the base algorithm:

* ``sleep_sets=True`` — Godefroid sleep sets: when a sibling ``t`` has
  been fully explored from a state, ``t`` enters the *sleep set* of the
  next sibling's subtree and stays there while execution only performs
  steps independent of ``t``'s pending transition (waking at the first
  dependent one).  A run whose free descent schedules a sleeping tid is
  *sleep-set blocked*: everything below that step is a commutation of a
  subtree explored earlier, so the outcome is dropped and the walk is
  redirected; :class:`DporStats.sleep_set_prunes` counts these cuts.
  Blocked runs are still *executed* and race-analyzed in full — DPOR
  discovers backtrack points lazily from executed runs, so skipping a
  covered subtree without running anything would also skip the race
  analysis only its runs perform (races whose reversals reach *outside*
  the covered subtree), losing behaviours.  Sleep sets therefore reduce
  the number of *schedules counted*, never the set of distinct
  behaviours reached — the differential battery asserts behaviour-set
  equality against plain DPOR.
* ``snapshots=True`` — schedules execute on the copy-on-branch fork
  pool (:mod:`repro.sim.snapshot`) instead of stateless replay; step
  footprints are computed inside the run's own process because they key
  on object identities.
* :func:`explore_dpor_sharded` — the schedule tree is split at a fixed
  depth into disjoint-prefix shards (the same frontier
  :func:`repro.sim.explore.explore_sharded` uses) that run DPOR
  independently across forked workers.  Because the frontier branches at
  *every* runnable tid above the shard depth, any backtrack a shard
  would need there already exists as a sibling shard — so per-shard
  backtracking can be soundly restricted to depths inside the shard.
  The merged result is bit-identical for any worker count (crashed
  workers' shards are recomputed serially in the parent), though the
  exhaustive frontier may execute more schedules than serial
  :func:`explore_dpor` would.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .explore import (
    Bound,
    Exploration,
    Outcome,
    _cut_verdict,
    _fan_out,
    _flush_explore_obs,
    _frontier,
    _name_footprints,
    _preemption_prefix_counts,
    _sanitize_outcome,
    _schedule_weight,
    _variable_charges,
    merge_shards,
)
from .kernel import Kernel
from .snapshot import make_pool
from .trace import OP

__all__ = ["explore_dpor", "explore_dpor_sharded", "DporStats"]

#: Ops that conflict with any other op on the same object.
_SYNC_OPS = {
    OP.ACQUIRE,
    OP.ACQUIRE_REQ,
    OP.RELEASE,
    OP.WAIT_ENTER,
    OP.WAIT_EXIT,
    OP.NOTIFY,
    OP.SEM_P,
    OP.SEM_V,
    OP.BARRIER,
    OP.EVENT_WAIT,
    OP.EVENT_SET,
    OP.TRIGGER_POSTPONE,
    OP.TRIGGER_HIT,
}
_TIMED_OPS = {OP.SLEEP}


@dataclasses.dataclass
class DporStats:
    """Counters describing one DPOR exploration walk."""
    schedules: int
    branches_added: int
    conservative_fallbacks: int
    #: Sleep-set-blocked runs: executed for their race analysis but
    #: proven redundant (their subtree is a commutation of an explored
    #: one), so their outcomes are dropped from the schedule count.
    sleep_set_prunes: int = 0
    #: Kernel steps actually executed across all runs (suffix-only when
    #: snapshots are on) — the denominator of the work saved.
    executed_steps: int = 0
    #: Backtrack branches cut by the preemption bound (0 unbounded).
    preemption_cuts: int = 0
    #: Backtrack branches cut by the variable bound (0 unbounded).
    variable_cuts: int = 0


def _step_footprints(trace, n_choices: int) -> List[Set[Tuple[int, str]]]:
    """Per choice index: the set of (object id, class) touched, where
    class is 'w' (write), 'r' (read) or 's' (sync)."""
    foot: List[Set[Tuple[int, str]]] = [set() for _ in range(n_choices)]
    for ev in trace:
        if ev.op in _TIMED_OPS:
            raise ValueError(
                "DPOR exploration does not support timed operations "
                "(Sleep/timeouts); use explore() instead"
            )
        idx = ev.step - 1  # pick k executes as kernel step k+1
        if not 0 <= idx < n_choices or ev.obj is None:
            continue
        if ev.op == OP.WRITE:
            foot[idx].add((id(ev.obj), "w"))
        elif ev.op == OP.READ:
            foot[idx].add((id(ev.obj), "r"))
        elif ev.op in _SYNC_OPS:
            foot[idx].add((id(ev.obj), "s"))
    return foot


def _dependent(a: Set[Tuple[int, str]], b: Set[Tuple[int, str]]) -> bool:
    for obj_a, cls_a in a:
        for obj_b, cls_b in b:
            if obj_a != obj_b:
                continue
            if cls_a == "s" or cls_b == "s":
                return True
            if cls_a == "w" or cls_b == "w":
                return True
    return False


def _footprint_extras(kernel: Kernel, sched) -> dict:
    """Pool postprocess hook: footprints must be computed in the process
    that executed the run — they key on object identities, which are
    only meaningful there.  Every footprint comparison the explorer
    makes is between footprints of one single run (pending transitions
    at a state are state-determined, and the current run always passes
    through every live frame's state), so ``id`` keys suffice."""
    return {"foot": _step_footprints(kernel.trace, len(sched.choices))}


def _footprint_extras_named(kernel: Kernel, sched) -> dict:
    """Footprints plus the name-keyed variant variable bounding charges
    against (names, unlike ``id`` keys, survive process restarts — the
    variable-bound subset must be deterministic across them)."""
    extras = _footprint_extras(kernel, sched)
    extras["vfoot"] = _name_footprints(kernel.trace, len(sched.choices))
    return extras


@dataclasses.dataclass
class _Frame:
    """DFS state for one depth of the current path.

    ``sleep`` is the state's sleep set, fixed when the frame is created
    (entering the state); already-explored siblings reach descendants
    through the child-sleep computation, not by mutating this."""

    chosen: int
    executed: Set[int]
    backtrack: Set[int]
    sleep: FrozenSet[int]


def explore_dpor(
    build: Callable[[Kernel], None],
    max_schedules: int = 10_000,
    max_steps: int = 20_000,
    seed: int = 0,
    observe: Optional[Callable[[Kernel], object]] = None,
    *,
    sleep_sets: bool = False,
    snapshots: bool = False,
    prefix: Sequence[int] = (),
    obs: Any = None,
    bound: Optional[Bound] = None,
) -> Tuple[Exploration, DporStats]:
    """DPOR-reduced schedule exploration.

    Same contract as :func:`repro.sim.explore.explore` (deterministic
    ``build``, fresh kernel per run), plus the reduction statistics.
    Programs using ``Sleep`` or timeouts are rejected — wall-clock order
    does not commute.

    ``prefix`` restricts both execution *and backtracking* to the
    subtree under the forced prefix; it is only sound when every sibling
    alternative above ``len(prefix)`` is explored elsewhere, which is
    exactly what :func:`explore_dpor_sharded`'s exhaustive frontier
    guarantees.  ``sleep_sets``/``snapshots``/``obs`` are documented in
    the module docstring.

    ``bound`` (a :class:`~repro.sim.explore.Bound`) cuts over-budget
    backtrack branches before they are taken — counted per strategy in
    :class:`DporStats` — and caps preemptions in the free descent; a
    large-enough bound is bit-identical to ``bound=None``.
    """
    if bound is not None and not bound.active:
        bound = None
    want_vars = bound is not None and bound.variables is not None
    base = len(prefix)
    pool = make_pool(
        build,
        snapshots=snapshots,
        seed=seed,
        max_steps=max_steps,
        record_trace=True,
        observe=observe,
        postprocess=_footprint_extras_named if want_vars else _footprint_extras,
        bound=bound,
    )
    branches_added = 0
    fallbacks = 0
    prunes = 0
    pcuts = vcuts = 0
    try:
        outcomes: List[Outcome] = []
        frames: List[_Frame] = []  # frames[k] is the state at depth base+k
        complete = True
        next_forced: List[int] = list(prefix)
        next_sleep: FrozenSet[int] = frozenset()
        divergence = base  # depth of the first frame the next run creates

        while True:
            if len(outcomes) >= max_schedules:
                complete = False
                break

            rec = pool.run(next_forced)
            outcomes.append(
                Outcome(
                    rec.choices,
                    rec.result,
                    rec.observed,
                    _schedule_weight(rec.runnable_sets),
                    rec.preemptions,
                )
            )
            choices = list(rec.choices)
            runnables = rec.runnable_sets
            foot = (rec.extras or {}).get("foot", [])
            n = len(choices)
            cum_p = (
                _preemption_prefix_counts(choices, runnables)
                if bound is not None
                else None
            )
            charges = (
                _variable_charges(choices, runnables, rec.extras["vfoot"])
                if want_vars
                else None
            )

            occ: Dict[int, List[int]] = {}
            for d, t in enumerate(choices):
                occ.setdefault(t, []).append(d)

            def pending(t: int, d: int, occ=occ, foot=foot):
                """Footprint of tid t's pending transition at depth d: a
                thread's generator is parked at one syscall, so whatever
                it executes next (its first occurrence at or after d) is
                what it would execute if scheduled at d.  None when the
                run never schedules t again (conservative)."""
                lst = occ.get(t)
                if not lst:
                    return None
                k = bisect.bisect_left(lst, d)
                return foot[lst[k]] if k < len(lst) else None

            # Materialize frames for the fresh suffix.  The child sleep
            # chain is the classical propagation: a sleeper survives a
            # step only if its pending transition is provably
            # independent of it; the executed tid itself always wakes.
            #
            # The kernel's free descent picks min-tid blindly, so it can
            # schedule a *sleeping* thread — a sleep-set-blocked run:
            # everything below that step is a commutation of an
            # already-explored subtree.  Cut the path there, don't
            # record the outcome, and redirect the search to the
            # smallest awake enabled tid at that state (if none, the
            # state is a fully covered leaf and the frame pops empty).
            del frames[divergence - base:]
            cur_sleep = next_sleep
            ssb: Optional[int] = None
            for depth in range(divergence, n):
                c = choices[depth]
                if sleep_sets and c in cur_sleep:
                    ssb = depth
                    enabled = set(runnables[depth])
                    awake = enabled - cur_sleep
                    frames.append(
                        _Frame(
                            chosen=c,
                            executed=(enabled & cur_sleep) | {c},
                            backtrack={min(awake)} if awake else set(),
                            sleep=cur_sleep,
                        )
                    )
                    prunes += 1
                    outcomes.pop()
                    break
                frames.append(
                    _Frame(
                        chosen=c,
                        executed={c},
                        backtrack=set(),
                        sleep=cur_sleep,
                    )
                )
                if sleep_sets and cur_sleep:
                    fc = foot[depth]
                    nxt: Set[int] = set()
                    for x in cur_sleep:
                        if x == c:
                            continue
                        fx = pending(x, depth + 1)
                        if fx is not None and not _dependent(fx, fc):
                            nxt.add(x)
                    cur_sleep = frozenset(nxt)
                else:
                    cur_sleep = frozenset()

            # Race analysis: the race with the *last* dependent
            # transition of another thread (Flanagan-Godefroid) —
            # reordering step j before step i may expose a different
            # behaviour, so tid_j joins the backtrack set of frame i.
            # Backtracking stays at depths >= base: below it, sibling
            # shards own the alternatives.  The whole run is analyzed
            # even past a sleep-set cut — the run executed either way,
            # and races seen only beyond the cut can demand reversals
            # at frames above it that no other run will request.  Race
            # points below the cut have no frame; clamping the search
            # to live frames lands the backtrack on an earlier
            # dependent transition instead, which only widens the
            # exploration (conservative, never unsound).
            n_frames = len(frames)
            for j in range(base + 1, n):
                tid_j = choices[j]
                for i in range(min(j - 1, base + n_frames - 1), base - 1, -1):
                    if choices[i] == tid_j:
                        continue
                    if _dependent(foot[i], foot[j]):
                        if tid_j in runnables[i]:
                            alts: Tuple[int, ...] = (tid_j,)
                        else:
                            fallbacks += 1
                            alts = tuple(
                                a for a in runnables[i] if a != choices[i]
                            )
                        fr = frames[i - base]
                        for alt in alts:
                            if (
                                alt not in fr.executed
                                and alt not in fr.backtrack
                            ):
                                fr.backtrack.add(alt)
                                branches_added += 1
                        break

            # Resume from the deepest frame with unexplored backtrack
            # tids; exhausted frames are discarded, so by the time a
            # sibling is taken the previous sibling's subtree is done.
            selected = False
            while frames:
                fr = frames[-1]
                cand = fr.backtrack - fr.executed
                if not cand:
                    frames.pop()
                    continue
                d = base + len(frames) - 1
                t = min(cand)
                fr.executed.add(t)
                # Bounded search: a backtrack branch whose schedule
                # would exceed the budget is cut here, before it runs.
                # The frame lies on the current run's path, so the
                # current run's prefix-count/charge arrays describe the
                # branch's shared prefix exactly.
                if bound is not None:
                    verdict = _cut_verdict(
                        bound, cum_p, charges, choices, runnables, d, t
                    )
                    if verdict == "p":
                        pcuts += 1
                        continue
                    if verdict == "v":
                        vcuts += 1
                        continue
                # A backtrack tid that is asleep here is still taken:
                # its subtree is behaviour-covered by an explored
                # sibling, but only *running* it performs the race
                # analysis that can add fresh (awake) tids to this
                # frame's own backtrack set.  Its runs die fast — the
                # descent below it is deep in sleeping territory and
                # gets cut — and any duplicate outcomes are harmless
                # to the behaviour set.
                child: Set[int] = set()
                if sleep_sets:
                    ft = pending(t, d)
                    if ft is not None:
                        for x in (fr.sleep | fr.executed) - {t}:
                            fx = pending(x, d)
                            if fx is not None and not _dependent(fx, ft):
                                child.add(x)
                fr.chosen = t
                next_forced = list(prefix) + [f.chosen for f in frames]
                next_sleep = frozenset(child)
                divergence = d + 1
                selected = True
                break
            if not selected:
                break

        stats = DporStats(
            schedules=len(outcomes),
            branches_added=branches_added,
            conservative_fallbacks=fallbacks,
            sleep_set_prunes=prunes,
            executed_steps=pool.stats.executed_steps,
            preemption_cuts=pcuts,
            variable_cuts=vcuts,
        )
        return (
            Exploration(
                outcomes=outcomes,
                complete=complete,
                preemption_cuts=pcuts,
                variable_cuts=vcuts,
            ),
            stats,
        )
    finally:
        pool.close()
        _flush_explore_obs(
            obs,
            pool.stats,
            {
                "explore.dpor.branches_added": branches_added,
                "explore.dpor.conservative_fallbacks": fallbacks,
                "explore.dpor.sleep_set_prunes": prunes,
                "explore.dpor.preemption_cuts": pcuts,
                "explore.dpor.variable_cuts": vcuts,
            },
        )


def _strip_outcome(outcome: Outcome) -> Outcome:
    """Sanitize for cross-process transport *and* canonical merging:
    traces hold live thread objects and are inherently process-local,
    so sharded DPOR drops them on every path (worker and serial alike —
    worker-count independence requires it)."""
    outcome = _sanitize_outcome(outcome)
    if outcome.result.trace is not None:
        outcome = Outcome(
            outcome.choices,
            dataclasses.replace(outcome.result, trace=None),
            outcome.observed,
            outcome.weight,
            outcome.preemptions,
        )
    return outcome


def explore_dpor_sharded(
    build: Callable[[Kernel], None],
    max_schedules: int = 10_000,
    max_steps: int = 20_000,
    seed: int = 0,
    observe: Optional[Callable[[Kernel], object]] = None,
    workers: Optional[int] = None,
    shard_depth: int = 2,
    *,
    sleep_sets: bool = False,
    snapshots: bool = False,
    fault_hook: Optional[Callable[[int, int], None]] = None,
    bound: Optional[Bound] = None,
) -> Tuple[Exploration, DporStats]:
    """DPOR over disjoint prefix shards across forked workers.

    Splits the schedule tree at ``shard_depth`` with the exhaustive
    frontier of :func:`repro.sim.explore.explore_sharded`, runs
    :func:`explore_dpor` restricted to each shard's subtree, and merges
    with the same duplicate-rejecting canonical
    :func:`repro.sim.explore.merge_shards`.  Soundness of restricting
    per-shard backtracking to depths >= ``shard_depth``: the frontier
    already branches at *every* runnable tid above that depth, so any
    backtrack point a shard would add there exists as a sibling shard by
    construction.

    Guarantees (mirroring the parallel trial runner's contract): the
    merged ``Exploration`` and summed :class:`DporStats` are
    bit-identical for any ``workers`` value, including 0/None (serial)
    and including workers that crash mid-shard — lost shards are
    recomputed serially in the parent (``fault_hook(worker_id,
    shard_idx)`` is the crash-injection point the tests use).  Relative
    to serial :func:`explore_dpor` the exhaustive frontier may execute
    *more* schedules (sharding overhead); per-behaviour coverage is the
    same.

    ``max_schedules`` bounds each shard's walk, so a capped sharded
    exploration can visit more schedules than a capped serial one.
    """
    shards, direct, (front_p, front_v) = _frontier(
        build, shard_depth, max_steps, seed, observe, bound
    )
    direct = [_strip_outcome(o) for o in direct]

    def task(idx: int, shard_prefix: List[int]):
        ex, st = explore_dpor(
            build,
            max_schedules=max_schedules,
            max_steps=max_steps,
            seed=seed,
            observe=observe,
            sleep_sets=sleep_sets,
            snapshots=snapshots,
            prefix=shard_prefix,
            bound=bound,
        )
        return ([_strip_outcome(o) for o in ex.outcomes], ex.complete, st)

    results = _fan_out(task, shards, workers, fault_hook)

    shard_exs: List[Exploration] = []
    total = DporStats(
        schedules=0,
        branches_added=0,
        conservative_fallbacks=0,
        sleep_set_prunes=0,
        executed_steps=0,
        preemption_cuts=front_p,
        variable_cuts=front_v,
    )
    for i in range(len(shards)):
        outs, shard_complete, st = results[i]
        shard_exs.append(
            Exploration(
                outcomes=outs,
                complete=shard_complete,
                preemption_cuts=st.preemption_cuts,
                variable_cuts=st.variable_cuts,
            )
        )
        total.branches_added += st.branches_added
        total.conservative_fallbacks += st.conservative_fallbacks
        total.sleep_set_prunes += st.sleep_set_prunes
        total.executed_steps += st.executed_steps
        total.preemption_cuts += st.preemption_cuts
        total.variable_cuts += st.variable_cuts
    shard_exs.append(Exploration(outcomes=direct, complete=True))
    merged = merge_shards(shard_exs)
    merged.preemption_cuts += front_p
    merged.variable_cuts += front_v
    total.schedules = merged.count
    return merged, total
