"""The pre-rewrite kernel loop, kept as a differential oracle.

:class:`ReferenceKernel` preserves the original (pre fast-path)
per-step machinery of :class:`~repro.sim.kernel.Kernel` verbatim:

* selection re-derives the runnable set each step with a scan+sort over
  all threads (``_next_thread``) instead of consulting the maintained
  ``_ready`` list;
* dispatch walks the original 20-way ``isinstance`` chain
  (``_dispatch`` + ``_do_*``) instead of the class-keyed handler table;
* tracing eagerly allocates an :class:`~repro.sim.trace.Event` object
  per record (:class:`ReferenceTrace`) instead of the flat slot buffer.

Everything else — timers, lock plumbing, wake/finish bookkeeping — is
inherited, so the two kernels share one semantics implementation and
differ only in the rewritten hot paths.  That makes this class both:

* the **correctness oracle** of the differential battery
  (``tests/sim/test_kernel_determinism.py``): for any program, scheduler
  and seed, fast and reference kernels must pick identical threads and
  emit bit-identical traces; and
* the **perf denominator** of ``benchmarks/bench_kernel_throughput.py``:
  the gated metric is the machine-relative ``speedup_vs_reference``.

The inherited helpers maintain the fast path's ``_ready`` list as a side
effect; the reference loop never consults it, and stale or duplicate
entries are harmless — every RUNNABLE thread always retains at least its
spawn entry, so the inherited ``_finish``/``_fail`` removal cannot fail.

Do not "improve" this module: its value is that it does NOT change when
the fast path does.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, List, Optional

from repro.core import runtimectx
from repro.core.engine import Matched, MatchedGroup, Postponed, Skipped

from . import syscalls as sc
from .errors import SimSyscallError
from .kernel import Kernel, RunResult
from .primitives import SimCondition, SimLock
from .scheduler import Scheduler
from .thread import SimThread, TState
from .trace import OP, Event

__all__ = ["ReferenceKernel", "ReferenceTrace"]


class ReferenceTrace:
    """The original eager trace: one :class:`Event` object per record."""

    def __init__(self) -> None:
        self.events: List[Event] = []
        self._seq = 0

    def record(
        self,
        time: float,
        tid: int,
        tname: str,
        op: str,
        obj: Any = None,
        loc: str = "?",
        extra: Any = None,
        step: int = -1,
    ) -> Event:
        ev = Event(self._seq, time, tid, tname, op, obj, loc, extra, step)
        self.events.append(ev)
        self._seq += 1
        return ev

    # Same call signature as the flat Trace's hot path, so the shared
    # kernel helpers (``_record``, ``_grant_lock``) work on both.
    def append(
        self,
        time: float,
        tid: int,
        tname: str,
        op: str,
        obj: Any = None,
        loc: str = "?",
        extra: Any = None,
        step: int = -1,
    ) -> None:
        self.record(time, tid, tname, op, obj, loc, extra, step)

    def last_step(self) -> int:
        return self.events[-1].step if self.events else -1

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


class ReferenceKernel(Kernel):
    """Kernel with the pre-rewrite selection/dispatch/trace hot paths."""

    def __init__(
        self,
        scheduler: Optional[Scheduler] = None,
        seed: Optional[int] = None,
        record_trace: bool = False,
        step_cost: float = 1e-6,
        obs: Any = None,
    ) -> None:
        super().__init__(
            scheduler=scheduler, seed=seed, record_trace=False, step_cost=step_cost, obs=obs
        )
        self.trace = ReferenceTrace() if record_trace else None  # type: ignore[assignment]

    # ------------------------------------------------------------------
    # Original tracing and lock-grant paths (eager Event per record,
    # unconditional source-location computation on grant)
    # ------------------------------------------------------------------
    def _record(
        self,
        op: str,
        obj: Any = None,
        loc: Optional[str] = None,
        extra: Any = None,
        thread: Optional[SimThread] = None,
    ) -> None:
        if self.trace is None:
            return
        t = thread if thread is not None else self.current
        tid = t.tid if t else -1
        tname = t.name if t else "main"
        if loc is None:
            loc = t.location() if t else "?"
        self.trace.record(self.now, tid, tname, op, obj, loc, extra, step=self.step)

    def _grant_lock(
        self, lock: SimLock, thread: SimThread, count: int, loc: Optional[str] = None
    ) -> None:
        lock.owner = thread
        lock.count = count
        thread.held_locks.append(lock)
        self._record(OP.ACQUIRE, obj=lock, loc=loc or thread.location(), thread=thread)

    # ------------------------------------------------------------------
    # Original main loop
    # ------------------------------------------------------------------
    def run(self, max_steps: int = 2_000_000, max_time: float = math.inf) -> RunResult:
        """Execute with the original select-then-step loop."""
        while True:
            if self.step >= max_steps:
                self._limit_hit = True
                break
            if self._live_foreground == 0:
                break  # normal completion (daemons abandoned, as in CPython)

            thread = self._next_thread(max_time)
            if thread is None:
                break  # deadlock or stall, flags already set
            self._execute_step(thread)

        return self._result()

    def _next_thread(self, max_time: float) -> Optional[SimThread]:
        while True:
            if self.now > max_time:
                self._stalled = True
                return None
            while self._pinned:
                t = self._pinned.pop(0)
                if t.state is TState.RUNNABLE:
                    return t
            runnable = [t for t in self.threads if t.state is TState.RUNNABLE]
            if runnable:
                runnable.sort(key=lambda t: t.tid)
                return self.scheduler.pick(runnable, self.step)
            # Drop stale timers (their thread was woken by another path)
            # before advancing the clock.
            while self._timers:
                _, _, th, epoch, _, _ = self._timers[0]
                if epoch != th.wake_epoch or not th.alive:
                    heapq.heappop(self._timers)
                else:
                    break
            if self._timers:
                deadline = self._timers[0][0]
                if deadline > max_time:
                    self.now = max_time
                    self._stalled = any(t.alive for t in self.threads)
                    return None
                self.now = max(self.now, deadline)
                self._fire_due_timers()
                continue
            # No runnable threads, no timers.
            if any(t.alive for t in self.threads):
                self._deadlock = self._diagnose_deadlock()
                return None
            return None

    def _execute_step(self, thread: SimThread) -> None:
        self.current = thread
        self.step += 1
        thread.steps += 1
        self.now += self.step_cost
        if thread.tid != self._last_tid:
            self.ctx_switches += 1
            self._last_tid = thread.tid
        if thread.state is TState.NEW:
            thread.state = TState.RUNNABLE

        pending, thread.pending = thread.pending, None
        exc, thread.pending_exc = thread.pending_exc, None
        try:
            if exc is not None:
                item = thread.gen.throw(exc)
            else:
                item = thread.gen.send(pending)
        except StopIteration as stop:
            self._finish(thread, getattr(stop, "value", None))
        except BaseException as err:  # noqa: BLE001 - thread failure is data here
            self._fail(thread, err)
        else:
            try:
                delay = None
                if self.pre_dispatch is not None and isinstance(item, sc.Syscall):
                    delay = self.pre_dispatch(thread, item)
                if delay is not None and delay > 0:
                    thread.state = TState.SLEEPING
                    thread.waiting_on = "active-test pause"
                    self._arm_timer(thread, delay, "retry", item)
                else:
                    self._dispatch(thread, item)
            except SimSyscallError as err:
                thread.pending_exc = RuntimeError(str(err))
        if thread.order_waiters:
            for w in thread.order_waiters:
                if w.state is TState.ORDER_WAIT:
                    self._wake(w, True)
            thread.order_waiters.clear()
        if thread.state is TState.RUNNABLE:
            delay = self.scheduler.delay_after_pick(thread, self.step)
            if delay > 0.0:
                thread.state = TState.SLEEPING
                thread.waiting_on = "noise"
                self._arm_timer(thread, delay, "noise")
        self.current = None

    # ------------------------------------------------------------------
    # Original isinstance-chain dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, t: SimThread, call: Any) -> None:
        if not isinstance(call, sc.Syscall):
            raise SimSyscallError(f"thread {t.name} yielded non-syscall {call!r}")
        mix = self._syscall_mix
        if mix is not None:
            try:
                mix[call._mix_idx] += 1
            except (AttributeError, IndexError):
                self._count_unslotted_syscall(call.__class__)
        loc = self._loc(call, t)

        if isinstance(call, sc.Acquire):
            self._do_acquire(t, call.lock, loc)
        elif isinstance(call, sc.Release):
            self._do_release(t, call.lock, loc)
        elif isinstance(call, sc.Wait):
            self._do_wait(t, call.cond, call.timeout, loc)
        elif isinstance(call, sc.Notify):
            self._do_notify(t, call.cond, call.n, loc)
        elif isinstance(call, sc.Sleep):
            self._record(OP.SLEEP, obj=None, loc=loc, extra=call.duration)
            if call.duration <= 0:
                t.pending = None
            else:
                t.state = TState.SLEEPING
                t.waiting_on = "sleep"
                self._arm_timer(t, call.duration, "sleep")
        elif isinstance(call, sc.Read):
            value = call.cell.value
            self._record(OP.READ, obj=call.cell, loc=loc, extra=value)
            t.pending = value
        elif isinstance(call, sc.Write):
            call.cell.value = call.value
            self._record(OP.WRITE, obj=call.cell, loc=loc, extra=call.value)
        elif isinstance(call, sc.Yield):
            t.pending = None
        elif isinstance(call, sc.Now):
            t.pending = self.now
        elif isinstance(call, sc.Join):
            self._do_join(t, call.thread, call.timeout, loc)
        elif isinstance(call, sc.Interrupt):
            t.pending = self.interrupt(call.thread, call.exc)
        elif isinstance(call, sc.AcquireSem):
            self._do_sem_p(t, call.sem, loc)
        elif isinstance(call, sc.ReleaseSem):
            self._do_sem_v(t, call.sem, loc)
        elif isinstance(call, sc.BarrierWait):
            self._do_barrier(t, call.barrier, loc)
        elif isinstance(call, sc.EventWait):
            self._do_event_wait(t, call.event, call.timeout, loc)
        elif isinstance(call, sc.EventSet):
            call.event.flag = True
            self._record(OP.EVENT_SET, obj=call.event, loc=loc)
            for w in call.event.waiters:
                self._record(OP.EVENT_WAIT, obj=call.event, loc="?", thread=w)
                self._wake(w, True)
            call.event.waiters.clear()
        elif isinstance(call, sc.EventClear):
            call.event.flag = False
        elif isinstance(call, sc.BeginAtomic):
            self._record(OP.ATOMIC_BEGIN, obj=None, loc=loc, extra=call.label)
        elif isinstance(call, sc.EndAtomic):
            self._record(OP.ATOMIC_END, obj=None, loc=loc, extra=call.label)
        elif isinstance(call, sc.Annotate):
            self._record(OP.ANNOTATE, obj=None, loc=loc, extra={"kind": call.kind, "data": call.data})
        elif isinstance(call, sc.Trigger):
            self._do_trigger(t, call, loc)
        else:  # pragma: no cover - defensive
            raise SimSyscallError(f"unhandled syscall {call!r}")

    # -- locks ----------------------------------------------------------
    def _do_acquire(self, t: SimThread, lock: SimLock, loc: str) -> None:
        if lock.owner is t:
            if lock.reentrant:
                lock.count += 1
                t.pending = True
            else:
                self._record(OP.ACQUIRE_REQ, obj=lock, loc=loc)
                t.state = TState.BLOCKED
                t.waiting_on = lock
                lock.waiters.append(t)
                self._wait_ctx[t] = ("acquire", loc)
        elif lock.owner is None and not lock.waiters:
            self._grant_lock(lock, t, 1, loc=loc)
            t.pending = True
        else:
            self._record(OP.ACQUIRE_REQ, obj=lock, loc=loc)
            t.state = TState.BLOCKED
            t.waiting_on = lock
            lock.waiters.append(t)
            self._wait_ctx[t] = ("acquire", loc)

    def _do_release(self, t: SimThread, lock: SimLock, loc: str) -> None:
        if lock.owner is not t:
            raise SimSyscallError(f"{t.name} released {lock.name} it does not hold")
        lock.count -= 1
        if lock.count > 0:
            return
        self._record(OP.RELEASE, obj=lock, loc=loc)
        self._release_lock_fully(lock, t)

    # -- monitors ---------------------------------------------------------
    def _do_wait(self, t: SimThread, cond: SimCondition, timeout: Optional[float], loc: str) -> None:
        lock = cond.lock
        if lock.owner is not t:
            raise SimSyscallError(f"{t.name} waits on {cond.name} without holding {lock.name}")
        saved = lock.count
        self._record(OP.WAIT_ENTER, obj=cond, loc=loc)
        self._record(OP.RELEASE, obj=lock, loc=loc)
        lock.count = 0
        self._release_lock_fully(lock, t)
        t.state = TState.BLOCKED
        t.waiting_on = cond
        cond.waiters.append(t)
        self._wait_ctx[t] = ("wait_return", (lock, saved, True))
        if timeout is not None:
            self._arm_timer(t, timeout, "wait_timeout", cond)

    def _do_notify(self, t: SimThread, cond: SimCondition, n: Optional[int], loc: str) -> None:
        if cond.lock.owner is not t:
            raise SimSyscallError(f"{t.name} notifies {cond.name} without holding its lock")
        count = len(cond.waiters) if n is None else min(n, len(cond.waiters))
        self._record(OP.NOTIFY, obj=cond, loc=loc, extra=count)
        for _ in range(count):
            w = cond.waiters.pop(0)
            w.wake_epoch += 1
            ctx = self._wait_ctx.pop(w, ("wait_return", (cond.lock, 1, True)))
            _, (lk, saved, _result) = ctx
            self._record(OP.WAIT_EXIT, obj=cond, loc="?", thread=w)
            self._begin_reacquire(w, lk, saved, True)

    # -- join ------------------------------------------------------------
    def _do_join(self, t: SimThread, target: SimThread, timeout: Optional[float], loc: str) -> None:
        self._record(OP.JOIN, obj=target, loc=loc)
        if not target.alive:
            self._record(OP.JOINED, obj=target, loc=loc)
            t.pending = True
            return
        t.state = TState.BLOCKED
        t.waiting_on = target
        target.joiners.append(t)
        if timeout is not None:
            self._arm_timer(t, timeout, "join_timeout", target)

    # -- semaphores --------------------------------------------------------
    def _do_sem_p(self, t: SimThread, sem: Any, loc: str) -> None:
        if sem.value > 0:
            sem.value -= 1
            self._record(OP.SEM_P, obj=sem, loc=loc)
            t.pending = True
        else:
            t.state = TState.BLOCKED
            t.waiting_on = sem
            sem.waiters.append(t)

    def _do_sem_v(self, t: SimThread, sem: Any, loc: str) -> None:
        self._record(OP.SEM_V, obj=sem, loc=loc)
        if sem.waiters:
            w = sem.waiters.pop(0)
            self._record(OP.SEM_P, obj=sem, loc="?", thread=w)
            self._wake(w, True)
        else:
            sem.value += 1

    # -- barriers -----------------------------------------------------------
    def _do_barrier(self, t: SimThread, barrier: Any, loc: str) -> None:
        idx = barrier.count
        barrier.count += 1
        self._record(OP.BARRIER, obj=barrier, loc=loc, extra=idx)
        if barrier.count >= barrier.parties:
            for i, w in enumerate(barrier.waiters):
                self._record(OP.BARRIER, obj=barrier, loc="?", extra="release", thread=w)
                self._wake(w, i)
            barrier.waiters.clear()
            barrier.count = 0
            barrier.generation += 1
            t.pending = idx
        else:
            t.state = TState.BLOCKED
            t.waiting_on = barrier
            barrier.waiters.append(t)

    # -- events ---------------------------------------------------------------
    def _do_event_wait(self, t: SimThread, event: Any, timeout: Optional[float], loc: str) -> None:
        if event.flag:
            self._record(OP.EVENT_WAIT, obj=event, loc=loc)
            t.pending = True
            return
        t.state = TState.BLOCKED
        t.waiting_on = event
        event.waiters.append(t)
        if timeout is not None:
            self._arm_timer(t, timeout, "event_timeout", event)

    # -- concurrent breakpoints --------------------------------------------
    def _do_trigger(self, t: SimThread, call: sc.Trigger, loc: str) -> None:
        from repro.core.config import GLOBAL

        inst = call.inst
        if not GLOBAL.enabled:
            t.pending = False
            return
        self._record(OP.TRIGGER_VISIT, obj=inst, loc=loc, extra={"name": inst.name})
        runtimectx.push_held_locks(t.held_locks)
        try:
            result = self.engine.arrive(
                inst, call.is_first, thread_key=t.tid, now=self.now, timeout=call.timeout
            )
        finally:
            runtimectx.pop_held_locks()

        if isinstance(result, Skipped):
            t.pending = False
            return

        if isinstance(result, MatchedGroup):
            threads = [e.handle if e.handle is not None else t for e in result.ordered]
            self._record(
                OP.TRIGGER_HIT,
                obj=inst,
                loc=loc,
                extra={"name": inst.name, "threads": tuple(th.name for th in threads)},
            )
            for th in threads:
                if th is not t:
                    self._wake(th, True)
            t.pending = True
            self._pinned.append(threads[0])
            for prev, nxt in zip(threads, threads[1:]):
                nxt.state = TState.ORDER_WAIT
                nxt.waiting_on = prev
                prev.order_waiters.append(nxt)
            return

        if isinstance(result, Matched):
            partner_thread: SimThread = result.partner.handle
            self._record(
                OP.TRIGGER_HIT,
                obj=inst,
                loc=loc,
                extra={"name": inst.name, "threads": (t.name, partner_thread.name)},
            )
            self._wake(partner_thread, True)
            t.pending = True
            first_entry = result.entry if result.entry.acts_first else result.partner
            first_thread = t if first_entry is result.entry else partner_thread
            second_thread = partner_thread if first_entry is result.entry else t
            self._pinned.append(first_thread)
            second_thread.state = TState.ORDER_WAIT
            second_thread.waiting_on = first_thread
            first_thread.order_waiters.append(second_thread)
            return

        assert isinstance(result, Postponed)
        entry = result.entry
        entry.handle = t
        self._record(OP.TRIGGER_POSTPONE, obj=inst, loc=loc, extra={"name": inst.name})
        t.state = TState.BLOCKED
        t.waiting_on = ("breakpoint", entry)
        self._arm_timer(t, call.timeout, "trigger_timeout", entry)
