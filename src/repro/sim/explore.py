"""Exhaustive (bounded) schedule exploration — a tiny model checker.

Enumerates *every* interleaving of a small simulated program by DFS over
scheduling choices.  Two execution modes share one DFS loop:

* **stateless** (default, the seed behaviour): each schedule re-executes
  from step 0 with a forced choice prefix — the kernel is deterministic
  given the choices, so replay is exact but costs O(total steps) per
  schedule;
* **snapshots** (``snapshots=True``): schedules resume from
  copy-on-branch process forks parked at the deepest shared prefix
  (:mod:`repro.sim.snapshot`), costing O(suffix steps) per schedule.
  The two modes enumerate the identical outcomes in the identical
  order by construction — both drive the same DFS over the same
  per-run :class:`~repro.sim.snapshot.RunRecord` data — and
  ``tests/sim/test_snapshot_explore.py`` asserts it differentially
  across every registered app.

In the paper's terms this is the CHESS-style systematic baseline
[25, 26]: it proves a Heisenbug's schedule *exists* and measures how
rare it is — `found in 3 of 1 026 interleavings` — which is precisely
why stumbling on it randomly is hopeless and a concurrent breakpoint is
worth inserting.

Use :func:`explore` on programs with a few dozen scheduling points; the
schedule tree is exponential, so ``max_schedules`` caps the walk (the
``complete`` flag says whether the cap hit).
"""

from __future__ import annotations

import dataclasses
import math
import multiprocessing
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .kernel import Kernel, RunResult
from .snapshot import PoolStats, _DFSScheduler, make_pool

__all__ = ["Outcome", "Exploration", "explore", "explore_sharded", "merge_shards"]


@dataclasses.dataclass
class Outcome:
    """One fully-executed schedule."""

    choices: Tuple[int, ...]
    result: RunResult
    #: Snapshot taken by ``explore``'s ``observe`` hook after the run
    #: (final shared state, oracle verdicts, ...); None if no hook.
    observed: object = None
    #: Probability a uniform random scheduler would walk exactly this
    #: schedule: the product of ``1/len(runnable)`` over every
    #: scheduling point (see :meth:`Exploration.probability`).
    weight: float = 1.0


@dataclasses.dataclass
class Exploration:
    """The set of explored schedules."""

    outcomes: List[Outcome]
    complete: bool  # False iff max_schedules stopped the walk

    @property
    def count(self) -> int:
        """Number of explored schedules."""
        return len(self.outcomes)

    def matching(self, pred: Callable[[Outcome], bool]) -> List[Outcome]:
        """Outcomes whose observation satisfies ``pred``."""
        return [o for o in self.outcomes if pred(o)]

    def probability(self, pred: Callable[[Outcome], bool], weighted: bool = False) -> float:
        """Fraction of explored schedules satisfying ``pred``.

        With ``weighted=False`` each *leaf schedule* counts equally; the
        answer is "how many of the possible interleavings are buggy".
        That is not the distribution a uniform random scheduler induces:
        a leaf behind ten binary choices is walked with probability
        2**-10, not 1/count.

        With ``weighted=True`` each schedule counts by its branch-choice
        probability — the product of ``1/len(runnable)`` at every
        scheduling point, normalised over the explored set — so on a
        complete exploration the answer matches the hit probability a
        uniform :class:`~repro.sim.scheduler.RandomScheduler` (without
        delay noise) would observe.  On a capped exploration it is the
        probability conditioned on landing in the explored subset.
        """
        if not self.outcomes:
            return 0.0
        if not weighted:
            return len(self.matching(pred)) / len(self.outcomes)
        total = sum(o.weight for o in self.outcomes)
        if total <= 0.0:
            return 0.0
        return sum(o.weight for o in self.outcomes if pred(o)) / total

    def witnesses(self, pred: Callable[[Outcome], bool], limit: int = 3) -> List[Tuple[int, ...]]:
        """Choice lists (replayable schedules) of up to ``limit`` matches."""
        return [o.choices for o in self.matching(pred)[:limit]]


def _schedule_weight(runnable_sets: Sequence[Tuple[int, ...]]) -> float:
    """Probability of this exact schedule under uniform random choice."""
    w = 1.0
    for tids in runnable_sets:
        n = len(tids)
        if n > 1:
            w /= n
    return w


def _flush_explore_obs(obs: Any, stats: PoolStats, extra: Optional[Dict[str, int]] = None) -> None:
    """Fold executor counters into an ``ObsContext`` metrics registry
    (``explore.*`` namespace; zero counts are skipped like the kernel's
    own flush does)."""
    if obs is None:
        return
    counts = {
        "explore.schedules": stats.runs,
        "explore.steps_executed": stats.executed_steps,
        "explore.replayed_choices": stats.replayed_choices,
        "explore.snapshot.parks": stats.parks,
        "explore.snapshot.restores": stats.restores,
        "explore.snapshot.fallback_runs": stats.fallback_runs,
    }
    if extra:
        counts.update(extra)
    obs.metrics.add_counters({k: v for k, v in counts.items() if v})


def explore(
    build: Callable[[Kernel], None],
    max_schedules: int = 10_000,
    max_steps: int = 20_000,
    seed: int = 0,
    observe: Optional[Callable[[Kernel], object]] = None,
    prefix: Sequence[int] = (),
    snapshots: bool = False,
    max_time: float = math.inf,
    obs: Any = None,
) -> Exploration:
    """Enumerate the program's schedule tree by DFS.

    ``build`` must be deterministic apart from scheduling (it receives a
    fresh, fixed-seed kernel per run).  Each scheduling point with ``k``
    runnable threads branches ``k`` ways; the walk visits every leaf once
    until ``max_schedules`` is exhausted.  ``observe(kernel)`` runs after
    each schedule and its value is stored on the outcome — use it to
    snapshot final shared state before the next run rebuilds everything.

    ``prefix`` restricts the walk to the subtree under a forced choice
    prefix: only alternatives at depth >= ``len(prefix)`` are branched.
    This is the sharding primitive of :func:`explore_sharded` — subtrees
    of distinct same-length prefixes are disjoint by construction.

    ``snapshots=True`` executes schedules on the copy-on-branch fork
    pool (:mod:`repro.sim.snapshot`): runs resume from the deepest
    parked snapshot instead of replaying the shared prefix.  Outcomes
    are identical to stateless mode except that process-local result
    fields (live thread objects, the deadlock exception instance) are
    stripped exactly as :func:`explore_sharded` strips them, and
    ``build``/``observe`` execute in forked children — side effects on
    parent state do not propagate, only ``observe``'s (picklable)
    return value does.  Falls back to stateless execution when ``fork``
    is unavailable.

    ``obs`` (an :class:`repro.obs.ObsContext`) collects ``explore.*``
    counters: schedules, steps executed, snapshot parks/restores.
    """
    pool = make_pool(
        build,
        snapshots=snapshots,
        seed=seed,
        max_steps=max_steps,
        max_time=max_time,
        observe=observe,
    )
    try:
        outcomes: List[Outcome] = []
        stack: List[List[int]] = [list(prefix)]
        complete = True
        while stack:
            if len(outcomes) >= max_schedules:
                complete = False
                break
            prefix = stack.pop()
            rec = pool.run(prefix)
            outcomes.append(
                Outcome(
                    rec.choices,
                    rec.result,
                    rec.observed,
                    _schedule_weight(rec.runnable_sets),
                )
            )
            # Unexplored siblings: at each depth at or beyond this
            # prefix, every runnable tid greater than the chosen one
            # starts a branch nobody has visited yet.  Push
            # shallow-first so the DFS pops the deepest branch next
            # (keeps the stack small — and keeps the pop adjacent to
            # the deepest parked snapshots in fork mode).
            for depth in range(len(prefix), len(rec.choices)):
                chosen = rec.choices[depth]
                for alt in rec.runnable_sets[depth]:
                    if alt > chosen:
                        stack.append(list(rec.choices[:depth]) + [alt])
        return Exploration(outcomes=outcomes, complete=complete)
    finally:
        pool.close()
        _flush_explore_obs(obs, pool.stats)


# ---------------------------------------------------------------------------
# Parallel exploration: disjoint prefix shards + deduplicated merge
# ---------------------------------------------------------------------------


def _sanitize_outcome(outcome: Outcome) -> Outcome:
    """Make an outcome process-portable and worker-count independent.

    ``RunResult.threads`` holds live generators (unpicklable) and
    ``deadlock`` an exception whose custom constructor breaks pickle
    round-trips; both are stripped.  Everything tests and analyses key on
    (choices, scalar result fields, trace, breakpoint stats, observed
    snapshot) survives intact.  Serial and process shard execution both
    go through this, so ``explore_sharded`` output does not depend on the
    worker count.
    """
    res = outcome.result
    if res.threads or res.deadlock is not None:
        res = dataclasses.replace(res, threads=[], deadlock=None)
    return Outcome(outcome.choices, res, outcome.observed, outcome.weight)


def merge_shards(shards: Sequence[Exploration]) -> Exploration:
    """Combine per-shard explorations into one canonical result.

    Enforces the sharding contract in code: a schedule (choice tuple)
    appearing in more than one shard means the shards were not disjoint —
    the merge raises rather than silently double-counting, because every
    probability computed from the exploration divides by the outcome
    count.  Outcomes are ordered lexicographically by choice tuple, a
    canonical order independent of shard completion order.
    """
    seen = set()
    merged: List[Outcome] = []
    for shard in shards:
        for outcome in shard.outcomes:
            if outcome.choices in seen:
                raise ValueError(
                    f"duplicate schedule across shards: {outcome.choices}"
                )
            seen.add(outcome.choices)
            merged.append(outcome)
    merged.sort(key=lambda o: o.choices)
    return Exploration(
        outcomes=merged, complete=all(s.complete for s in shards)
    )


def _frontier(
    build: Callable[[Kernel], None],
    shard_depth: int,
    max_steps: int,
    seed: int,
    observe: Optional[Callable[[Kernel], object]],
) -> Tuple[List[List[int]], List[Outcome]]:
    """Enumerate all choice prefixes of length ``shard_depth``.

    Runs that terminate before making ``shard_depth`` choices are
    single-leaf subtrees: they are returned as finished outcomes rather
    than shards (a shard DFS would just re-run them).

    Because the frontier branches at *every* runnable tid above the
    shard depth, it is exhaustive there — which is also what makes
    restricting per-shard DPOR backtracking to depths >= ``shard_depth``
    sound in :func:`repro.sim.dpor.explore_dpor_sharded`.
    """
    prefixes: List[List[int]] = [[]]
    direct: List[Outcome] = []
    for _ in range(shard_depth):
        nxt: List[List[int]] = []
        for p in prefixes:
            sched = _DFSScheduler(p)
            kernel = Kernel(scheduler=sched, seed=seed)
            build(kernel)
            result = kernel.run(max_steps=max_steps)
            if len(sched.choices) <= len(p):
                observed = observe(kernel) if observe is not None else None
                direct.append(
                    Outcome(
                        tuple(sched.choices),
                        result,
                        observed,
                        _schedule_weight(sched.runnable_sets),
                    )
                )
            else:
                for tid in sched.runnable_sets[len(p)]:
                    nxt.append(p + [tid])
        prefixes = nxt
        if not prefixes:
            break
    return prefixes, direct


def _fan_worker(conn, task, assigned, fault_hook, wid):
    """Run assigned (idx, item) tasks in a forked child; stream results."""
    try:
        for idx, item in assigned:
            if fault_hook is not None:
                fault_hook(wid, idx)
            conn.send((idx, task(idx, item)))
        conn.send(None)  # all assigned items done
    except Exception:
        pass  # parent recomputes missing items serially
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _fan_out(
    task: Callable[[int, Any], Any],
    items: Sequence[Any],
    workers: Optional[int],
    fault_hook: Optional[Callable[[int, int], None]] = None,
) -> Dict[int, Any]:
    """Compute ``task(idx, item)`` for every item, across forked workers
    when possible.

    The fault-tolerance contract mirrors ``harness/parallel.py``: a
    worker that dies (or raises) simply leaves its unfinished items
    unreported, and the parent recomputes exactly those serially —
    results are a function of ``(task, items)`` alone, never of worker
    count or timing.  ``fault_hook(worker_id, item_idx)`` is called in
    the worker before each item (crash-injection point for tests).
    """
    results: Dict[int, Any] = {}
    use_processes = (
        workers is not None
        and workers > 1
        and len(items) > 1
        and "fork" in multiprocessing.get_all_start_methods()
    )
    if use_processes:
        ctx = multiprocessing.get_context("fork")
        n_workers = min(workers, len(items))
        assignments: List[List[Tuple[int, Any]]] = [[] for _ in range(n_workers)]
        for idx, item in enumerate(items):
            assignments[idx % n_workers].append((idx, item))
        procs = []
        for wid, assigned in enumerate(assignments):
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_fan_worker,
                args=(child_conn, task, assigned, fault_hook, wid),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            procs.append((proc, parent_conn))
        for proc, conn in procs:
            try:
                while True:
                    msg = conn.recv()
                    if msg is None:
                        break
                    idx, payload = msg
                    results[idx] = payload
            except (EOFError, OSError):
                pass  # crashed worker; its items fall through to serial
            finally:
                proc.join()
                conn.close()
    for idx, item in enumerate(items):
        if idx not in results:
            results[idx] = task(idx, item)
    return results


def explore_sharded(
    build: Callable[[Kernel], None],
    max_schedules: int = 10_000,
    max_steps: int = 20_000,
    seed: int = 0,
    observe: Optional[Callable[[Kernel], object]] = None,
    workers: Optional[int] = None,
    shard_depth: int = 2,
) -> Exploration:
    """Schedule-tree enumeration over disjoint prefix shards.

    The tree is split at depth ``shard_depth`` into one shard per
    surviving prefix; each shard is a completely independent stateless
    DFS (disjoint by construction, enforced at merge time by
    :func:`merge_shards`).  With ``workers > 1`` and a ``fork`` start
    method available the shards run across worker processes — ``build``
    and ``observe`` may be ordinary closures because fork inherits them;
    per-outcome data returned across the process boundary must be
    picklable.  A worker that dies simply causes its unfinished shards to
    be re-explored serially in the parent: the walk degrades, it does not
    abort.

    ``max_schedules`` bounds each shard's walk (a capped exploration may
    therefore visit a different subset of leaves than capped serial
    :func:`explore`; uncapped results cover the identical full set).
    Outcomes are returned in lexicographic choice order, a canonical
    order independent of worker count and timing.
    """
    shards, direct = _frontier(build, shard_depth, max_steps, seed, observe)
    direct = [_sanitize_outcome(o) for o in direct]

    def task(idx: int, prefix: List[int]) -> Exploration:
        ex = explore(
            build,
            max_schedules=max_schedules,
            max_steps=max_steps,
            seed=seed,
            observe=observe,
            prefix=prefix,
        )
        return Exploration(
            outcomes=[_sanitize_outcome(o) for o in ex.outcomes],
            complete=ex.complete,
        )

    results = _fan_out(task, shards, workers)
    shard_results = [results[i] for i in range(len(shards))]
    shard_results.append(Exploration(outcomes=direct, complete=True))
    return merge_shards(shard_results)
