"""Exhaustive (bounded) schedule exploration — a tiny stateless model checker.

Enumerates *every* interleaving of a small simulated program by DFS over
scheduling choices, re-executing from the start with a forced choice
prefix each time (the kernel is deterministic given the choices, so
stateless replay is exact).  In the paper's terms this is the CHESS-style
systematic baseline [25, 26]: it proves a Heisenbug's schedule *exists*
and measures how rare it is — `found in 3 of 1 026 interleavings` — which
is precisely why stumbling on it randomly is hopeless and a concurrent
breakpoint is worth inserting.

Use :func:`explore` on programs with a few dozen scheduling points; the
schedule tree is exponential, so ``max_schedules`` caps the walk (the
``complete`` flag says whether the cap hit).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
from typing import Callable, List, Optional, Sequence, Tuple

from .kernel import Kernel, RunResult
from .scheduler import Scheduler
from .thread import SimThread

__all__ = ["Outcome", "Exploration", "explore", "explore_sharded", "merge_shards"]


class _DFSScheduler(Scheduler):
    """Follows a forced prefix, then always picks the lowest tid, and
    records the runnable set at every scheduling point."""

    def __init__(self, prefix: Sequence[int]) -> None:
        self.prefix = list(prefix)
        self.choices: List[int] = []
        self.runnable_sets: List[Tuple[int, ...]] = []

    def pick(self, runnable: Sequence[SimThread], step: int) -> SimThread:
        tids = tuple(t.tid for t in runnable)  # kernel pre-sorts by tid
        depth = len(self.choices)
        if depth < len(self.prefix):
            wanted = self.prefix[depth]
            chosen = next(t for t in runnable if t.tid == wanted)
        else:
            chosen = runnable[0]
        self.choices.append(chosen.tid)
        self.runnable_sets.append(tids)
        return chosen


@dataclasses.dataclass
class Outcome:
    """One fully-executed schedule."""

    choices: Tuple[int, ...]
    result: RunResult
    #: Snapshot taken by ``explore``'s ``observe`` hook after the run
    #: (final shared state, oracle verdicts, ...); None if no hook.
    observed: object = None


@dataclasses.dataclass
class Exploration:
    """The set of explored schedules."""

    outcomes: List[Outcome]
    complete: bool  # False iff max_schedules stopped the walk

    @property
    def count(self) -> int:
        return len(self.outcomes)

    def matching(self, pred: Callable[[Outcome], bool]) -> List[Outcome]:
        return [o for o in self.outcomes if pred(o)]

    def probability(self, pred: Callable[[Outcome], bool]) -> float:
        """Fraction of explored schedules satisfying ``pred``.

        Note: this weights each *leaf schedule* equally, which is not the
        same distribution a uniform random scheduler induces (deeper
        branches are rarer under random choice); it answers "how many of
        the possible interleavings are buggy".
        """
        if not self.outcomes:
            return 0.0
        return len(self.matching(pred)) / len(self.outcomes)

    def witnesses(self, pred: Callable[[Outcome], bool], limit: int = 3) -> List[Tuple[int, ...]]:
        """Choice lists (replayable schedules) of up to ``limit`` matches."""
        return [o.choices for o in self.matching(pred)[:limit]]


def explore(
    build: Callable[[Kernel], None],
    max_schedules: int = 10_000,
    max_steps: int = 20_000,
    seed: int = 0,
    observe: Optional[Callable[[Kernel], object]] = None,
    prefix: Sequence[int] = (),
) -> Exploration:
    """Enumerate the program's schedule tree by stateless DFS.

    ``build`` must be deterministic apart from scheduling (it receives a
    fresh, fixed-seed kernel per run).  Each scheduling point with ``k``
    runnable threads branches ``k`` ways; the walk visits every leaf once
    until ``max_schedules`` is exhausted.  ``observe(kernel)`` runs after
    each schedule and its value is stored on the outcome — use it to
    snapshot final shared state before the next run rebuilds everything.

    ``prefix`` restricts the walk to the subtree under a forced choice
    prefix: only alternatives at depth >= ``len(prefix)`` are branched.
    This is the sharding primitive of :func:`explore_sharded` — subtrees
    of distinct same-length prefixes are disjoint by construction.
    """
    outcomes: List[Outcome] = []
    stack: List[List[int]] = [list(prefix)]
    complete = True
    while stack:
        if len(outcomes) >= max_schedules:
            complete = False
            break
        prefix = stack.pop()
        sched = _DFSScheduler(prefix)
        kernel = Kernel(scheduler=sched, seed=seed)
        build(kernel)
        result = kernel.run(max_steps=max_steps)
        observed = observe(kernel) if observe is not None else None
        outcomes.append(Outcome(tuple(sched.choices), result, observed))
        # Unexplored siblings: at each depth at or beyond this prefix,
        # every runnable tid greater than the chosen one starts a branch
        # nobody has visited yet.  Push shallow-first so the DFS pops the
        # deepest branch next (keeps the stack small).
        for depth in range(len(prefix), len(sched.choices)):
            chosen = sched.choices[depth]
            for alt in sched.runnable_sets[depth]:
                if alt > chosen:
                    stack.append(sched.choices[:depth] + [alt])
    return Exploration(outcomes=outcomes, complete=complete)


# ---------------------------------------------------------------------------
# Parallel exploration: disjoint prefix shards + deduplicated merge
# ---------------------------------------------------------------------------


def _sanitize_outcome(outcome: Outcome) -> Outcome:
    """Make an outcome process-portable and worker-count independent.

    ``RunResult.threads`` holds live generators (unpicklable) and
    ``deadlock`` an exception whose custom constructor breaks pickle
    round-trips; both are stripped.  Everything tests and analyses key on
    (choices, scalar result fields, trace, breakpoint stats, observed
    snapshot) survives intact.  Serial and process shard execution both
    go through this, so ``explore_sharded`` output does not depend on the
    worker count.
    """
    res = outcome.result
    if res.threads or res.deadlock is not None:
        res = dataclasses.replace(res, threads=[], deadlock=None)
    return Outcome(outcome.choices, res, outcome.observed)


def merge_shards(shards: Sequence[Exploration]) -> Exploration:
    """Combine per-shard explorations into one canonical result.

    Enforces the sharding contract in code: a schedule (choice tuple)
    appearing in more than one shard means the shards were not disjoint —
    the merge raises rather than silently double-counting, because every
    probability computed from the exploration divides by the outcome
    count.  Outcomes are ordered lexicographically by choice tuple, a
    canonical order independent of shard completion order.
    """
    seen = set()
    merged: List[Outcome] = []
    for shard in shards:
        for outcome in shard.outcomes:
            if outcome.choices in seen:
                raise ValueError(
                    f"duplicate schedule across shards: {outcome.choices}"
                )
            seen.add(outcome.choices)
            merged.append(outcome)
    merged.sort(key=lambda o: o.choices)
    return Exploration(
        outcomes=merged, complete=all(s.complete for s in shards)
    )


def _frontier(
    build: Callable[[Kernel], None],
    shard_depth: int,
    max_steps: int,
    seed: int,
    observe: Optional[Callable[[Kernel], object]],
) -> Tuple[List[List[int]], List[Outcome]]:
    """Enumerate all choice prefixes of length ``shard_depth``.

    Runs that terminate before making ``shard_depth`` choices are
    single-leaf subtrees: they are returned as finished outcomes rather
    than shards (a shard DFS would just re-run them).
    """
    prefixes: List[List[int]] = [[]]
    direct: List[Outcome] = []
    for _ in range(shard_depth):
        nxt: List[List[int]] = []
        for p in prefixes:
            sched = _DFSScheduler(p)
            kernel = Kernel(scheduler=sched, seed=seed)
            build(kernel)
            result = kernel.run(max_steps=max_steps)
            if len(sched.choices) <= len(p):
                observed = observe(kernel) if observe is not None else None
                direct.append(Outcome(tuple(sched.choices), result, observed))
            else:
                for tid in sched.runnable_sets[len(p)]:
                    nxt.append(p + [tid])
        prefixes = nxt
        if not prefixes:
            break
    return prefixes, direct


def _shard_worker(conn, build, shard_list, max_schedules, max_steps, seed, observe):
    """Explore assigned shards in a forked child; stream results back."""
    try:
        for idx, prefix in shard_list:
            ex = explore(
                build,
                max_schedules=max_schedules,
                max_steps=max_steps,
                seed=seed,
                observe=observe,
                prefix=prefix,
            )
            conn.send(
                (idx, [_sanitize_outcome(o) for o in ex.outcomes], ex.complete)
            )
        conn.send(None)  # all assigned shards done
    except Exception:
        pass  # parent re-runs missing shards serially
    finally:
        try:
            conn.close()
        except OSError:
            pass


def explore_sharded(
    build: Callable[[Kernel], None],
    max_schedules: int = 10_000,
    max_steps: int = 20_000,
    seed: int = 0,
    observe: Optional[Callable[[Kernel], object]] = None,
    workers: Optional[int] = None,
    shard_depth: int = 2,
) -> Exploration:
    """Schedule-tree enumeration over disjoint prefix shards.

    The tree is split at depth ``shard_depth`` into one shard per
    surviving prefix; each shard is a completely independent stateless
    DFS (disjoint by construction, enforced at merge time by
    :func:`merge_shards`).  With ``workers > 1`` and a ``fork`` start
    method available the shards run across worker processes — ``build``
    and ``observe`` may be ordinary closures because fork inherits them;
    per-outcome data returned across the process boundary must be
    picklable.  A worker that dies simply causes its unfinished shards to
    be re-explored serially in the parent: the walk degrades, it does not
    abort.

    ``max_schedules`` bounds each shard's walk (a capped exploration may
    therefore visit a different subset of leaves than capped serial
    :func:`explore`; uncapped results cover the identical full set).
    Outcomes are returned in lexicographic choice order, a canonical
    order independent of worker count and timing.
    """
    shards, direct = _frontier(build, shard_depth, max_steps, seed, observe)
    direct = [_sanitize_outcome(o) for o in direct]
    results: dict = {}

    use_processes = (
        workers is not None
        and workers > 1
        and len(shards) > 1
        and "fork" in multiprocessing.get_all_start_methods()
    )
    if use_processes:
        ctx = multiprocessing.get_context("fork")
        n_workers = min(workers, len(shards))
        assignments: List[List[Tuple[int, List[int]]]] = [
            [] for _ in range(n_workers)
        ]
        for idx, prefix in enumerate(shards):
            assignments[idx % n_workers].append((idx, prefix))
        procs = []
        for shard_list in assignments:
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_shard_worker,
                args=(child_conn, build, shard_list, max_schedules, max_steps, seed, observe),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            procs.append((proc, parent_conn))
        for proc, conn in procs:
            try:
                while True:
                    msg = conn.recv()
                    if msg is None:
                        break
                    idx, outcomes, complete = msg
                    results[idx] = Exploration(outcomes=outcomes, complete=complete)
            except (EOFError, OSError):
                pass  # crashed worker; its shards fall through to serial
            finally:
                proc.join()
                conn.close()
    for idx, prefix in enumerate(shards):
        if idx not in results:
            ex = explore(
                build,
                max_schedules=max_schedules,
                max_steps=max_steps,
                seed=seed,
                observe=observe,
                prefix=prefix,
            )
            results[idx] = Exploration(
                outcomes=[_sanitize_outcome(o) for o in ex.outcomes],
                complete=ex.complete,
            )
    shard_results = [results[i] for i in range(len(shards))]
    shard_results.append(Exploration(outcomes=direct, complete=True))
    return merge_shards(shard_results)
