"""Exhaustive (bounded) schedule exploration — a tiny stateless model checker.

Enumerates *every* interleaving of a small simulated program by DFS over
scheduling choices, re-executing from the start with a forced choice
prefix each time (the kernel is deterministic given the choices, so
stateless replay is exact).  In the paper's terms this is the CHESS-style
systematic baseline [25, 26]: it proves a Heisenbug's schedule *exists*
and measures how rare it is — `found in 3 of 1 026 interleavings` — which
is precisely why stumbling on it randomly is hopeless and a concurrent
breakpoint is worth inserting.

Use :func:`explore` on programs with a few dozen scheduling points; the
schedule tree is exponential, so ``max_schedules`` caps the walk (the
``complete`` flag says whether the cap hit).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence, Tuple

from .kernel import Kernel, RunResult
from .scheduler import Scheduler
from .thread import SimThread

__all__ = ["Outcome", "Exploration", "explore"]


class _DFSScheduler(Scheduler):
    """Follows a forced prefix, then always picks the lowest tid, and
    records the runnable set at every scheduling point."""

    def __init__(self, prefix: Sequence[int]) -> None:
        self.prefix = list(prefix)
        self.choices: List[int] = []
        self.runnable_sets: List[Tuple[int, ...]] = []

    def pick(self, runnable: Sequence[SimThread], step: int) -> SimThread:
        tids = tuple(t.tid for t in runnable)  # kernel pre-sorts by tid
        depth = len(self.choices)
        if depth < len(self.prefix):
            wanted = self.prefix[depth]
            chosen = next(t for t in runnable if t.tid == wanted)
        else:
            chosen = runnable[0]
        self.choices.append(chosen.tid)
        self.runnable_sets.append(tids)
        return chosen


@dataclasses.dataclass
class Outcome:
    """One fully-executed schedule."""

    choices: Tuple[int, ...]
    result: RunResult
    #: Snapshot taken by ``explore``'s ``observe`` hook after the run
    #: (final shared state, oracle verdicts, ...); None if no hook.
    observed: object = None


@dataclasses.dataclass
class Exploration:
    """The set of explored schedules."""

    outcomes: List[Outcome]
    complete: bool  # False iff max_schedules stopped the walk

    @property
    def count(self) -> int:
        return len(self.outcomes)

    def matching(self, pred: Callable[[Outcome], bool]) -> List[Outcome]:
        return [o for o in self.outcomes if pred(o)]

    def probability(self, pred: Callable[[Outcome], bool]) -> float:
        """Fraction of explored schedules satisfying ``pred``.

        Note: this weights each *leaf schedule* equally, which is not the
        same distribution a uniform random scheduler induces (deeper
        branches are rarer under random choice); it answers "how many of
        the possible interleavings are buggy".
        """
        if not self.outcomes:
            return 0.0
        return len(self.matching(pred)) / len(self.outcomes)

    def witnesses(self, pred: Callable[[Outcome], bool], limit: int = 3) -> List[Tuple[int, ...]]:
        """Choice lists (replayable schedules) of up to ``limit`` matches."""
        return [o.choices for o in self.matching(pred)[:limit]]


def explore(
    build: Callable[[Kernel], None],
    max_schedules: int = 10_000,
    max_steps: int = 20_000,
    seed: int = 0,
    observe: Optional[Callable[[Kernel], object]] = None,
) -> Exploration:
    """Enumerate the program's schedule tree by stateless DFS.

    ``build`` must be deterministic apart from scheduling (it receives a
    fresh, fixed-seed kernel per run).  Each scheduling point with ``k``
    runnable threads branches ``k`` ways; the walk visits every leaf once
    until ``max_schedules`` is exhausted.  ``observe(kernel)`` runs after
    each schedule and its value is stored on the outcome — use it to
    snapshot final shared state before the next run rebuilds everything.
    """
    outcomes: List[Outcome] = []
    stack: List[List[int]] = [[]]
    complete = True
    while stack:
        if len(outcomes) >= max_schedules:
            complete = False
            break
        prefix = stack.pop()
        sched = _DFSScheduler(prefix)
        kernel = Kernel(scheduler=sched, seed=seed)
        build(kernel)
        result = kernel.run(max_steps=max_steps)
        observed = observe(kernel) if observe is not None else None
        outcomes.append(Outcome(tuple(sched.choices), result, observed))
        # Unexplored siblings: at each depth at or beyond this prefix,
        # every runnable tid greater than the chosen one starts a branch
        # nobody has visited yet.  Push shallow-first so the DFS pops the
        # deepest branch next (keeps the stack small).
        for depth in range(len(prefix), len(sched.choices)):
            chosen = sched.choices[depth]
            for alt in sched.runnable_sets[depth]:
                if alt > chosen:
                    stack.append(sched.choices[:depth] + [alt])
    return Exploration(outcomes=outcomes, complete=complete)
