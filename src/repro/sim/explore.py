"""Exhaustive (bounded) schedule exploration — a tiny model checker.

Enumerates *every* interleaving of a small simulated program by DFS over
scheduling choices.  Two execution modes share one DFS loop:

* **stateless** (default, the seed behaviour): each schedule re-executes
  from step 0 with a forced choice prefix — the kernel is deterministic
  given the choices, so replay is exact but costs O(total steps) per
  schedule;
* **snapshots** (``snapshots=True``): schedules resume from
  copy-on-branch process forks parked at the deepest shared prefix
  (:mod:`repro.sim.snapshot`), costing O(suffix steps) per schedule.
  The two modes enumerate the identical outcomes in the identical
  order by construction — both drive the same DFS over the same
  per-run :class:`~repro.sim.snapshot.RunRecord` data — and
  ``tests/sim/test_snapshot_explore.py`` asserts it differentially
  across every registered app.

In the paper's terms this is the CHESS-style systematic baseline
[25, 26]: it proves a Heisenbug's schedule *exists* and measures how
rare it is — `found in 3 of 1 026 interleavings` — which is precisely
why stumbling on it randomly is hopeless and a concurrent breakpoint is
worth inserting.

Use :func:`explore` on programs with a few dozen scheduling points; the
schedule tree is exponential, so ``max_schedules`` caps the walk (the
``complete`` flag says whether the cap hit).
"""

from __future__ import annotations

import bisect
import dataclasses
import math
import multiprocessing
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from .kernel import Kernel, RunResult
from .snapshot import Bound, PoolStats, _DFSScheduler, count_preemptions, make_pool

__all__ = [
    "Bound",
    "Outcome",
    "Exploration",
    "count_preemptions",
    "explore",
    "explore_sharded",
    "merge_shards",
]


@dataclasses.dataclass
class Outcome:
    """One fully-executed schedule."""

    choices: Tuple[int, ...]
    result: RunResult
    #: Snapshot taken by ``explore``'s ``observe`` hook after the run
    #: (final shared state, oracle verdicts, ...); None if no hook.
    observed: object = None
    #: Probability a uniform random scheduler would walk exactly this
    #: schedule: the product of ``1/len(runnable)`` over every
    #: scheduling point (see :meth:`Exploration.probability`).
    weight: float = 1.0
    #: Preemptive context switches this schedule performed (see
    #: :func:`repro.sim.snapshot.count_preemptions`).
    preemptions: int = 0


@dataclasses.dataclass
class Exploration:
    """The set of explored schedules."""

    outcomes: List[Outcome]
    complete: bool  # False iff max_schedules stopped the walk
    #: Branches cut by the preemption bound (0 when unbounded).
    preemption_cuts: int = 0
    #: Branches cut by the variable bound (0 when unbounded).
    variable_cuts: int = 0

    @property
    def count(self) -> int:
        """Number of explored schedules."""
        return len(self.outcomes)

    def matching(self, pred: Callable[[Outcome], bool]) -> List[Outcome]:
        """Outcomes whose observation satisfies ``pred``."""
        return [o for o in self.outcomes if pred(o)]

    def probability(self, pred: Callable[[Outcome], bool], weighted: bool = False) -> float:
        """Fraction of explored schedules satisfying ``pred``.

        With ``weighted=False`` each *leaf schedule* counts equally; the
        answer is "how many of the possible interleavings are buggy".
        That is not the distribution a uniform random scheduler induces:
        a leaf behind ten binary choices is walked with probability
        2**-10, not 1/count.

        With ``weighted=True`` each schedule counts by its branch-choice
        probability — the product of ``1/len(runnable)`` at every
        scheduling point, normalised over the explored set — so on a
        complete exploration the answer matches the hit probability a
        uniform :class:`~repro.sim.scheduler.RandomScheduler` (without
        delay noise) would observe.  On a capped exploration it is the
        probability conditioned on landing in the explored subset.
        """
        if not self.outcomes:
            return 0.0
        if not weighted:
            return len(self.matching(pred)) / len(self.outcomes)
        total = sum(o.weight for o in self.outcomes)
        if total <= 0.0:
            return 0.0
        return sum(o.weight for o in self.outcomes if pred(o)) / total

    def witnesses(self, pred: Callable[[Outcome], bool], limit: int = 3) -> List[Tuple[int, ...]]:
        """Choice lists (replayable schedules) of up to ``limit`` matches."""
        return [o.choices for o in self.matching(pred)[:limit]]


def _schedule_weight(runnable_sets: Sequence[Tuple[int, ...]]) -> float:
    """Probability of this exact schedule under uniform random choice."""
    w = 1.0
    for tids in runnable_sets:
        n = len(tids)
        if n > 1:
            w /= n
    return w


# ---------------------------------------------------------------------------
# Bounded search: cut-strategy helpers shared by explore() and the DPOR loop
# ---------------------------------------------------------------------------


def _preemption_prefix_counts(
    choices: Sequence[int], runnable_sets: Sequence[Tuple[int, ...]]
) -> List[int]:
    """``out[d]`` = preemptive switches within ``choices[:d]`` (so
    ``out[len(choices)] == count_preemptions(...)``)."""
    out = [0] * (len(choices) + 1)
    acc = 0
    for d in range(1, len(choices) + 1):
        prev = choices[d - 1 - 1] if d >= 2 else None
        if d >= 2 and choices[d - 1] != prev and prev in runnable_sets[d - 1]:
            acc += 1
        out[d] = acc
    return out


def _var_key(obj: Any) -> str:
    """Process-portable identity of a shared object for variable
    bounding: ``Type:name``.  Every sim primitive carries a stable
    ``name`` (auto-assigned in creation order), so the key set is
    deterministic across process restarts — unlike ``id()``."""
    return f"{type(obj).__name__}:{getattr(obj, 'name', '')}"


def _name_footprints(trace: Sequence[Any], n_choices: int) -> List[FrozenSet[str]]:
    """Per-scheduling-point sets of shared-object keys touched by the
    chosen transition.  Tolerates every op (including timed SLEEPs,
    which carry no object) since plain ``explore`` accepts timed apps."""
    foot: List[set] = [set() for _ in range(n_choices)]
    for ev in trace:
        idx = ev.step - 1
        if 0 <= idx < n_choices and ev.obj is not None:
            foot[idx].add(_var_key(ev.obj))
    return [frozenset(s) for s in foot]


def _var_footprint_extras(kernel: Kernel, sched: _DFSScheduler) -> dict:
    """Pool postprocess hook: name-keyed footprints for variable
    bounding (computed in-process — the trace holds live objects)."""
    return {"vfoot": _name_footprints(kernel.trace, len(sched.choices))}


def _variable_charges(
    choices: Sequence[int],
    runnable_sets: Sequence[Tuple[int, ...]],
    vfoot: Sequence[FrozenSet[str]],
) -> Tuple[List[FrozenSet[str]], List[FrozenSet[str]]]:
    """Charge preemptions to the variables of the preempted transition.

    Returns ``(charged, extra)``: ``charged[d]`` is the union of keys
    charged by preemptions within ``choices[:d]``; ``extra[d]`` is the
    charge a preemption *at* depth ``d`` would add — the pending
    transition of ``choices[d-1]`` (its next occurrence at or after
    ``d``), empty when unknowable (the thread never runs again in this
    schedule — conservative: uncharged).
    """
    n = len(choices)
    occ: Dict[int, List[int]] = {}
    for d, t in enumerate(choices):
        occ.setdefault(t, []).append(d)

    def pending_vars(t: int, d: int) -> FrozenSet[str]:
        lst = occ.get(t)
        if not lst:
            return frozenset()
        k = bisect.bisect_left(lst, d)
        return vfoot[lst[k]] if k < len(lst) else frozenset()

    charged: List[FrozenSet[str]] = [frozenset()] * (n + 1)
    extra: List[FrozenSet[str]] = [frozenset()] * n
    cur: FrozenSet[str] = frozenset()
    for d in range(n):
        charged[d] = cur
        if d >= 1 and choices[d - 1] in runnable_sets[d]:
            ch = pending_vars(choices[d - 1], d)
            extra[d] = ch
            if choices[d] != choices[d - 1]:
                cur = cur | ch
    charged[n] = cur
    return charged, extra


def _cut_verdict(
    bound: Bound,
    cum_p: Sequence[int],
    charges: Optional[Tuple[List[FrozenSet[str]], List[FrozenSet[str]]]],
    choices: Sequence[int],
    runnable_sets: Sequence[Tuple[int, ...]],
    depth: int,
    alt: int,
) -> Optional[str]:
    """Would branching to ``alt`` at ``depth`` exceed the budget?

    Returns ``"p"`` (preemption bound), ``"v"`` (variable bound) or
    None.  All arrays describe the *current* run, which is valid because
    the branch shares its first ``depth`` choices with it.
    """
    preempt = (
        depth >= 1
        and alt != choices[depth - 1]
        and choices[depth - 1] in runnable_sets[depth]
    )
    if bound.preemptions is not None:
        if cum_p[depth] + (1 if preempt else 0) > bound.preemptions:
            return "p"
    if bound.variables is not None and charges is not None:
        charged, extra = charges
        c = charged[depth]
        if preempt:
            c = c | extra[depth]
        if len(c) > bound.variables:
            return "v"
    return None


def _flush_explore_obs(obs: Any, stats: PoolStats, extra: Optional[Dict[str, int]] = None) -> None:
    """Fold executor counters into an ``ObsContext`` metrics registry
    (``explore.*`` namespace; zero counts are skipped like the kernel's
    own flush does)."""
    if obs is None:
        return
    counts = {
        "explore.schedules": stats.runs,
        "explore.steps_executed": stats.executed_steps,
        "explore.replayed_choices": stats.replayed_choices,
        "explore.snapshot.parks": stats.parks,
        "explore.snapshot.restores": stats.restores,
        "explore.snapshot.fallback_runs": stats.fallback_runs,
    }
    if extra:
        counts.update(extra)
    obs.metrics.add_counters({k: v for k, v in counts.items() if v})


def explore(
    build: Callable[[Kernel], None],
    max_schedules: int = 10_000,
    max_steps: int = 20_000,
    seed: int = 0,
    observe: Optional[Callable[[Kernel], object]] = None,
    prefix: Sequence[int] = (),
    snapshots: bool = False,
    max_time: float = math.inf,
    obs: Any = None,
    bound: Optional[Bound] = None,
) -> Exploration:
    """Enumerate the program's schedule tree by DFS.

    ``build`` must be deterministic apart from scheduling (it receives a
    fresh, fixed-seed kernel per run).  Each scheduling point with ``k``
    runnable threads branches ``k`` ways; the walk visits every leaf once
    until ``max_schedules`` is exhausted.  ``observe(kernel)`` runs after
    each schedule and its value is stored on the outcome — use it to
    snapshot final shared state before the next run rebuilds everything.

    ``prefix`` restricts the walk to the subtree under a forced choice
    prefix: only alternatives at depth >= ``len(prefix)`` are branched.
    This is the sharding primitive of :func:`explore_sharded` — subtrees
    of distinct same-length prefixes are disjoint by construction.

    ``snapshots=True`` executes schedules on the copy-on-branch fork
    pool (:mod:`repro.sim.snapshot`): runs resume from the deepest
    parked snapshot instead of replaying the shared prefix.  Outcomes
    are identical to stateless mode except that process-local result
    fields (live thread objects, the deadlock exception instance) are
    stripped exactly as :func:`explore_sharded` strips them, and
    ``build``/``observe`` execute in forked children — side effects on
    parent state do not propagate, only ``observe``'s (picklable)
    return value does.  Falls back to stateless execution when ``fork``
    is unavailable.

    ``obs`` (an :class:`repro.obs.ObsContext`) collects ``explore.*``
    counters: schedules, steps executed, snapshot parks/restores.

    ``bound`` applies the composable cut strategies of :class:`Bound`:
    branches whose schedule would exceed the preemption or variable
    budget are cut (counted in ``Exploration.preemption_cuts`` /
    ``variable_cuts``) and the free descent beyond a forced prefix
    never preempts past the budget.  A large-enough bound explores the
    bit-identical outcome set in the identical order as ``bound=None``.
    """
    if bound is not None and not bound.active:
        bound = None
    want_vars = bound is not None and bound.variables is not None
    pool = make_pool(
        build,
        snapshots=snapshots,
        seed=seed,
        max_steps=max_steps,
        max_time=max_time,
        observe=observe,
        bound=bound,
        record_trace=want_vars,
        postprocess=_var_footprint_extras if want_vars else None,
    )
    pcuts = vcuts = 0
    try:
        outcomes: List[Outcome] = []
        stack: List[List[int]] = [list(prefix)]
        complete = True
        while stack:
            if len(outcomes) >= max_schedules:
                complete = False
                break
            prefix = stack.pop()
            rec = pool.run(prefix)
            result = rec.result
            if want_vars and result.trace is not None:
                # The trace exists only to compute variable footprints;
                # strip it so bounded output matches unbounded exactly.
                result = dataclasses.replace(result, trace=None)
            outcomes.append(
                Outcome(
                    rec.choices,
                    result,
                    rec.observed,
                    _schedule_weight(rec.runnable_sets),
                    rec.preemptions,
                )
            )
            # Unexplored siblings: at each depth at or beyond this
            # prefix, every runnable tid other than the chosen one
            # starts a branch nobody has visited yet (unbounded descent
            # always picks the minimum, so "other than" reduces to
            # "greater than" there).  Push shallow-first so the DFS
            # pops the deepest branch next (keeps the stack small — and
            # keeps the pop adjacent to the deepest parked snapshots in
            # fork mode).
            if bound is None:
                for depth in range(len(prefix), len(rec.choices)):
                    chosen = rec.choices[depth]
                    for alt in rec.runnable_sets[depth]:
                        if alt > chosen:
                            stack.append(list(rec.choices[:depth]) + [alt])
            else:
                cum_p = _preemption_prefix_counts(rec.choices, rec.runnable_sets)
                charges = (
                    _variable_charges(
                        rec.choices, rec.runnable_sets, rec.extras["vfoot"]
                    )
                    if want_vars
                    else None
                )
                for depth in range(len(prefix), len(rec.choices)):
                    chosen = rec.choices[depth]
                    for alt in rec.runnable_sets[depth]:
                        if alt == chosen:
                            continue
                        verdict = _cut_verdict(
                            bound,
                            cum_p,
                            charges,
                            rec.choices,
                            rec.runnable_sets,
                            depth,
                            alt,
                        )
                        if verdict == "p":
                            pcuts += 1
                        elif verdict == "v":
                            vcuts += 1
                        else:
                            stack.append(list(rec.choices[:depth]) + [alt])
        return Exploration(
            outcomes=outcomes,
            complete=complete,
            preemption_cuts=pcuts,
            variable_cuts=vcuts,
        )
    finally:
        pool.close()
        _flush_explore_obs(
            obs,
            pool.stats,
            {"explore.preemption_cuts": pcuts, "explore.variable_cuts": vcuts},
        )


# ---------------------------------------------------------------------------
# Parallel exploration: disjoint prefix shards + deduplicated merge
# ---------------------------------------------------------------------------


def _sanitize_outcome(outcome: Outcome) -> Outcome:
    """Make an outcome process-portable and worker-count independent.

    ``RunResult.threads`` holds live generators (unpicklable) and
    ``deadlock`` an exception whose custom constructor breaks pickle
    round-trips; both are stripped.  Everything tests and analyses key on
    (choices, scalar result fields, trace, breakpoint stats, observed
    snapshot) survives intact.  Serial and process shard execution both
    go through this, so ``explore_sharded`` output does not depend on the
    worker count.
    """
    res = outcome.result
    if res.threads or res.deadlock is not None:
        res = dataclasses.replace(res, threads=[], deadlock=None)
    return Outcome(
        outcome.choices, res, outcome.observed, outcome.weight, outcome.preemptions
    )


def merge_shards(shards: Sequence[Exploration]) -> Exploration:
    """Combine per-shard explorations into one canonical result.

    Enforces the sharding contract in code: a schedule (choice tuple)
    appearing in more than one shard means the shards were not disjoint —
    the merge raises rather than silently double-counting, because every
    probability computed from the exploration divides by the outcome
    count.  Outcomes are ordered lexicographically by choice tuple, a
    canonical order independent of shard completion order.
    """
    seen = set()
    merged: List[Outcome] = []
    for shard in shards:
        for outcome in shard.outcomes:
            if outcome.choices in seen:
                raise ValueError(
                    f"duplicate schedule across shards: {outcome.choices}"
                )
            seen.add(outcome.choices)
            merged.append(outcome)
    merged.sort(key=lambda o: o.choices)
    return Exploration(
        outcomes=merged,
        complete=all(s.complete for s in shards),
        preemption_cuts=sum(s.preemption_cuts for s in shards),
        variable_cuts=sum(s.variable_cuts for s in shards),
    )


def _frontier(
    build: Callable[[Kernel], None],
    shard_depth: int,
    max_steps: int,
    seed: int,
    observe: Optional[Callable[[Kernel], object]],
    bound: Optional[Bound] = None,
) -> Tuple[List[List[int]], List[Outcome], Tuple[int, int]]:
    """Enumerate all choice prefixes of length ``shard_depth``.

    Runs that terminate before making ``shard_depth`` choices are
    single-leaf subtrees: they are returned as finished outcomes rather
    than shards (a shard DFS would just re-run them).

    Because the frontier branches at *every* runnable tid above the
    shard depth, it is exhaustive there — which is also what makes
    restricting per-shard DPOR backtracking to depths >= ``shard_depth``
    sound in :func:`repro.sim.dpor.explore_dpor_sharded`.

    With a ``bound``, over-budget prefix expansions are cut exactly like
    :func:`explore` cuts branches (the descent-chosen continuation is
    always kept); returns the ``(preemption_cuts, variable_cuts)`` pair
    as the third element.
    """
    if bound is not None and not bound.active:
        bound = None
    want_vars = bound is not None and bound.variables is not None
    prefixes: List[List[int]] = [[]]
    direct: List[Outcome] = []
    pcuts = vcuts = 0
    for _ in range(shard_depth):
        nxt: List[List[int]] = []
        for p in prefixes:
            sched = _DFSScheduler(p, bound=bound)
            kernel = Kernel(scheduler=sched, seed=seed, record_trace=want_vars)
            build(kernel)
            result = kernel.run(max_steps=max_steps)
            if len(sched.choices) <= len(p):
                observed = observe(kernel) if observe is not None else None
                if want_vars and result.trace is not None:
                    result = dataclasses.replace(result, trace=None)
                direct.append(
                    Outcome(
                        tuple(sched.choices),
                        result,
                        observed,
                        _schedule_weight(sched.runnable_sets),
                        sched.preemptions,
                    )
                )
            elif bound is None:
                for tid in sched.runnable_sets[len(p)]:
                    nxt.append(p + [tid])
            else:
                depth = len(p)
                chosen = sched.choices[depth]
                cum_p = _preemption_prefix_counts(sched.choices, sched.runnable_sets)
                charges = (
                    _variable_charges(
                        sched.choices,
                        sched.runnable_sets,
                        _name_footprints(kernel.trace, len(sched.choices)),
                    )
                    if want_vars
                    else None
                )
                for tid in sched.runnable_sets[depth]:
                    if tid == chosen:
                        nxt.append(p + [tid])
                        continue
                    verdict = _cut_verdict(
                        bound,
                        cum_p,
                        charges,
                        sched.choices,
                        sched.runnable_sets,
                        depth,
                        tid,
                    )
                    if verdict == "p":
                        pcuts += 1
                    elif verdict == "v":
                        vcuts += 1
                    else:
                        nxt.append(p + [tid])
        prefixes = nxt
        if not prefixes:
            break
    return prefixes, direct, (pcuts, vcuts)


def _fan_worker(conn, task, assigned, fault_hook, wid):
    """Run assigned (idx, item) tasks in a forked child; stream results."""
    try:
        for idx, item in assigned:
            if fault_hook is not None:
                fault_hook(wid, idx)
            conn.send((idx, task(idx, item)))
        conn.send(None)  # all assigned items done
    except Exception:
        pass  # parent recomputes missing items serially
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _fan_out(
    task: Callable[[int, Any], Any],
    items: Sequence[Any],
    workers: Optional[int],
    fault_hook: Optional[Callable[[int, int], None]] = None,
) -> Dict[int, Any]:
    """Compute ``task(idx, item)`` for every item, across forked workers
    when possible.

    The fault-tolerance contract mirrors ``harness/parallel.py``: a
    worker that dies (or raises) simply leaves its unfinished items
    unreported, and the parent recomputes exactly those serially —
    results are a function of ``(task, items)`` alone, never of worker
    count or timing.  ``fault_hook(worker_id, item_idx)`` is called in
    the worker before each item (crash-injection point for tests).
    """
    results: Dict[int, Any] = {}
    use_processes = (
        workers is not None
        and workers > 1
        and len(items) > 1
        and "fork" in multiprocessing.get_all_start_methods()
    )
    if use_processes:
        ctx = multiprocessing.get_context("fork")
        n_workers = min(workers, len(items))
        assignments: List[List[Tuple[int, Any]]] = [[] for _ in range(n_workers)]
        for idx, item in enumerate(items):
            assignments[idx % n_workers].append((idx, item))
        procs = []
        for wid, assigned in enumerate(assignments):
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_fan_worker,
                args=(child_conn, task, assigned, fault_hook, wid),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            procs.append((proc, parent_conn))
        for proc, conn in procs:
            try:
                while True:
                    msg = conn.recv()
                    if msg is None:
                        break
                    idx, payload = msg
                    results[idx] = payload
            except (EOFError, OSError):
                pass  # crashed worker; its items fall through to serial
            finally:
                proc.join()
                conn.close()
    for idx, item in enumerate(items):
        if idx not in results:
            results[idx] = task(idx, item)
    return results


def explore_sharded(
    build: Callable[[Kernel], None],
    max_schedules: int = 10_000,
    max_steps: int = 20_000,
    seed: int = 0,
    observe: Optional[Callable[[Kernel], object]] = None,
    workers: Optional[int] = None,
    shard_depth: int = 2,
    bound: Optional[Bound] = None,
) -> Exploration:
    """Schedule-tree enumeration over disjoint prefix shards.

    The tree is split at depth ``shard_depth`` into one shard per
    surviving prefix; each shard is a completely independent stateless
    DFS (disjoint by construction, enforced at merge time by
    :func:`merge_shards`).  With ``workers > 1`` and a ``fork`` start
    method available the shards run across worker processes — ``build``
    and ``observe`` may be ordinary closures because fork inherits them;
    per-outcome data returned across the process boundary must be
    picklable.  A worker that dies simply causes its unfinished shards to
    be re-explored serially in the parent: the walk degrades, it does not
    abort.

    ``max_schedules`` bounds each shard's walk (a capped exploration may
    therefore visit a different subset of leaves than capped serial
    :func:`explore`; uncapped results cover the identical full set).
    Outcomes are returned in lexicographic choice order, a canonical
    order independent of worker count and timing.
    """
    shards, direct, (front_p, front_v) = _frontier(
        build, shard_depth, max_steps, seed, observe, bound
    )
    direct = [_sanitize_outcome(o) for o in direct]

    def task(idx: int, prefix: List[int]) -> Exploration:
        ex = explore(
            build,
            max_schedules=max_schedules,
            max_steps=max_steps,
            seed=seed,
            observe=observe,
            prefix=prefix,
            bound=bound,
        )
        return Exploration(
            outcomes=[_sanitize_outcome(o) for o in ex.outcomes],
            complete=ex.complete,
            preemption_cuts=ex.preemption_cuts,
            variable_cuts=ex.variable_cuts,
        )

    results = _fan_out(task, shards, workers)
    shard_results = [results[i] for i in range(len(shards))]
    shard_results.append(Exploration(outcomes=direct, complete=True))
    merged = merge_shards(shard_results)
    merged.preemption_cuts += front_p
    merged.variable_cuts += front_v
    return merged
