"""Simulated threads.

A :class:`SimThread` wraps a generator produced by the thread's body
function.  The kernel drives the generator one syscall at a time; between
syscalls the thread owns the (single real) CPU, so Python code between
yields is atomic — the interleaving of *syscalls* is what the scheduler
controls.

Source locations: the kernel reports each event at the innermost active
``yield`` — found by walking the ``gi_yieldfrom`` chain — so nested helper
functions (``yield from lock.acquire()``) attribute events to the
application call site of the primitive's own frame, whichever is tagged.
"""

from __future__ import annotations

import enum
from types import GeneratorType as _GEN_TYPE
from typing import Any, Generator, List, Optional

__all__ = ["TState", "SimThread", "current_location"]


class TState(enum.Enum):
    """Lifecycle of a simulated thread."""

    NEW = "new"
    RUNNABLE = "runnable"
    BLOCKED = "blocked"  # on a lock/cond/sem/barrier/event/join/trigger
    SLEEPING = "sleeping"  # pure timed wait
    ORDER_WAIT = "order_wait"  # matched breakpoint, waiting for partner's step
    DONE = "done"
    FAILED = "failed"


#: ``(code object, line) -> "file:line"`` — the set of suspension points
#: in a program is small and static, so the formatted labels are shared.
_LOC_CACHE: dict = {}


def current_location(gen: Generator) -> str:
    """``file:line`` of the innermost suspended frame of ``gen``.

    Walks the ``yield from`` delegation chain so that a syscall yielded
    inside ``SimLock.acquire`` is attributed to that helper's frame; the
    benchmarks tag paper-style locations explicitly where it matters.

    Called once per traced event, so the walk uses direct slot loads
    (real generators only) and the formatted label is cached.
    """
    try:
        g = gen
        while True:
            sub = g.gi_yieldfrom
            if sub is None or type(sub) is not _GEN_TYPE:
                break
            g = sub
        frame = g.gi_frame
    except AttributeError:
        return "?"
    if frame is None:
        return "?"
    key = (frame.f_code, frame.f_lineno)
    loc = _LOC_CACHE.get(key)
    if loc is None:
        fname = frame.f_code.co_filename.rsplit("/", 1)[-1]
        loc = _LOC_CACHE[key] = f"{fname}:{frame.f_lineno}"
    return loc


class SimThread:
    """One simulated thread: generator + scheduling state.

    Attributes of note:

    ``held_locks``
        Stack of currently held :class:`SimLock` objects (innermost
        last), used by the ``isLockTypeHeld`` predicate refinement and
        the deadlock reporter.
    ``wake_epoch``
        Incremented every time the thread blocks; pending virtual timers
        carry the epoch they were armed in, so a timer whose epoch is
        stale (the thread was woken by another path) is ignored.
    ``pending``
        The value to ``send`` into the generator at its next step
        (syscall result), or the exception to ``throw``.
    """

    __slots__ = (
        "tid",
        "name",
        "gen",
        "state",
        "pending",
        "pending_exc",
        "result",
        "exc",
        "held_locks",
        "waiting_on",
        "wake_epoch",
        "joiners",
        "priority",
        "steps",
        "spawn_time",
        "finish_time",
        "order_waiters",
        "daemon",
    )

    def __init__(self, tid: int, name: str, gen: Generator, daemon: bool = False) -> None:
        self.tid = tid
        self.name = name
        self.gen = gen
        self.state = TState.NEW
        self.pending: Any = None
        self.pending_exc: Optional[BaseException] = None
        self.result: Any = None
        self.exc: Optional[BaseException] = None
        self.held_locks: List[Any] = []
        self.waiting_on: Any = None
        self.wake_epoch = 0
        self.joiners: List["SimThread"] = []
        self.priority = 0  # used by priority-based schedulers (PCT)
        self.steps = 0
        self.spawn_time = 0.0
        self.finish_time: Optional[float] = None
        self.order_waiters: List["SimThread"] = []
        self.daemon = daemon

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Not yet finished or failed."""
        return self.state not in (TState.DONE, TState.FAILED)

    @property
    def blocked(self) -> bool:
        """Waiting on a primitive, a sleep, or a release order."""
        return self.state in (TState.BLOCKED, TState.SLEEPING, TState.ORDER_WAIT)

    def location(self) -> str:
        """Current source-location label of the generator."""
        return current_location(self.gen)

    def describe_block(self) -> str:
        """Human-readable description of what this thread is blocked on."""
        if not self.blocked:
            return "not blocked"
        target = self.waiting_on
        tname = getattr(target, "name", None) or type(target).__name__
        return f"{type(target).__name__}({tname}) at {self.location()}"

    def __repr__(self) -> str:
        return f"SimThread({self.tid}, {self.name!r}, {self.state.value})"
