"""Execution traces: the raw material for the dynamic detectors.

The kernel (optionally) records an :class:`Event` per syscall effect.
Detectors in :mod:`repro.detect` are pure trace analyzers — Eraser-style
locksets, vector-clock happens-before, lock-order graphs, contention and
atomicity checks all consume this one format, mirroring how the paper's
Methodology I/II leans on CalFuzzer/Eraser reports computed from dynamic
observation.

Events use ``__slots__`` and interned op-code strings: large runs generate
hundreds of thousands of events, and the HPC guides' advice (measure,
avoid gratuitous allocation) applies directly — trace recording is the
kernel's main overhead and is off by default.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional

__all__ = ["Event", "Trace", "OP"]


class OP:
    """Interned event op-codes."""

    START = "start"
    END = "end"
    FAIL = "fail"
    FORK = "fork"
    JOIN = "join"
    JOINED = "joined"  # join completed: happens-before edge from target END
    ACQUIRE_REQ = "acquire_req"
    ACQUIRE = "acquire"
    RELEASE = "release"
    WAIT_ENTER = "wait_enter"
    WAIT_EXIT = "wait_exit"
    NOTIFY = "notify"
    READ = "read"
    WRITE = "write"
    SEM_P = "sem_p"
    SEM_V = "sem_v"
    BARRIER = "barrier"
    EVENT_WAIT = "event_wait"
    EVENT_SET = "event_set"
    SLEEP = "sleep"
    ATOMIC_BEGIN = "atomic_begin"
    ATOMIC_END = "atomic_end"
    ANNOTATE = "annotate"
    TRIGGER_VISIT = "trigger_visit"
    TRIGGER_POSTPONE = "trigger_postpone"
    TRIGGER_HIT = "trigger_hit"
    TRIGGER_TIMEOUT = "trigger_timeout"


class Event:
    """One observed operation.

    ``obj`` is the synchronisation object / memory cell involved (or
    ``None``); ``loc`` is a ``file:line`` string — the explicit ``loc``
    tag of the syscall when present, otherwise derived from the
    generator frame.  ``extra`` carries op-specific payload (written
    value, notify count, breakpoint name, ...).
    """

    __slots__ = ("seq", "time", "tid", "tname", "op", "obj", "loc", "extra", "step")

    def __init__(
        self,
        seq: int,
        time: float,
        tid: int,
        tname: str,
        op: str,
        obj: Any = None,
        loc: str = "?",
        extra: Any = None,
        step: int = -1,
    ) -> None:
        self.seq = seq
        self.time = time
        self.tid = tid
        self.tname = tname
        self.op = op
        self.obj = obj
        self.loc = loc
        self.extra = extra
        #: Kernel scheduling step that produced the event (-1 if unknown):
        #: the key for mapping events back onto scheduler choices (DPOR).
        self.step = step

    def __repr__(self) -> str:
        objname = getattr(self.obj, "name", self.obj)
        return (
            f"Event({self.seq}, t={self.time:.6f}, {self.tname}, {self.op},"
            f" obj={objname!r}, loc={self.loc})"
        )


class Trace:
    """An append-only sequence of :class:`Event` with small query helpers."""

    def __init__(self) -> None:
        self.events: List[Event] = []
        self._seq = 0

    def record(
        self,
        time: float,
        tid: int,
        tname: str,
        op: str,
        obj: Any = None,
        loc: str = "?",
        extra: Any = None,
        step: int = -1,
    ) -> Event:
        """Append one event (subject to the enabled filter)."""
        ev = Event(self._seq, time, tid, tname, op, obj, loc, extra, step)
        self._seq += 1
        self.events.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def by_op(self, *ops: str) -> List[Event]:
        """Events whose op-code is one of ``ops`` (preserves order)."""
        wanted = set(ops)
        return [e for e in self.events if e.op in wanted]

    def by_thread(self, tname: str) -> List[Event]:
        """Events of one thread, in order."""
        return [e for e in self.events if e.tname == tname]

    def by_obj(self, obj: Any) -> List[Event]:
        """Events touching one object, in order."""
        return [e for e in self.events if e.obj is obj]

    def annotations(self, kind: Optional[str] = None) -> List[Event]:
        """Annotation events, optionally of one kind."""
        evs = self.by_op(OP.ANNOTATE)
        if kind is None:
            return evs
        return [e for e in evs if e.extra and e.extra.get("kind") == kind]

    def format(self, limit: Optional[int] = None) -> str:
        """Human-readable dump (first ``limit`` events)."""
        rows = self.events if limit is None else self.events[:limit]
        return "\n".join(repr(e) for e in rows)
