"""Execution traces: the raw material for the dynamic detectors.

The kernel (optionally) records an :class:`Event` per syscall effect.
Detectors in :mod:`repro.detect` are pure trace analyzers — Eraser-style
locksets, vector-clock happens-before, lock-order graphs, contention and
atomicity checks all consume this one format, mirroring how the paper's
Methodology I/II leans on CalFuzzer/Eraser reports computed from dynamic
observation.

Storage is a *flat slot buffer*, not a list of objects: large runs
generate hundreds of thousands of events, and allocating an ``Event``
per record made trace append the dominant cost of traced runs.
:meth:`Trace.append` extends a flat Python list by the event's eight
fields in one C-level operation at a fixed stride — amortized O(1) via
the list's own geometric over-allocation — and defers :class:`Event`
construction until somebody actually iterates the trace: the kernel's
hot loop never pays for objects the detectors may never ask for.
``seq`` is implicit (the slot index), so nothing is stored for it.
Materialized views are cached keyed on length, so the usual
record-everything-then-analyze flow materializes exactly once.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional

__all__ = ["Event", "Trace", "OP", "trace_fingerprint"]


class OP:
    """Interned event op-codes."""

    START = "start"
    END = "end"
    FAIL = "fail"
    FORK = "fork"
    JOIN = "join"
    JOINED = "joined"  # join completed: happens-before edge from target END
    ACQUIRE_REQ = "acquire_req"
    ACQUIRE = "acquire"
    RELEASE = "release"
    WAIT_ENTER = "wait_enter"
    WAIT_EXIT = "wait_exit"
    NOTIFY = "notify"
    READ = "read"
    WRITE = "write"
    SEM_P = "sem_p"
    SEM_V = "sem_v"
    BARRIER = "barrier"
    EVENT_WAIT = "event_wait"
    EVENT_SET = "event_set"
    SLEEP = "sleep"
    ATOMIC_BEGIN = "atomic_begin"
    ATOMIC_END = "atomic_end"
    ANNOTATE = "annotate"
    TRIGGER_VISIT = "trigger_visit"
    TRIGGER_POSTPONE = "trigger_postpone"
    TRIGGER_HIT = "trigger_hit"
    TRIGGER_TIMEOUT = "trigger_timeout"


class Event:
    """One observed operation.

    ``obj`` is the synchronisation object / memory cell involved (or
    ``None``); ``loc`` is a ``file:line`` string — the explicit ``loc``
    tag of the syscall when present, otherwise derived from the
    generator frame.  ``extra`` carries op-specific payload (written
    value, notify count, breakpoint name, ...).
    """

    __slots__ = ("seq", "time", "tid", "tname", "op", "obj", "loc", "extra", "step")

    def __init__(
        self,
        seq: int,
        time: float,
        tid: int,
        tname: str,
        op: str,
        obj: Any = None,
        loc: str = "?",
        extra: Any = None,
        step: int = -1,
    ) -> None:
        self.seq = seq
        self.time = time
        self.tid = tid
        self.tname = tname
        self.op = op
        self.obj = obj
        self.loc = loc
        self.extra = extra
        #: Kernel scheduling step that produced the event (-1 if unknown):
        #: the key for mapping events back onto scheduler choices (DPOR).
        self.step = step

    def __repr__(self) -> str:
        objname = getattr(self.obj, "name", self.obj)
        return (
            f"Event({self.seq}, t={self.time:.6f}, {self.tname}, {self.op},"
            f" obj={objname!r}, loc={self.loc})"
        )


#: Fields per event slot: time, tid, tname, op, obj, loc, extra, step.
_STRIDE = 8


class Trace:
    """An append-only sequence of :class:`Event` with small query helpers.

    Internally a flat slot buffer (see module docstring).  ``events``
    materializes the :class:`Event` view lazily and caches it; the cache
    is keyed on length, so :meth:`append` never touches it.
    """

    __slots__ = ("_flat", "_len", "_view")

    def __init__(self) -> None:
        self._flat: List[Any] = []
        self._len = 0
        self._view: Optional[List[Event]] = None

    def append(
        self,
        time: float,
        tid: int,
        tname: str,
        op: str,
        obj: Any = None,
        loc: str = "?",
        extra: Any = None,
        step: int = -1,
    ) -> None:
        """Record one event: the kernel's O(1)-amortized hot path.

        A single C-level extend of the flat buffer — list over-allocation
        is the preallocation, so there is no Python-side capacity logic.
        """
        self._flat += (time, tid, tname, op, obj, loc, extra, step)
        self._len += 1

    def record(
        self,
        time: float,
        tid: int,
        tname: str,
        op: str,
        obj: Any = None,
        loc: str = "?",
        extra: Any = None,
        step: int = -1,
    ) -> Event:
        """Append one event and return its materialized view (compat
        API; the kernel uses :meth:`append` and skips the object)."""
        self.append(time, tid, tname, op, obj, loc, extra, step)
        return self._event(self._len - 1)

    def _event(self, seq: int) -> Event:
        i = seq * _STRIDE
        f = self._flat
        return Event(
            seq, f[i], f[i + 1], f[i + 2], f[i + 3], f[i + 4], f[i + 5], f[i + 6], f[i + 7]
        )

    @property
    def events(self) -> List[Event]:
        """Materialized event list (cached until the next append)."""
        view = self._view
        if view is None or len(view) != self._len:
            view = self._view = [self._event(s) for s in range(self._len)]
        return view

    @property
    def _seq(self) -> int:
        # Back-compat: the old eager Trace exposed a running sequence
        # counter; it is now just the length.
        return self._len

    def last_step(self) -> int:
        """``step`` of the most recent event (-1 when empty) — events
        arrive in nondecreasing step order, so this is the maximum."""
        if self._len == 0:
            return -1
        return self._flat[(self._len - 1) * _STRIDE + 7]

    def __len__(self) -> int:
        return self._len

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def by_op(self, *ops: str) -> List[Event]:
        """Events whose op-code is one of ``ops`` (preserves order)."""
        wanted = set(ops)
        return [e for e in self.events if e.op in wanted]

    def by_thread(self, tname: str) -> List[Event]:
        """Events of one thread, in order."""
        return [e for e in self.events if e.tname == tname]

    def by_obj(self, obj: Any) -> List[Event]:
        """Events touching one object, in order."""
        return [e for e in self.events if e.obj is obj]

    def annotations(self, kind: Optional[str] = None) -> List[Event]:
        """Annotation events, optionally of one kind."""
        evs = self.by_op(OP.ANNOTATE)
        if kind is None:
            return evs
        return [e for e in evs if e.extra and e.extra.get("kind") == kind]

    def format(self, limit: Optional[int] = None) -> str:
        """Human-readable dump (first ``limit`` events)."""
        rows = self.events if limit is None else self.events[:limit]
        return "\n".join(repr(e) for e in rows)


def trace_fingerprint(trace: Any) -> str:
    """Canonical SHA-256 of a trace's observable content.

    The encoding covers every field of every event.  ``obj`` is
    projected to ``(type name, .name)`` — identity is process-local and
    must not leak into the fingerprint — and floats are ``repr``-ed so
    the text is exact, not rounded.  Two runs fingerprint equal iff
    their traces are bit-identical under this projection; the golden
    corpus (``tests/sim/golden/``) pins these per app+seed.
    """
    import hashlib

    h = hashlib.sha256()
    for e in trace:
        obj = e.obj
        if obj is None:
            objkey = "-"
        else:
            objkey = f"{type(obj).__name__}:{getattr(obj, 'name', None)}"
        h.update(
            (
                f"{e.seq}|{e.time!r}|{e.tid}|{e.tname}|{e.op}|{objkey}|"
                f"{e.loc}|{e.extra!r}|{e.step}\n"
            ).encode()
        )
    return h.hexdigest()
