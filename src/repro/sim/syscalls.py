"""Syscalls: the instruction set of simulated threads.

A simulated thread is a Python generator that ``yield``\\ s syscall objects
to the kernel; the kernel performs the effect and resumes the generator
with the result (``gen.send(result)``).  Every yield is a scheduling
point, so the kernel's scheduler chooses the interleaving of syscalls —
this is the whole point: Heisenbug probability is a property of the
interleaving distribution, and the scheduler controls it.

Plain Python between two yields executes atomically; programs must place
their shared-state operations on syscalls (``Read``/``Write`` on
:class:`~repro.sim.memory.SharedCell`, ``Acquire``/``Release`` on
:class:`~repro.sim.primitives.SimLock`, ...) for interleavings — and hence
bugs — to be possible.  Helper methods on the primitive classes wrap these
so application code reads naturally::

    yield from lock.acquire()
    v = yield from cell.get()
    yield from cell.set(v + 1)
    yield from lock.release()

``loc`` tags: the kernel derives each event's source location from the
running generator frame, but benchmarks may also tag syscalls with a
paper-style location string (``"SocketClientFactory.java:872"``) so
detector reports match the paper's.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

__all__ = [
    "Syscall",
    "Acquire",
    "Release",
    "Wait",
    "Notify",
    "Sleep",
    "Read",
    "Write",
    "Yield",
    "Now",
    "Join",
    "AcquireSem",
    "ReleaseSem",
    "BarrierWait",
    "EventWait",
    "EventSet",
    "EventClear",
    "BeginAtomic",
    "EndAtomic",
    "Annotate",
    "Trigger",
]


@dataclasses.dataclass
class Syscall:
    """Base class; ``loc`` optionally overrides the derived source location."""

    loc: Optional[str] = dataclasses.field(default=None, kw_only=True)


@dataclasses.dataclass
class Acquire(Syscall):
    """Acquire a :class:`SimLock`; blocks until available (reentrant for RLocks)."""

    lock: Any = None


@dataclasses.dataclass
class Release(Syscall):
    """Release a held :class:`SimLock`."""

    lock: Any = None


@dataclasses.dataclass
class Wait(Syscall):
    """Wait on a :class:`SimCondition` (its lock must be held).

    Releases the lock, blocks until notified or ``timeout`` virtual
    seconds elapse, then reacquires the lock.  Result: ``True`` if
    notified, ``False`` on timeout — like ``threading.Condition.wait``.
    """

    cond: Any = None
    timeout: Optional[float] = None


@dataclasses.dataclass
class Notify(Syscall):
    """Notify ``n`` waiters of a condition (``n=None`` = notify_all).

    A notify with no waiters is a no-op — the semantics that make
    missed-notification bugs possible.
    """

    cond: Any = None
    n: Optional[int] = 1


@dataclasses.dataclass
class Sleep(Syscall):
    """Advance past ``duration`` virtual seconds (timed blocking)."""

    duration: float = 0.0


@dataclasses.dataclass
class Read(Syscall):
    """Read a :class:`SharedCell`; result is its value.  Emits a READ event."""

    cell: Any = None


@dataclasses.dataclass
class Write(Syscall):
    """Write a :class:`SharedCell`.  Emits a WRITE event."""

    cell: Any = None
    value: Any = None


@dataclasses.dataclass
class Yield(Syscall):
    """A pure scheduling point (models an instruction boundary)."""


@dataclasses.dataclass
class Now(Syscall):
    """Read the virtual clock: ``t = yield Now()``.

    A scheduling point like any other syscall — reading a clock in a
    real program is not atomic with what follows it.
    """


@dataclasses.dataclass
class Join(Syscall):
    """Block until another thread finishes.  Result ``True``; ``False`` on timeout."""

    thread: Any = None
    timeout: Optional[float] = None


@dataclasses.dataclass
class Interrupt(Syscall):
    """Deliver an exception into another thread (Java ``Thread.interrupt``).

    The target receives ``exc`` (default :class:`ThreadInterrupted`) at
    its *next scheduling point* — including while blocked on a lock,
    condition, sleep, or breakpoint pause, which are unwound first.
    Interrupting a finished thread is a no-op (result ``False``).
    """

    thread: Any = None
    exc: Any = None


@dataclasses.dataclass
class AcquireSem(Syscall):
    """P() on a :class:`SimSemaphore`."""

    sem: Any = None


@dataclasses.dataclass
class ReleaseSem(Syscall):
    """V() on a :class:`SimSemaphore`."""

    sem: Any = None


@dataclasses.dataclass
class BarrierWait(Syscall):
    """Wait at a :class:`SimBarrier`; result is the arrival index."""

    barrier: Any = None


@dataclasses.dataclass
class EventWait(Syscall):
    """Wait for a :class:`SimEvent` to be set; result ``True``/``False`` (timeout)."""

    event: Any = None
    timeout: Optional[float] = None


@dataclasses.dataclass
class EventSet(Syscall):
    """Set a :class:`SimEvent`, waking all waiters."""

    event: Any = None


@dataclasses.dataclass
class EventClear(Syscall):
    """Clear a :class:`SimEvent`."""

    event: Any = None


@dataclasses.dataclass
class BeginAtomic(Syscall):
    """Trace marker: entering a region the program intends to be atomic.

    Consumed by the atomicity-violation detector; no scheduling effect
    (the kernel does *not* make the region atomic — that would hide the
    bugs we are trying to reproduce).
    """

    label: str = ""


@dataclasses.dataclass
class EndAtomic(Syscall):
    """Trace marker: leaving an intended-atomic region."""

    label: str = ""


@dataclasses.dataclass
class Annotate(Syscall):
    """Free-form trace marker (bug oracles, experiment bookkeeping)."""

    kind: str = ""
    data: Any = None


@dataclasses.dataclass
class Trigger(Syscall):
    """Concurrent-breakpoint site: ``hit = yield Trigger(bt, is_first, timeout)``.

    The kernel routes this through the shared
    :class:`~repro.core.engine.BreakpointEngine`; on a match it enforces
    the first-before-second ordering exactly by pinning the first-action
    thread for its next step.
    """

    inst: Any = None
    is_first: bool = True
    timeout: float = 0.1
