"""Concurrent Breakpoints — a reproduction of Park & Sen (PPoPP 2012).

A *concurrent breakpoint* ``(l1, l2, phi)`` names two program locations
and a predicate over two threads' joint state; the **BTrigger** mechanism
makes executions hit it with high probability by pausing threads whose
local half of the predicate holds until a partner arrives, then ordering
the pair.  This turns Heisenbugs — data races, deadlocks, atomicity
violations, missed notifications — into nearly-deterministic, replayable
test cases.

Package map:

========================  ====================================================
:mod:`repro.core`         the breakpoint library (paper's contribution):
                          triggers, the BTrigger engine, precision policies,
                          an OS-``threading`` backend for real programs
:mod:`repro.sim`          deterministic concurrency simulation substrate:
                          generator threads, virtual time, seeded schedulers
:mod:`repro.detect`       dynamic analyses over traces (Eraser locksets,
                          vector-clock races, lock graphs, contention,
                          atomicity) — Methodology I/II inputs
:mod:`repro.activetest`   CalFuzzer-style predict-and-confirm fuzzers
:mod:`repro.model`        Section 3 hit-probability theory + Monte-Carlo
:mod:`repro.apps`         the 18 evaluation subjects, re-created
:mod:`repro.harness`      the 100-trial experiment protocol and all table
                          builders (Table 1, Table 2, Section 5, 6.2, 6.3)
:mod:`repro.obs`          observability: structured event bus, metrics
                          registry, Chrome-trace / JSONL trace export
                          with replayable schedules
========================  ====================================================

Quickstart (real threads)::

    from repro.core import ConflictTrigger, GLOBAL

    # thread 1, just before the racy read:
    if ConflictTrigger("bug42", obj).trigger_here(False, GLOBAL.timeout):
        ...  # breakpoint hit: the conflicting schedule was forced

    # thread 2, just before the racy write:
    ConflictTrigger("bug42", obj).trigger_here(True, GLOBAL.timeout)

See ``examples/quickstart.py`` for the complete runnable version.
"""

from . import activetest, apps, core, detect, harness, model, obs, sim
from .core import (
    GLOBAL,
    AtomicityTrigger,
    BTrigger,
    CBSpec,
    ConflictTrigger,
    DeadlockTrigger,
    PredicateTrigger,
    SitePolicy,
)

__version__ = "1.0.0"

__all__ = [
    "activetest",
    "apps",
    "core",
    "detect",
    "harness",
    "model",
    "obs",
    "sim",
    "GLOBAL",
    "AtomicityTrigger",
    "BTrigger",
    "CBSpec",
    "ConflictTrigger",
    "DeadlockTrigger",
    "PredicateTrigger",
    "SitePolicy",
    "__version__",
]
