"""Performance trajectory documents (``BENCH_*.json``).

The kernel's steps/sec bounds everything the harness can afford — more
trials per table, deeper exploration, bigger apps — so its throughput is
tracked as data, not folklore.  A *bench document* is a small JSON file
a benchmark emits (``BENCH_kernel.json``), CI uploads as an artifact,
and the perf gate compares against a committed baseline
(``benchmarks/BENCH_kernel.baseline.json``).

Design points:

* **Schema-versioned** (``repro.bench/1``): the comparison logic
  refuses documents it does not understand instead of mis-gating them.
* **Per-metric gating**: every metric carries ``unit``, ``direction``
  (``"higher"``/``"lower"`` = which way is better) and ``gate`` (bool).
  Only gated metrics can fail CI; the rest are trajectory data.
* **Machine-relative gates**: absolute steps/sec varies wildly across
  runners, so the gated metrics are *ratios* measured in-process
  (fast kernel vs the pre-rewrite reference kernel, interleaved on the
  same machine in the same minute).  Ratios transfer across hardware;
  raw rates are recorded ungated for the human trajectory.
* **No timestamps inside the document**: content is a pure function of
  code + machine, so two runs on one machine diff cleanly.  Provenance
  (commit, runner) belongs in ``meta``, supplied by the caller.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = ["SCHEMA", "make_doc", "write_doc", "load_doc", "compare"]

SCHEMA = "repro.bench/1"

_DIRECTIONS = ("higher", "lower")
_METRIC_FIELDS = ("value", "unit", "direction", "gate")


def make_doc(
    name: str,
    metrics: Dict[str, Dict[str, Any]],
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build a validated bench document.

    ``metrics`` maps metric name to ``{value, unit, direction, gate}``;
    every field is required and validated here so a malformed emitter
    fails at emit time, not at gate time.
    """
    if not name:
        raise ValueError("bench document needs a non-empty name")
    for mname, m in metrics.items():
        missing = [f for f in _METRIC_FIELDS if f not in m]
        if missing:
            raise ValueError(f"metric {mname!r} missing fields {missing}")
        if not isinstance(m["value"], (int, float)) or isinstance(m["value"], bool):
            raise ValueError(f"metric {mname!r} value must be a number, got {m['value']!r}")
        if m["direction"] not in _DIRECTIONS:
            raise ValueError(
                f"metric {mname!r} direction must be one of {_DIRECTIONS}, got {m['direction']!r}"
            )
        if not isinstance(m["gate"], bool):
            raise ValueError(f"metric {mname!r} gate must be a bool")
    return {
        "schema": SCHEMA,
        "name": name,
        "metrics": {k: dict(v) for k, v in sorted(metrics.items())},
        "meta": dict(meta) if meta else {},
    }


def write_doc(doc: Dict[str, Any], path: Path) -> Path:
    """Serialize a document canonically (sorted keys, trailing newline)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_doc(path: Path) -> Dict[str, Any]:
    """Load and schema-check a document."""
    doc = json.loads(Path(path).read_text())
    schema = doc.get("schema")
    if schema != SCHEMA:
        raise ValueError(f"{path}: unsupported bench schema {schema!r} (want {SCHEMA!r})")
    if "metrics" not in doc or not isinstance(doc["metrics"], dict):
        raise ValueError(f"{path}: bench document has no metrics table")
    return doc


def compare(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.15,
) -> List[str]:
    """Gate ``current`` against ``baseline``; return regression messages.

    For every *gated* baseline metric: a ``direction: higher`` metric
    regresses when it falls below ``baseline * (1 - tolerance)``; a
    ``direction: lower`` metric regresses when it rises above
    ``baseline * (1 + tolerance)``.  A gated baseline metric missing
    from ``current`` is itself a regression (the emitter shrank).
    An empty return value means the gate passes.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError("tolerance must be in [0, 1)")
    failures: List[str] = []
    cur_metrics = current.get("metrics", {})
    for mname, base in baseline.get("metrics", {}).items():
        if not base.get("gate"):
            continue
        cur = cur_metrics.get(mname)
        if cur is None:
            failures.append(f"{mname}: gated metric missing from current document")
            continue
        bval, cval = base["value"], cur["value"]
        if base["direction"] == "higher":
            floor = bval * (1.0 - tolerance)
            if cval < floor:
                failures.append(
                    f"{mname}: {cval:.4g} {base['unit']} < floor {floor:.4g} "
                    f"(baseline {bval:.4g}, tolerance {tolerance:.0%})"
                )
        else:
            ceil = bval * (1.0 + tolerance)
            if cval > ceil:
                failures.append(
                    f"{mname}: {cval:.4g} {base['unit']} > ceiling {ceil:.4g} "
                    f"(baseline {bval:.4g}, tolerance {tolerance:.0%})"
                )
    return failures
