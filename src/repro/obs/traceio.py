"""Trace export: Chrome trace-event JSON and versioned JSONL.

Two serializations of :class:`repro.sim.trace.Trace`:

* **Chrome trace-event JSON** (:func:`to_chrome_trace`) — loadable in
  Perfetto / ``chrome://tracing``.  One track per simulated thread
  (metadata ``thread_name``/``thread_sort_index`` records), every kernel
  event as an instant event at its virtual timestamp (µs), breakpoint
  hits as *global-scope* instants so a match is visible across all
  tracks at once.
* **JSONL** (:func:`trace_to_jsonl` / :func:`load_jsonl`) — the
  versioned, lossless interchange format.  Line 1 is a header carrying
  the schema tag plus everything needed to *re-execute* the run
  (app, bug, seed, config, and the recorded scheduler choice list);
  each following line is one event with sorted keys and compact
  separators, so equal traces serialize to byte-identical text.  The
  round-trip contract, enforced by tests:
  ``dump → load → dump`` is the identity on the text, and
  ``dump → load → replay`` (via :class:`repro.sim.replay.ReplayScheduler`)
  reproduces the identical event sequence.

Synchronisation objects are serialized as ``{"kind", "name"}`` refs;
loading materialises light-weight :class:`TraceObjRef` placeholders that
carry ``.name``, so loaded traces render through
:func:`repro.sim.timeline.render_timeline` unchanged.
"""

from __future__ import annotations

import io
import json
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.sim.trace import OP, Event, Trace

__all__ = [
    "TRACE_SCHEMA",
    "TraceObjRef",
    "LoadedTrace",
    "event_to_dict",
    "event_from_dict",
    "trace_to_jsonl",
    "dump_jsonl",
    "load_jsonl",
    "to_chrome_trace",
    "dump_chrome",
    "record_app_run",
    "replay_recorded",
]

#: Version tag written into every JSONL header; bump on layout changes.
TRACE_SCHEMA = "repro.trace/1"

_JSON_KW = {"sort_keys": True, "separators": (",", ":")}

#: Ops rendered as global-scope instants in the Chrome export.
_GLOBAL_OPS = {OP.TRIGGER_HIT, OP.TRIGGER_TIMEOUT}

_CATEGORIES = {
    OP.READ: "memory",
    OP.WRITE: "memory",
    OP.ACQUIRE: "sync",
    OP.ACQUIRE_REQ: "sync",
    OP.RELEASE: "sync",
    OP.WAIT_ENTER: "sync",
    OP.WAIT_EXIT: "sync",
    OP.NOTIFY: "sync",
    OP.SEM_P: "sync",
    OP.SEM_V: "sync",
    OP.BARRIER: "sync",
    OP.EVENT_WAIT: "sync",
    OP.EVENT_SET: "sync",
    OP.FORK: "thread",
    OP.JOIN: "thread",
    OP.JOINED: "thread",
    OP.END: "thread",
    OP.FAIL: "thread",
    OP.SLEEP: "thread",
    OP.TRIGGER_VISIT: "breakpoint",
    OP.TRIGGER_POSTPONE: "breakpoint",
    OP.TRIGGER_HIT: "breakpoint",
    OP.TRIGGER_TIMEOUT: "breakpoint",
}


class TraceObjRef:
    """Placeholder for a synchronisation object in a loaded trace."""

    __slots__ = ("kind", "name")

    def __init__(self, kind: str, name: Optional[str]) -> None:
        self.kind = kind
        self.name = name

    def __repr__(self) -> str:
        return f"TraceObjRef({self.kind}:{self.name})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TraceObjRef)
            and (self.kind, self.name) == (other.kind, other.name)
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.name))


def _obj_ref(obj: Any) -> Optional[Dict[str, Any]]:
    if obj is None:
        return None
    if isinstance(obj, TraceObjRef):
        return {"kind": obj.kind, "name": obj.name}
    name = getattr(obj, "name", None)
    return {"kind": type(obj).__name__, "name": name}


def _jsonable(x: Any) -> Any:
    """Best-effort deterministic JSON projection of an extra payload."""
    if x is None or isinstance(x, (bool, int, float, str)):
        return x
    if isinstance(x, (list, tuple)):
        return [_jsonable(v) for v in x]
    if isinstance(x, dict):
        return {str(k): _jsonable(v) for k, v in x.items()}
    name = getattr(x, "name", None)
    return name if name is not None else str(x)


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def event_to_dict(ev: Event) -> Dict[str, Any]:
    """JSON-safe dict for one trace event."""
    return {
        "seq": ev.seq,
        "step": ev.step,
        "t": ev.time,
        "tid": ev.tid,
        "tname": ev.tname,
        "op": ev.op,
        "obj": _obj_ref(ev.obj),
        "loc": ev.loc,
        "extra": _jsonable(ev.extra),
    }


def _untuple(x: Any) -> Any:
    """Undo JSON's tuple→list coercion so loaded extras render exactly
    like live ones (trace extras use tuples; both serialize the same)."""
    if isinstance(x, list):
        return tuple(_untuple(v) for v in x)
    if isinstance(x, dict):
        return {k: _untuple(v) for k, v in x.items()}
    return x


def event_from_dict(d: Dict[str, Any], seq: int) -> Event:
    """Rebuild a trace event from :func:`event_to_dict` output."""
    ref = d.get("obj")
    obj = TraceObjRef(ref["kind"], ref.get("name")) if ref else None
    return Event(
        seq=seq,
        time=d["t"],
        tid=d["tid"],
        tname=d["tname"],
        op=d["op"],
        obj=obj,
        loc=d.get("loc", "?"),
        extra=_untuple(d.get("extra")),
        step=d.get("step", -1),
    )


def trace_to_jsonl(trace: Trace, meta: Optional[Dict[str, Any]] = None) -> str:
    """Serialize ``trace`` (plus run metadata) to versioned JSONL text."""
    header = {"schema": TRACE_SCHEMA, "events": len(trace)}
    if meta:
        header["meta"] = _jsonable(meta)
    out = io.StringIO()
    out.write(json.dumps(header, **_JSON_KW) + "\n")
    for ev in trace:
        out.write(json.dumps(event_to_dict(ev), **_JSON_KW) + "\n")
    return out.getvalue()


def dump_jsonl(trace: Trace, path: str, meta: Optional[Dict[str, Any]] = None) -> None:
    """Write the versioned JSONL trace file (header + one event/line)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(trace_to_jsonl(trace, meta))


class LoadedTrace:
    """A deserialized JSONL trace: ``.trace`` + header ``.meta``."""

    def __init__(self, trace: Trace, meta: Dict[str, Any], schema: str) -> None:
        self.trace = trace
        self.meta = meta
        self.schema = schema

    def replayable(self) -> bool:
        """Does the header carry the recorded schedule?"""
        return all(k in self.meta for k in ("app", "seed", "schedule"))


def load_jsonl(source: Union[str, io.TextIOBase]) -> LoadedTrace:
    """Parse JSONL text, a file path, or an open text stream."""
    if isinstance(source, str):
        text = source
        if "\n" not in source and not source.lstrip().startswith("{"):
            with open(source, "r", encoding="utf-8") as fh:
                text = fh.read()
        lines = text.splitlines()
    else:
        lines = source.read().splitlines()
    if not lines:
        raise ValueError("empty trace file")
    header = json.loads(lines[0])
    schema = header.get("schema")
    if schema != TRACE_SCHEMA:
        raise ValueError(f"unsupported trace schema {schema!r} (expected {TRACE_SCHEMA!r})")
    trace = Trace()
    for i, line in enumerate(lines[1:]):
        if not line.strip():
            continue
        d = json.loads(line)
        ev = event_from_dict(d, seq=len(trace))
        if ev.seq != d.get("seq", ev.seq):
            raise ValueError(f"non-contiguous event sequence at line {i + 2}")
        trace.append(ev.time, ev.tid, ev.tname, ev.op, ev.obj, ev.loc, ev.extra, ev.step)
    declared = header.get("events")
    if declared is not None and declared != len(trace):
        raise ValueError(f"header declares {declared} events, file holds {len(trace)}")
    return LoadedTrace(trace, header.get("meta", {}), schema)


# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------


def to_chrome_trace(
    trace: Trace,
    process_name: str = "repro-sim",
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Render a trace as a Chrome/Perfetto trace-event document.

    Virtual seconds map to microseconds of trace time; every event
    becomes a thread-scoped instant (``ph: "i"``), except breakpoint
    hits/timeouts which use global scope so they draw across all tracks.
    """
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "ts": 0,
            "args": {"name": process_name},
        }
    ]
    seen: Dict[int, str] = {}
    for ev in trace:
        if ev.tid not in seen:
            seen[ev.tid] = ev.tname
    for tid in sorted(seen):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "ts": 0,
                "args": {"name": seen[tid]},
            }
        )
        events.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "ts": 0,
                "args": {"sort_index": tid},
            }
        )
    for ev in trace:
        obj_name = getattr(ev.obj, "name", None)
        label = f"{ev.op} {obj_name}" if obj_name else ev.op
        args: Dict[str, Any] = {"step": ev.step, "seq": ev.seq}
        if ev.loc not in (None, "?"):
            args["loc"] = ev.loc
        if ev.extra is not None:
            args["extra"] = _jsonable(ev.extra)
        events.append(
            {
                "name": label,
                "cat": _CATEGORIES.get(ev.op, "misc"),
                "ph": "i",
                "s": "g" if ev.op in _GLOBAL_OPS else "t",
                "ts": ev.time * 1e6,
                "pid": 0,
                "tid": ev.tid,
                "args": args,
            }
        )
    doc: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_SCHEMA},
    }
    if meta:
        doc["otherData"].update(_jsonable(meta))
    return doc


def dump_chrome(
    trace: Trace,
    path: str,
    process_name: str = "repro-sim",
    meta: Optional[Dict[str, Any]] = None,
) -> None:
    """Write the Chrome trace-event JSON rendering of a trace."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(trace, process_name, meta), fh, sort_keys=True)


# ---------------------------------------------------------------------------
# Record / replay round trip
# ---------------------------------------------------------------------------


def record_app_run(
    app: Any,
    bug: Optional[str] = None,
    seed: int = 0,
    timeout: float = 0.100,
    params: Optional[Dict[str, Any]] = None,
) -> Tuple[Any, Dict[str, Any]]:
    """Execute one app run with trace recording *and* schedule recording.

    Returns ``(AppRun, meta)`` where ``meta`` is the replay header for
    :func:`trace_to_jsonl`: app name, bug, seed, pause timeout, workload
    params, and the full scheduler choice list.
    """
    from repro.apps import get_app
    from repro.apps.base import AppConfig
    from repro.sim.replay import RecordingScheduler

    cls = get_app(app) if isinstance(app, str) else app
    rec = RecordingScheduler(seed=seed)
    inst = cls(AppConfig(bug=bug, timeout=timeout, params=dict(params or {})))
    run = inst.run(seed=seed, scheduler=rec, record_trace=True)
    meta = {
        "app": cls.name,
        "bug": bug,
        "seed": seed,
        "timeout": timeout,
        "params": dict(params or {}),
        "schedule": list(rec.choices),
    }
    return run, meta


def replay_recorded(meta: Dict[str, Any]) -> Any:
    """Re-execute a run from a JSONL header's replay metadata.

    Drives the app with a strict :class:`ReplayScheduler` over the
    recorded choice list; the returned ``AppRun``'s trace serializes
    byte-identically to the original recording.
    """
    from repro.apps import get_app
    from repro.apps.base import AppConfig
    from repro.sim.replay import ReplayScheduler

    missing = [k for k in ("app", "seed", "schedule") if k not in meta]
    if missing:
        raise ValueError(f"replay metadata incomplete, missing {missing}")
    cls = get_app(meta["app"])
    sched = ReplayScheduler(meta["schedule"], strict=True)
    inst = cls(
        AppConfig(
            bug=meta.get("bug"),
            timeout=meta.get("timeout", 0.100),
            params=dict(meta.get("params") or {}),
        )
    )
    return inst.run(seed=meta["seed"], scheduler=sched, record_trace=True)
