"""Structured event bus with a compiled no-op fast path.

Instrumentation points across the engine, kernel, and harness publish
through per-topic :class:`Signal` objects obtained once (usually at
construction time) via :meth:`EventBus.signal`.  The design goal is that
*observability which nobody consumes costs almost nothing*:

* a **disabled** bus hands out one shared :class:`NullSignal` whose
  ``__call__`` is a bare ``pass`` — the cheapest callable Python can
  compile, safe to invoke from any hot path;
* an **enabled** bus with no subscribers costs one attribute load and a
  truthiness test per publish (``if not self._subs: return``), which the
  overhead gate in ``benchmarks/bench_obs_overhead.py`` holds under 5 %
  of end-to-end experiment time;
* subscribers are plain callables receiving an :class:`ObsEvent`; a
  ``"*"`` subscription observes every topic, including topics created
  after the subscription.

The bus is deliberately synchronous and unbuffered: handlers run inline
at the publish site, in subscription order, so a subscriber sees events
in exactly the deterministic order the simulation produced them — which
is what makes bus output usable as evidence in replay/trace workflows.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

__all__ = ["ObsEvent", "Signal", "NullSignal", "EventBus", "NULL_SIGNAL"]


class ObsEvent:
    """One published event: a topic plus a flat payload dict."""

    __slots__ = ("topic", "data")

    def __init__(self, topic: str, data: Dict[str, Any]) -> None:
        self.topic = topic
        self.data = data

    def __repr__(self) -> str:
        return f"ObsEvent({self.topic!r}, {self.data!r})"


class Signal:
    """Publish endpoint for one topic.

    Obtained from :meth:`EventBus.signal`; call it with keyword payload
    fields.  ``active`` is kept in sync with the subscriber list so hot
    paths may pre-check it to skip even payload construction.
    """

    __slots__ = ("topic", "_subs", "active")

    def __init__(self, topic: str) -> None:
        self.topic = topic
        self._subs: List[Callable[[ObsEvent], None]] = []
        self.active = False

    def __call__(self, **data: Any) -> None:
        if not self._subs:
            return
        ev = ObsEvent(self.topic, data)
        for fn in list(self._subs):
            fn(ev)

    # Managed by EventBus (which owns wildcard bookkeeping).
    def _attach(self, fn: Callable[[ObsEvent], None]) -> None:
        self._subs.append(fn)
        self.active = True

    def _detach(self, fn: Callable[[ObsEvent], None]) -> None:
        if fn in self._subs:
            self._subs.remove(fn)
        self.active = bool(self._subs)


class NullSignal:
    """The disabled fast path: publishing is a compiled no-op."""

    __slots__ = ()
    topic = "<null>"
    active = False

    def __call__(self, **data: Any) -> None:
        pass


#: Shared no-op endpoint handed out by disabled buses.
NULL_SIGNAL = NullSignal()


class EventBus:
    """Topic registry and subscription management.

    ``enabled=False`` freezes the bus in the no-op state: every
    ``signal()`` returns :data:`NULL_SIGNAL` and ``subscribe`` raises —
    instrumented code keeps working, publishes compile to nothing.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._signals: Dict[str, Signal] = {}
        self._wildcard: List[Callable[[ObsEvent], None]] = []

    # ------------------------------------------------------------------
    def signal(self, topic: str):
        """Get-or-create the publish endpoint for ``topic``."""
        if not self.enabled:
            return NULL_SIGNAL
        sig = self._signals.get(topic)
        if sig is None:
            sig = self._signals[topic] = Signal(topic)
            for fn in self._wildcard:
                sig._attach(fn)
        return sig

    def publish(self, topic: str, **data: Any) -> None:
        """One-off publish (hot paths should hold the Signal instead)."""
        self.signal(topic)(**data)

    # ------------------------------------------------------------------
    def subscribe(
        self, topic: str, fn: Callable[[ObsEvent], None]
    ) -> Callable[[], None]:
        """Attach ``fn`` to ``topic`` (``"*"`` = every topic, present and
        future).  Returns an unsubscribe callable."""
        if not self.enabled:
            raise RuntimeError("cannot subscribe to a disabled EventBus")
        if topic == "*":
            self._wildcard.append(fn)
            for sig in self._signals.values():
                sig._attach(fn)

            def _off() -> None:
                if fn in self._wildcard:
                    self._wildcard.remove(fn)
                for sig in self._signals.values():
                    sig._detach(fn)

            return _off
        sig = self.signal(topic)
        sig._attach(fn)
        return lambda: sig._detach(fn)

    def topics(self) -> List[str]:
        """Sorted names of every topic with a signal."""
        return sorted(self._signals)

    @property
    def subscriber_count(self) -> int:
        """Distinct subscriptions (a wildcard counts once)."""
        per_topic = sum(len(s._subs) for s in self._signals.values())
        return len(self._wildcard) + per_topic - len(self._wildcard) * len(self._signals)
