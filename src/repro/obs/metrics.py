"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the numeric half of the observability subsystem (the
event bus is the structured half).  Three properties drive the design:

* **Determinism** — a metric snapshot is a sorted, JSON-able dict and a
  merge is performed in a caller-chosen (seed) order, so the parallel
  trial runner can merge per-worker/per-trial snapshots and obtain *the
  same* registry the serial loop builds.  Metrics that are inherently
  non-deterministic (wall-clock latencies, retry counts that depend on
  which worker crashed) are flagged ``volatile`` and excluded from
  :func:`deterministic_view`, which the parallel-equivalence tests
  compare.
* **Cheap hot paths** — counters are bare attribute increments; the
  kernel accumulates plain ints/dicts during a run and flushes once at
  the end (see ``Kernel._flush_obs``), so per-step cost stays within the
  <5 % overhead gate.
* **Wire friendliness** — :meth:`MetricsRegistry.to_wire` produces a
  small picklable tuple that crosses the worker-process boundary
  attached to each :class:`~repro.harness.stats.TrialOutcome`.

Histograms use fixed bucket upper bounds (Prometheus-style ``le``
semantics, plus an overflow bucket) so merging is exact bucket-wise
addition — no approximation, no order sensitivity in the counts.

The schedule explorers flush their own counter families here when given
an obs context (``repro explore`` always does): ``explore.schedules`` /
``explore.steps_executed`` / ``explore.replayed_choices`` for any walk,
``explore.snapshot.parks|restores|fallback_runs`` for the fork pool, and
``explore.dpor.branches_added|conservative_fallbacks|sleep_set_prunes``
for the reduction — zero-valued counters are skipped.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "deterministic_view",
]

#: Default latency/duration buckets in seconds: 100 µs .. 60 s.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 5.0, 10.0, 60.0
)


class Counter:
    """Monotonically increasing integer."""

    __slots__ = ("name", "value", "volatile")
    kind = "counter"

    def __init__(self, name: str, volatile: bool = False) -> None:
        self.name = name
        self.value = 0
        self.volatile = volatile

    def inc(self, n: int = 1) -> None:
        """Add ``n`` to the count."""
        self.value += n

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict snapshot for JSON export."""
        return {"type": self.kind, "value": self.value, "volatile": self.volatile}

    def merge(self, other: "Counter") -> None:
        """Fold another counter in by summing."""
        self.value += other.value


class Gauge:
    """Last-written value; merges by taking the maximum (documented
    choice: for per-trial gauges like high-water marks, the max over a
    sweep is the only order-independent reduction)."""

    __slots__ = ("name", "value", "volatile")
    kind = "gauge"

    def __init__(self, name: str, volatile: bool = False) -> None:
        self.name = name
        self.value: float = 0.0
        self.volatile = volatile

    def set(self, v: float) -> None:
        """Overwrite the current value."""
        self.value = v

    def max(self, v: float) -> None:
        """Raise the value to ``v`` if larger."""
        if v > self.value:
            self.value = v

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict snapshot for JSON export."""
        return {"type": self.kind, "value": self.value, "volatile": self.volatile}

    def merge(self, other: "Gauge") -> None:
        """Fold another gauge in by taking the maximum."""
        if other.value > self.value:
            self.value = other.value


class Histogram:
    """Fixed-bucket histogram with ``le`` upper bounds + overflow.

    ``counts[i]`` is the number of observations ``<= buckets[i]``
    (non-cumulative storage; cumulative form is derivable), ``counts[-1]``
    the overflow.  ``sum``/``count`` give the exact mean.
    """

    __slots__ = ("name", "buckets", "counts", "count", "sum", "volatile")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        volatile: bool = False,
    ) -> None:
        bs = tuple(buckets) if buckets is not None else DEFAULT_TIME_BUCKETS
        if not bs or list(bs) != sorted(bs):
            raise ValueError(f"histogram buckets must be sorted and non-empty: {bs}")
        self.name = name
        self.buckets = bs
        self.counts: List[int] = [0] * (len(bs) + 1)
        self.count = 0
        self.sum = 0.0
        self.volatile = volatile

    def observe(self, v: float) -> None:
        """Count ``v`` into its bucket and the running sum."""
        self.count += 1
        self.sum += v
        for i, le in enumerate(self.buckets):
            if v <= le:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        """Exact mean of all observations (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict snapshot (buckets, counts, count, sum)."""
        return {
            "type": self.kind,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "volatile": self.volatile,
        }

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in; buckets must match."""
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket mismatch "
                f"{self.buckets} vs {other.buckets}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum


Metric = Union[Counter, Gauge, Histogram]


def deterministic_view(snapshot: Dict[str, Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """The non-volatile subset of a snapshot — the part for which
    parallel and serial sweeps are contractually bit-identical."""
    return {k: v for k, v in snapshot.items() if not v.get("volatile")}


class MetricsRegistry:
    """Named metrics with get-or-create accessors and exact merging."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def counter(self, name: str, volatile: bool = False) -> Counter:
        """Get or create the named counter."""
        return self._get(name, Counter, volatile=volatile)

    def gauge(self, name: str, volatile: bool = False) -> Gauge:
        """Get or create the named gauge."""
        return self._get(name, Gauge, volatile=volatile)

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        volatile: bool = False,
    ) -> Histogram:
        """Get or create the named histogram."""
        m = self._metrics.get(name)
        if m is None:
            m = self._metrics[name] = Histogram(name, buckets, volatile=volatile)
        elif not isinstance(m, Histogram):
            raise TypeError(f"metric {name!r} is a {m.kind}, not a histogram")
        elif buckets is not None and tuple(buckets) != m.buckets:
            raise ValueError(f"metric {name!r} re-declared with different buckets")
        return m

    def reset(self) -> None:
        """Zero every metric in place, keeping the objects.

        The trial runners reuse one registry across the trials of a
        sweep (resetting between trials) instead of allocating ~20 fresh
        metric objects per trial — the allocation and GC churn of
        fresh-per-trial registries was the bulk of the obs overhead.
        Zeroed metrics that a given trial never touches still appear in
        its wire snapshot, but zero rows merge as exact no-ops, so the
        merged sweep registry is identical to the fresh-per-trial one.
        """
        for m in self._metrics.values():
            if m.__class__ is Histogram:
                m.counts = [0] * len(m.counts)
                m.count = 0
                m.sum = 0.0
            else:
                m.value = 0

    def add_counters(self, values: Dict[str, int], volatile: bool = False) -> None:
        """Bulk get-or-create-and-add for counters.

        The end-of-run flush paths (kernel, engine) fold a dozen-plus
        counter deltas into a fresh per-trial registry; doing it in one
        call keeps the flush cost a small fraction of a trial.
        """
        metrics = self._metrics
        for name, n in values.items():
            m = metrics.get(name)
            if m is None:
                metrics[name] = m = Counter(name, volatile=volatile)
            elif not isinstance(m, Counter):
                raise TypeError(f"metric {name!r} is a {m.kind}, not a counter")
            m.value += n

    def _get(self, name: str, cls: type, volatile: bool) -> Any:
        m = self._metrics.get(name)
        if m is None:
            m = self._metrics[name] = cls(name, volatile=volatile)
        elif not isinstance(m, cls):
            raise TypeError(f"metric {name!r} is a {m.kind}, not a {cls.kind}")
        return m

    def get(self, name: str) -> Optional[Metric]:
        """The named metric, or None."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """Sorted names of all registered metrics."""
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # ------------------------------------------------------------------
    # Snapshots and serialization
    # ------------------------------------------------------------------
    def snapshot(self, include_volatile: bool = True) -> Dict[str, Dict[str, Any]]:
        """Sorted, JSON-able view of every metric."""
        snap = {name: self._metrics[name].snapshot() for name in sorted(self._metrics)}
        if not include_volatile:
            snap = deterministic_view(snap)
        return snap

    def to_json(self, indent: Optional[int] = 2, include_volatile: bool = True) -> str:
        """Sorted-key JSON text of the registry snapshot."""
        return json.dumps(
            self.snapshot(include_volatile=include_volatile),
            indent=indent,
            sort_keys=True,
        )

    def to_wire(self) -> Tuple[Tuple[str, Tuple[Any, ...]], ...]:
        """Compact picklable form for crossing process boundaries.

        Rows are in registry insertion order, not sorted — within one
        payload every row is a distinct metric, so row order cannot
        affect a merge, and this runs once per trial in collected
        sweeps (snapshots sort; the wire does not need to).
        """
        rows: List[Tuple[str, Tuple[Any, ...]]] = []
        append = rows.append
        for name, m in self._metrics.items():
            t = m.__class__
            if t is Counter:
                append((name, ("counter", m.value, m.volatile)))
            elif t is Gauge:
                append((name, ("gauge", m.value, m.volatile)))
            else:
                append(
                    (name, ("histogram", m.buckets, tuple(m.counts), m.count, m.sum, m.volatile))
                )
        return tuple(rows)

    @classmethod
    def from_wire(cls, wire: Iterable[Tuple[str, Tuple[Any, ...]]]) -> "MetricsRegistry":
        """Rebuild a registry from its picklable wire form."""
        reg = cls()
        reg.merge_wire(wire)
        return reg

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (exact; see class docs)."""
        for name in sorted(other._metrics):
            m = other._metrics[name]
            if isinstance(m, Histogram):
                self.histogram(name, m.buckets, volatile=m.volatile).merge(m)
            elif isinstance(m, Gauge):
                self.gauge(name, volatile=m.volatile).merge(m)
            else:
                self.counter(name, volatile=m.volatile).merge(m)

    def merge_wire(self, wire: Iterable[Tuple[str, Tuple[Any, ...]]]) -> None:
        """Merge a :meth:`to_wire` payload (the worker → parent path).

        Inlined get-or-create: this runs once per trial per metric in
        every collected sweep, so it avoids the accessor indirection.
        """
        metrics = self._metrics
        for name, row in wire:
            kind = row[0]
            m = metrics.get(name)
            if kind == "counter":
                if m is None:
                    m = metrics[name] = Counter(name, volatile=row[2])
                elif not isinstance(m, Counter):
                    raise TypeError(f"metric {name!r} is a {m.kind}, not a counter")
                m.value += row[1]
            elif kind == "gauge":
                if m is None:
                    m = metrics[name] = Gauge(name, volatile=row[2])
                elif not isinstance(m, Gauge):
                    raise TypeError(f"metric {name!r} is a {m.kind}, not a gauge")
                if row[1] > m.value:
                    m.value = row[1]
            elif kind == "histogram":
                _, buckets, counts, count, total, volatile = row
                if m is None:
                    m = metrics[name] = Histogram(name, buckets, volatile=volatile)
                elif not isinstance(m, Histogram):
                    raise TypeError(f"metric {name!r} is a {m.kind}, not a histogram")
                elif tuple(buckets) != m.buckets:
                    raise ValueError(f"metric {name!r} re-declared with different buckets")
                mc = m.counts
                for i, c in enumerate(counts):
                    mc[i] += c
                m.count += count
                m.sum += total
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown wire metric kind {kind!r}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsRegistry):
            return NotImplemented
        return self.snapshot() == other.snapshot()

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"
