"""``repro.obs`` — observability: event bus, metrics, trace export.

The measurement substrate for the reproduction's evaluation claims
(overhead, hit probability, pause-time distributions).  Three parts:

* :mod:`repro.obs.bus` — structured event bus with a compiled no-op
  fast path; instrumented components publish breakpoint/kernel/harness
  events that subscribers consume inline and in deterministic order;
* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms
  in a registry that snapshots to JSON and merges exactly (the parallel
  trial runner merges per-trial registries in seed order, so parallel
  and serial sweeps agree bit-for-bit on every non-volatile metric);
* :mod:`repro.obs.traceio` — Chrome trace-event export (Perfetto) and a
  versioned JSONL serialization of :class:`repro.sim.Trace` whose
  header carries the recorded schedule, making every exported trace
  replayable via :mod:`repro.sim.replay`.

Quick example::

    from repro import harness, obs

    with obs.collecting() as reg:
        harness.run_trials(SomeApp, n=100, bug="race1")
    print(reg.to_json())

CLI surface: ``python -m repro metrics <app>``, ``python -m repro
export-trace <app> --seed S --format chrome|jsonl``, and
``--metrics-out`` on ``run``/``report``.
"""

from .bus import NULL_SIGNAL, EventBus, NullSignal, ObsEvent, Signal
from .context import ObsContext, collecting, current_sink, not_collecting
from .metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    deterministic_view,
)
from .traceio import (
    TRACE_SCHEMA,
    LoadedTrace,
    TraceObjRef,
    dump_chrome,
    dump_jsonl,
    event_from_dict,
    event_to_dict,
    load_jsonl,
    record_app_run,
    replay_recorded,
    to_chrome_trace,
    trace_to_jsonl,
)

__all__ = [
    "EventBus",
    "Signal",
    "NullSignal",
    "NULL_SIGNAL",
    "ObsEvent",
    "ObsContext",
    "collecting",
    "current_sink",
    "not_collecting",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "deterministic_view",
    "TRACE_SCHEMA",
    "TraceObjRef",
    "LoadedTrace",
    "event_to_dict",
    "event_from_dict",
    "trace_to_jsonl",
    "dump_jsonl",
    "load_jsonl",
    "to_chrome_trace",
    "dump_chrome",
    "record_app_run",
    "replay_recorded",
]
