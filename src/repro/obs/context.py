"""ObsContext — the bundle instrumented components accept.

One :class:`ObsContext` pairs an :class:`~repro.obs.bus.EventBus` with a
:class:`~repro.obs.metrics.MetricsRegistry`.  Components (``Kernel``,
``BreakpointEngine``, the trial runner) take ``obs=None`` meaning *fully
disabled* — the instrumentation branches compile down to a single
``is not None`` test — or a context, meaning *collect metrics and expose
bus topics*.

The module also hosts the **ambient metrics sink**: a process-global
registry that, when set (via :func:`collecting`), switches every trial
sweep started underneath it into metrics-collection mode and receives
the merged per-sweep registries.  This is how ``--metrics-out`` on
``report`` gathers one registry across all five table builders without
threading a parameter through every call site; the flag still crosses
process boundaries explicitly (``AppConfig.collect_metrics``), so pool
workers behave identically under fork and spawn start methods.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Dict, Iterator, List, Optional, Sequence

from .bus import EventBus
from .metrics import MetricsRegistry

__all__ = ["ObsContext", "SlotCounters", "collecting", "current_sink", "not_collecting"]


class SlotCounters:
    """Flat-slot counter accumulation, folded into metrics at flush time.

    The hot-path contract of per-action accounting (the kernel's syscall
    mix, and any future per-event tally) is ``counts[slot] += 1`` — one
    list subscript, no hashing, no metrics-registry call.  The mapping
    from slot index to metric name lives here, applied once per run by
    :meth:`fold_into` instead of once per action.

    ``names`` is held by reference, not copied: callers that register
    slots lazily (``Kernel._count_unslotted_syscall``) extend the shared
    name list and the ``counts`` slab together, and the fold picks the
    new slots up automatically.  ``counts`` may trail ``names`` in
    length (slots named but never counted); it must never exceed it.
    """

    __slots__ = ("names", "counts")

    def __init__(self, names: Sequence[str]) -> None:
        self.names = names
        self.counts: List[int] = [0] * len(names)

    def fold_into(self, counters: Dict[str, int]) -> None:
        """Add every non-zero slot into ``counters`` under its name."""
        names = self.names
        for idx, n in enumerate(self.counts):
            if n:
                counters[names[idx]] = counters.get(names[idx], 0) + n

    def nonzero(self) -> Dict[str, int]:
        """The counted slots as a fresh ``{name: count}`` dict."""
        out: Dict[str, int] = {}
        self.fold_into(out)
        return out


@dataclasses.dataclass
class ObsContext:
    """Event bus + metrics registry handed to instrumented components.

    Instrumented components may cache construction-time scratch on the
    context instance (undeclared private attributes such as the kernel's
    ``_kernel_scratch`` slab pool and the breakpoint engine's
    ``_engine_sigs`` signal tuple): a sweep reuses one context across
    all its trials (``reuse_obs``), so per-trial instrumented setup
    amortises to near zero.  The caches hold only bus signal endpoints
    (get-or-create on the bus anyway) and zeroed counter slabs, so they
    never change what a trial records.
    """

    bus: EventBus
    metrics: MetricsRegistry

    @classmethod
    def create(cls, bus_enabled: bool = True) -> "ObsContext":
        """Fresh context: empty registry, bus with no subscribers."""
        return cls(bus=EventBus(enabled=bus_enabled), metrics=MetricsRegistry())


#: Process-global merged-metrics sink (None = ambient collection off).
_SINK: Optional[MetricsRegistry] = None


def current_sink() -> Optional[MetricsRegistry]:
    """The ambient registry trial sweeps merge into, if one is set."""
    return _SINK


@contextlib.contextmanager
def collecting(registry: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Enable ambient metrics collection for the dynamic extent.

    Every ``run_trials``/``measure`` sweep (serial or parallel) started
    inside the ``with`` block collects per-trial metrics and merges them
    into the yielded registry::

        with obs.collecting() as reg:
            harness.run_trials(App, n=100, bug="race1")
        print(reg.to_json())
    """
    global _SINK
    reg = registry if registry is not None else MetricsRegistry()
    prev = _SINK
    _SINK = reg
    try:
        yield reg
    finally:
        _SINK = prev


@contextlib.contextmanager
def not_collecting() -> Iterator[None]:
    """Suppress the ambient sink for the dynamic extent.

    Used by the result cache when it re-runs missing seed segments: each
    inner sweep would otherwise fold its merged registry into the sink
    *and* the cache's final re-aggregation would fold the same trials
    again — suppressing the sink around the inner runs keeps every trial
    counted exactly once.
    """
    global _SINK
    prev = _SINK
    _SINK = None
    try:
        yield
    finally:
        _SINK = prev
