"""ObsContext — the bundle instrumented components accept.

One :class:`ObsContext` pairs an :class:`~repro.obs.bus.EventBus` with a
:class:`~repro.obs.metrics.MetricsRegistry`.  Components (``Kernel``,
``BreakpointEngine``, the trial runner) take ``obs=None`` meaning *fully
disabled* — the instrumentation branches compile down to a single
``is not None`` test — or a context, meaning *collect metrics and expose
bus topics*.

The module also hosts the **ambient metrics sink**: a process-global
registry that, when set (via :func:`collecting`), switches every trial
sweep started underneath it into metrics-collection mode and receives
the merged per-sweep registries.  This is how ``--metrics-out`` on
``report`` gathers one registry across all five table builders without
threading a parameter through every call site; the flag still crosses
process boundaries explicitly (``AppConfig.collect_metrics``), so pool
workers behave identically under fork and spawn start methods.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Iterator, Optional

from .bus import EventBus
from .metrics import MetricsRegistry

__all__ = ["ObsContext", "collecting", "current_sink", "not_collecting"]


@dataclasses.dataclass
class ObsContext:
    """Event bus + metrics registry handed to instrumented components."""

    bus: EventBus
    metrics: MetricsRegistry

    @classmethod
    def create(cls, bus_enabled: bool = True) -> "ObsContext":
        """Fresh context: empty registry, bus with no subscribers."""
        return cls(bus=EventBus(enabled=bus_enabled), metrics=MetricsRegistry())


#: Process-global merged-metrics sink (None = ambient collection off).
_SINK: Optional[MetricsRegistry] = None


def current_sink() -> Optional[MetricsRegistry]:
    """The ambient registry trial sweeps merge into, if one is set."""
    return _SINK


@contextlib.contextmanager
def collecting(registry: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Enable ambient metrics collection for the dynamic extent.

    Every ``run_trials``/``measure`` sweep (serial or parallel) started
    inside the ``with`` block collects per-trial metrics and merges them
    into the yielded registry::

        with obs.collecting() as reg:
            harness.run_trials(App, n=100, bug="race1")
        print(reg.to_json())
    """
    global _SINK
    reg = registry if registry is not None else MetricsRegistry()
    prev = _SINK
    _SINK = reg
    try:
        yield reg
    finally:
        _SINK = prev


@contextlib.contextmanager
def not_collecting() -> Iterator[None]:
    """Suppress the ambient sink for the dynamic extent.

    Used by the result cache when it re-runs missing seed segments: each
    inner sweep would otherwise fold its merged registry into the sink
    *and* the cache's final re-aggregation would fold the same trials
    again — suppressing the sink around the inner runs keeps every trial
    counted exactly once.
    """
    global _SINK
    prev = _SINK
    _SINK = None
    try:
        yield
    finally:
        _SINK = prev
