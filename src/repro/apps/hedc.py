"""``hedc`` — the ETH web-crawler / meta-search engine (29,947 LoC).

Table 1 rows: ``race1`` reproduced at **0.87 with a 100 ms pause and 1.00
with a 1 s pause** (the Section 6.2 pause-time study), and ``race2`` at
0.96 with a 1 s pause.  The paper also notes hedc's runtimes fluctuate
with the network — our simulated fetch latencies play that role.

Structure: ``MetaSearchRequest`` fans out per-host ``Task`` objects to a
worker pool; a canceller thread aborts slow requests; an aggregator
publishes the merged result count.

* ``race1`` — the classic hedc race on ``Task.thread``: the worker
  clears the field in a short completion window while the canceller
  dereferences it to interrupt.  The two sites are reached at
  independently jittered times (network latency): with arrival times
  uniform over a spread ``w``, a pause of ``T`` catches the partner with
  probability ``1 - (1 - T/w)^2``, which for ``w = 0.156`` gives ~0.87
  at 100 ms and 1.0 at 1 s — the paper's numbers.
* ``race2`` — the aggregator's read-modify-write of the results counter
  overwrites a concurrent worker's increment (lost result).  Its latency
  spread is wider (``w = 1.25``), so even a 1 s pause misses ~4% of the
  time: the paper's 0.96.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.predicates import SitePolicy
from repro.sim.kernel import Kernel, RunResult
from repro.sim.memory import SharedCell
from repro.sim.primitives import SimRLock
from repro.sim.syscalls import Sleep

from .base import BaseApp, BugSpec

__all__ = ["HedcApp", "RACE1_SPREAD", "RACE2_SPREAD"]

#: Arrival-time spreads (seconds); see module docstring for the algebra.
RACE1_SPREAD = 0.156
RACE2_SPREAD = 1.45


class _Task:
    def __init__(self, host: str) -> None:
        self.host = host
        self.thread = SharedCell(None, name=f"task.{host}.thread")
        self.committing = False  # transient completion window
        self.done = False


class HedcApp(BaseApp):
    """Meta-search fan-out with a racing canceller and aggregator."""

    name = "hedc"
    paper_loc = "29,947"
    horizon = 60.0
    bugs = {
        "race1": BugSpec(
            id="race1", kind="race", error="",
            description="Task.thread cleared by worker while canceller dereferences it",
            comments="wait=100ms -> ~0.87, wait=1000ms -> ~1.0",
        ),
        "race2": BugSpec(
            id="race2", kind="race", error="",
            description="aggregator RMW overwrites a worker's results increment",
            comments="wait=1000ms",
        ),
    }

    def policies(self) -> Dict[str, SitePolicy]:
        """Fresh per-bug Section 6.3 refinement policies."""
        return {"race1": SitePolicy(bound=1), "race2": SitePolicy(bound=1)}

    def setup(self, kernel: Kernel) -> None:
        """Build shared state and spawn this subject's threads."""
        hosts = self.param("hosts", 4)
        self.tasks = [_Task(f"host{i}") for i in range(hosts)]
        self.results = SharedCell(0, name="request.results")
        # Workers synchronise their increments on this lock; the
        # aggregator's merge path forgot to (the race2 bug), so the only
        # unordered pair is worker vs aggregator.
        self.results_lock = SimRLock("results.lock", tag="MetaSearchResult")
        self.results_expected = 0
        self.stale_interrupt = False
        for i, task in enumerate(self.tasks):
            kernel.spawn(self._worker, task, name=f"crawler{i}")
        kernel.spawn(self._canceller, name="canceller")
        kernel.spawn(self._aggregator, name="aggregator")

    # ------------------------------------------------------------------
    def _worker(self, task: _Task):
        rng = self.kernel.rng
        yield from task.thread.set(f"crawler:{task.host}", loc="Task.java:51")
        # Simulated fetch: network latency jitter (the paper's fluctuating
        # crawler runtimes).
        yield Sleep(rng.uniform(0.05, 0.05 + RACE1_SPREAD))
        # Completion window: thread handle being torn down.  The
        # breakpoint (second action) parks us inside the window; the
        # matched canceller then observes the transient state first.
        task.committing = True
        yield from self.cb_conflict("race1", task, first=False, loc="Task.java:93")
        yield from task.thread.set(None, loc="Task.java:94")
        task.committing = False
        task.done = True
        # Report the result: counter increment, correctly locked against
        # other workers but not against the aggregator (race2 victim
        # side, first action — on a match this increment lands first and
        # the aggregator's stale write then clobbers it).
        yield Sleep(rng.uniform(0.0, 0.05))
        self.results_expected += 1
        yield from self.results_lock.acquire(loc="MetaSearchResult.java:118")
        n = yield from self.results.get(loc="MetaSearchResult.java:120")
        yield from self.cb_conflict("race2", self.results, first=True,
                                    loc="MetaSearchResult.java:120")
        yield from self.results.set(n + 1, loc="MetaSearchResult.java:121")
        yield from self.results_lock.release(loc="MetaSearchResult.java:122")

    def _canceller(self):
        rng = self.kernel.rng
        task = self.tasks[0]
        # Independent jitter over the same window as the worker's fetch.
        yield Sleep(rng.uniform(0.05, 0.05 + RACE1_SPREAD))
        # race1, canceller side (first action): dereference task.thread.
        yield from self.cb_conflict("race1", task, first=True,
                                    loc="MetaSearchRequest.java:204")
        # This check runs in the same scheduling step the trigger returns
        # in — the canceller observes the torn completion window exactly
        # at its breakpoint location.
        if task.committing:
            # Interrupt delivered against a handle being torn down.
            self.stale_interrupt = True
        th = yield from task.thread.get(loc="MetaSearchRequest.java:205")
        del th

    def _aggregator(self):
        rng = self.kernel.rng
        # Wide latency spread: the race2 partner occasionally arrives
        # beyond even a 1 s pause (the paper's 0.96).
        yield Sleep(rng.uniform(0.0, RACE2_SPREAD))
        # Merge bookkeeping: read-modify-write of the shared counter.
        n = yield from self.results.get(loc="MetaSearchRequest.java:167")
        yield from self.cb_conflict("race2", self.results, first=False,
                                    loc="MetaSearchRequest.java:167")
        merged = n  # merge step computes from the snapshot...
        if self.results.peek() != n:
            # A worker committed between our read and write: this write
            # destroys its increment — the lost-result bug, observed at
            # the instant it happens.
            self.note_error("lost results")
        yield from self.results.set(merged, loc="MetaSearchRequest.java:168")

    def oracle(self, result: RunResult) -> Optional[str]:
        """Classify the run's symptom, or None for a clean run."""
        if self.cfg.bug == "race1" or self.cfg.bug is None:
            if self.stale_interrupt:
                return "stale interrupt"
        if any(sym == "lost results" for _, sym in self.errors):
            return "lost results"
        if self.results.peek() < self.results_expected:
            return "lost results"
        return None
