"""Breakpoint suites for every benchmark bug — the attachable artefacts.

For each (app, bug) of the evaluation this module declares the
:class:`~repro.core.suite.BreakpointSuite` a developer would attach to
the bug report: the paper-style ``(l1, l2, phi)`` records with the pause
times and refinements that made the bug reproducible.  The declared
locations are *checked against reality* by
``tests/apps/test_suites.py``, which runs each bug and verifies that the
breakpoint events in the trace occur exactly at the declared sites.

Single-location races (a read-modify-write raced by symmetric threads)
use the same location for both actions — both threads stand at the same
statement.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.suite import BreakpointEntry, BreakpointSuite

__all__ = ["SUITES", "suite_for"]


def _pair(name, kind, l1, l2, predicate="t1.obj == t2.obj", **kw) -> BreakpointEntry:
    return BreakpointEntry(
        name=name, kind=kind, loc_first=l1, loc_second=l2, predicate=predicate, **kw
    )


def _rmw(name, loc, **kw) -> BreakpointEntry:
    """Symmetric read-modify-write race: one shared site."""
    return _pair(name, "conflict", loc, loc, **kw)


def _make() -> Dict[Tuple[str, str], BreakpointSuite]:
    suites: Dict[Tuple[str, str], BreakpointSuite] = {}

    def add(app: str, bug: str, error: str, *entries: BreakpointEntry, desc: str = "") -> None:
        s = BreakpointSuite(bug_id=bug, program=app, expected_error=error, description=desc)
        for e in entries:
            s.add(e)
        suites[(app, bug)] = s

    # -- cache4j ---------------------------------------------------------
    add("cache4j", "race1", "", _rmw("race1", "CacheImpl.java:95", bound=1),
        desc="size counter RMW outside the segment lock")
    add("cache4j", "race2", "", _rmw("race2", "CacheImpl.java:140", bound=1))
    add("cache4j", "race3", "", _rmw("race3", "CacheImpl.java:102", bound=1))
    add("cache4j", "atomicity1", "",
        _pair("atomicity1", "atomicity", "CacheImpl.java:132", "CacheObject.java:33",
              predicate="t1.obj == t2.obj and payload unset", ignore_first=60, bound=1),
        desc="unsafe publication: valid set before payload")

    # -- hedc ------------------------------------------------------------
    add("hedc", "race1", "",
        _pair("race1", "conflict", "MetaSearchRequest.java:204", "Task.java:93",
              predicate="t1.task == t2.task", bound=1),
        desc="canceller dereferences Task.thread in the completion window")
    add("hedc", "race2", "",
        _pair("race2", "conflict", "MetaSearchResult.java:120", "MetaSearchRequest.java:167",
              timeout=1.0, bound=1),
        desc="aggregator RMW clobbers a worker increment")

    # -- jigsaw ------------------------------------------------------------
    add("jigsaw", "deadlock1", "stall",
        _pair("deadlock1", "deadlock",
              "SocketClientFactory.java:626", "SocketClientFactory.java:872",
              predicate="t1.csList == t2.csList and t1.this == t2.this", bound=1),
        desc="paper Figure 2: csList/factory inversion")
    add("jigsaw", "deadlock2", "stall",
        _pair("deadlock2", "deadlock",
              "CommonLogger.java:92", "SocketClientFactory.java:843", bound=1))
    add("jigsaw", "missed-notify1", "stall",
        _pair("missed-notify1", "conflict",
              "SocketClientFactory.java:576", "SocketClientFactory.java:903",
              predicate="same factory monitor; last idle client", bound=1))
    add("jigsaw", "race1", "stall",
        _pair("race1", "conflict", "httpd.java:1560", "SocketClient.java:206",
              predicate="t1.alive == t2.alive", bound=1))
    add("jigsaw", "race2", "", _rmw("race2", "httpd.java:1402", bound=1))

    # -- log4j ------------------------------------------------------------
    add("log4j", "deadlock1", "stall",
        _pair("deadlock1", "deadlock", "AsyncAppender.java:118", "FileAppender.java:214",
              bound=1))
    add("log4j", "missed-notify1", "stall",
        _pair("missed-notify1", "conflict",
              "AsyncAppender.java:236", "AsyncAppender.java:309",
              predicate="same appender monitor; dispatcher at final idle", bound=1),
        desc="Section 5: setBufferSize's notify lost in the check-to-wait window")

    # -- logging / lucene / pool ------------------------------------------
    add("logging", "deadlock1", "stall",
        _pair("deadlock1", "deadlock", "Logger.java:586", "LogManager.java:1346", bound=1))
    add("lucene", "deadlock1", "stall",
        _pair("deadlock1", "deadlock", "IndexWriter.java:1020", "DocumentsWriter.java:586",
              bound=1))
    add("pool", "missed-notify1", "stall",
        _pair("missed-notify1", "conflict",
              "GenericObjectPool.java:902", "GenericObjectPool.java:805",
              predicate="same pool monitor", bound=1))

    # -- JGF kernels ----------------------------------------------------------
    add("moldyn", "race1", "", _rmw("race1", "MolDyn.java:290", bound=4))
    add("moldyn", "race2", "", _rmw("race2", "MolDyn.java:297", bound=10))
    add("montecarlo", "race1", "", _rmw("race1", "MonteCarlo.java:121", bound=10))
    add("raytracer", "race1", "test fail", _rmw("race1", "RayTracer.java:553", bound=1))
    add("raytracer", "race2", "test fail", _rmw("race2", "RayTracer.java:560", bound=1))
    add("raytracer", "race3", "", _rmw("race3", "RayTracer.java:571", bound=1))
    add("raytracer", "race4", "", _rmw("race4", "RayTracer.java:610", bound=1))

    # -- stringbuffer / swing / collections -----------------------------------
    add("stringbuffer", "atomicity1", "exception",
        _pair("atomicity1", "atomicity", "StringBuffer.java:239", "StringBuffer.java:449",
              predicate="t1.sb == t2.this", bound=1),
        desc="paper Figure 3")
    add("swing", "deadlock1", "stall",
        _pair("deadlock1", "deadlock", "RepaintManager.java:390", "RepaintManager.java:705",
              require_lock_tag="BasicCaret"),
        desc="addDirtyRegion0 vs paint cycle; refined per Section 6.3")
    for app in ("synchronizedList", "synchronizedSet"):
        add(app, "atomicity1", "exception",
            _pair("atomicity1", "atomicity", "Client.java:120", "Client.java:88", bound=1))
        add(app, "deadlock1", "stall",
            _pair("deadlock1", "deadlock", "Collections.java:353", "Collections.java:353",
                  predicate="t1.dst == t2.src and t1.src == t2.dst", bound=1))
    add("synchronizedMap", "atomicity1", "",
        _pair("atomicity1", "atomicity", "Client.java:70", "Client.java:55", bound=1))
    add("synchronizedMap", "deadlock1", "stall",
        _pair("deadlock1", "deadlock", "Collections.java:353", "Collections.java:353",
              predicate="t1.dst == t2.src and t1.src == t2.dst", bound=1))

    # -- C/C++ ------------------------------------------------------------
    add("pbzip2", "crash1", "program crash",
        _pair("crash1:cbr1", "conflict", "pbzip2.cpp:1218", "pbzip2.cpp:962",
              predicate="same fifo", bound=1, notes="rendezvous"),
        _pair("crash1:cbr2", "conflict", "pbzip2.cpp:1220", "pbzip2.cpp:963",
              predicate="same fifo", bound=1, notes="free-before-use order"),
        desc="fifo freed under the consumer's last touch")
    add("httpd", "logcorrupt1", "log corruption",
        _rmw("logcorrupt1", "mod_log_config.c:1408", bound=1))
    add("httpd", "crash1", "server crash",
        _pair("crash1:cbr1", "conflict", "core.c:4230", "core.c:3108", bound=1),
        _pair("crash1:cbr2", "conflict", "core.c:4235", "core.c:3118", bound=1),
        _pair("crash1:cbr3", "conflict", "core.c:4242", "core.c:3126", bound=1),
        desc="buffer shrunk between capacity check and staged write")
    add("mysql-4.0.12", "logomit1", "log omission",
        _pair("logomit1:cbr1", "conflict", "sql/log.cc:1802", "sql/log.cc:1471", bound=1),
        _pair("logomit1:cbr2", "conflict", "sql/log.cc:1806", "sql/log.cc:1475", bound=1))
    add("mysql-3.23.56", "logdisorder1", "log disorder",
        _rmw("logdisorder1", "sql/log.cc:912", bound=1))
    add("mysql-4.0.19", "crash1", "server crash",
        _pair("crash1:cbr1", "conflict", "sql/sql_base.cc:1210", "sql/sql_base.cc:550", bound=1),
        _pair("crash1:cbr2", "conflict", "sql/sql_base.cc:1214", "sql/sql_base.cc:561", bound=1),
        _pair("crash1:cbr3", "conflict", "sql/sql_base.cc:1218", "sql/sql_base.cc:565", bound=1))

    # -- bank --------------------------------------------------------------
    add("bank", "lost_update", "test fail",
        _pair("lost_update", "conflict", "bank.py:deposit_fast", "bank.py:deposit",
              predicate="t1.balance == t2.balance", bound=1),
        desc="unsynchronised read-modify-write clobbers a locked deposit")

    # -- large-scale bounded-search subjects -------------------------------
    add("threadpool", "audit_race", "test fail",
        _pair("audit_race", "conflict", "large.py:audit_fast", "large.py:audit",
              predicate="t1.audit == t2.audit", bound=1),
        desc="unguarded audit-counter bump clobbers the supervisor's locked bump")
    add("mesh", "lost_item", "test fail",
        _pair("lost_item", "conflict", "large.py:tally_fast", "large.py:tally",
              predicate="t1.tally == t2.tally", bound=1),
        desc="unguarded item-tally bump clobbers the auditor's locked bump")
    add("connpool", "grow_race", "test fail",
        _pair("grow_race", "conflict", "large.py:spare_fast", "large.py:grow",
              predicate="t1.spare == t2.spare", bound=1),
        desc="unguarded spare-tally bump loses the scaler's grow-by-one")

    # -- figure4 -----------------------------------------------------------
    add("figure4", "error1", "ERROR",
        _pair("error1", "conflict", "Figure4:8", "Figure4:10",
              predicate="t1.o1 == t2.o2", bound=1),
        desc="the paper's hard-to-reach breakpoint (8, 10, t1.o1 == t2.o2)")

    return suites


#: (app name, bug id) -> the attachable breakpoint suite.
SUITES: Dict[Tuple[str, str], BreakpointSuite] = _make()


def suite_for(app: str, bug: str) -> Optional[BreakpointSuite]:
    """The declared breakpoint suite for ``app``/``bug``, or None."""
    return SUITES.get((app, bug))
