"""``swing`` — the ``javax.swing`` RepaintManager / BasicCaret deadlock (422K LoC).

Table 1 rows (the Section 6.2 pause-time study):

===========  ==========  ===========
pause time   probability  overhead
===========  ==========  ===========
100 ms       0.63         521%
1 s          0.99         1230%
===========  ==========  ===========

and the Section 6.3 refinement: ``addDirtyRegion0()`` is called from
*many* contexts, but the deadlock needs the caller to hold a
``BasicCaret`` lock; adding ``isLockTypeHeld(BasicCaret)`` to the local
predicate removes the pauses in all the harmless contexts, cutting the
overhead drastically without losing probability.

Re-created structure: worker threads mutate text components.  Most calls
into ``RepaintManager.addDirtyRegion0`` come from plain contexts (no
caret lock); one comes from the caret-blink path holding the caret's
monitor and then taking the repaint monitor.  The event-dispatch thread
(EDT) paints: it takes the repaint monitor and then the caret's monitor
— the ABBA inversion (JDK bug 6541487-family).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.predicates import SitePolicy
from repro.sim.kernel import Kernel, RunResult
from repro.sim.primitives import SimRLock
from repro.sim.syscalls import Sleep

from .base import BaseApp, BugSpec

__all__ = ["SwingApp", "CARET_SPREAD"]

#: Arrival jitter of the caret path vs the EDT paint: with both uniform
#: over ~0.26 s, a 100 ms pause catches the partner ~0.63 of the time and
#: a 1 s pause ~always — the paper's 0.63 / 0.99.
CARET_SPREAD = 0.26

#: Plain (non-caret) addDirtyRegion calls per worker: each pauses the full
#: timeout when the breakpoint is unrefined, which is where the paper's
#: 521% / 1230% overhead comes from.
PLAIN_CALLS = 15


class SwingApp(BaseApp):
    """Workers repainting text components vs the painting EDT."""

    name = "swing"
    paper_loc = "422K"
    horizon = 120.0
    bugs = {
        "deadlock1": BugSpec(
            id="deadlock1", kind="deadlock", error="stall",
            description="BasicCaret monitor vs RepaintManager monitor ABBA inversion",
            comments="wait=100ms -> ~0.63; wait=1000ms -> ~0.99; "
                     "isLockTypeHeld(BasicCaret) removes non-caret pauses",
        ),
    }

    def policies(self) -> Dict[str, SitePolicy]:
        # Section 6.3 refinement: only pause when a BasicCaret lock is
        # held.  Run with use_policies=False to reproduce the raw Table 1
        # overhead row.
        """Fresh per-bug Section 6.3 refinement policies."""
        return {"deadlock1": SitePolicy(require_lock_tag="BasicCaret")}

    def setup(self, kernel: Kernel) -> None:
        """Build shared state and spawn this subject's threads."""
        self.repaint_monitor = SimRLock("RepaintManager", tag="RepaintManager")
        self.caret_monitor = SimRLock("BasicCaret", tag="BasicCaret")
        self._no_lock = object()  # placeholder "held lock" in plain contexts
        workers = self.param("workers", 3)
        for w in range(workers):
            kernel.spawn(self._worker, w, name=f"worker{w}")
        kernel.spawn(self._caret_blink, name="caret-blinker")
        kernel.spawn(self._edt, name="EDT")

    # ------------------------------------------------------------------
    def _add_dirty_region(self, held_lock) -> object:
        """``RepaintManager.addDirtyRegion0``: breakpoint site + repaint
        monitor acquisition.  ``held_lock`` is whatever monitor the caller
        already holds (``None`` in plain contexts)."""
        yield from self.cb_deadlock(
            "deadlock1",
            held_lock if held_lock is not None else self._no_lock,
            self.repaint_monitor,
            first=True,
            loc="RepaintManager.java:390",
        )
        yield from self.repaint_monitor.acquire(loc="RepaintManager.java:394")
        yield from self.repaint_monitor.release(loc="RepaintManager.java:401")

    def _worker(self, wid: int):
        rng = self.kernel.rng
        # Plain repaint requests: no caret lock held; an unrefined
        # breakpoint pauses at every one of these for the full timeout.
        for _ in range(PLAIN_CALLS):
            yield Sleep(rng.uniform(0.001, 0.012))
            yield from self._add_dirty_region(None)

    def _caret_blink(self):
        """The caret-blink timer: caret monitor, then repaint monitor."""
        rng = self.kernel.rng
        yield Sleep(rng.uniform(0.1, 0.1 + CARET_SPREAD))
        yield from self.caret_monitor.acquire(loc="BasicCaret.java:1302")
        yield from self._add_dirty_region(self.caret_monitor)
        yield from self.caret_monitor.release(loc="BasicCaret.java:1310")

    def _edt(self):
        rng = self.kernel.rng
        # Paint cycle: repaint monitor, then the caret monitor (reverse
        # order).  Arrival jittered against the caret-blink path.
        yield Sleep(rng.uniform(0.1, 0.1 + CARET_SPREAD))
        yield from self.repaint_monitor.acquire(loc="RepaintManager.java:702")
        # The paper's refinement lives only on the addDirtyRegion0 side;
        # the EDT site carries no policy (distinct policy key).
        yield from self.cb_deadlock(
            "deadlock1", self.repaint_monitor, self.caret_monitor, first=False,
            loc="RepaintManager.java:705", policy_key="deadlock1:edt",
        )
        yield from self.caret_monitor.acquire(loc="RepaintManager.java:706")
        yield from self.caret_monitor.release(loc="RepaintManager.java:708")
        yield from self.repaint_monitor.release(loc="RepaintManager.java:710")

    def oracle(self, result: RunResult) -> Optional[str]:
        """Classify the run's symptom, or None for a clean run."""
        return "stall" if result.stall_or_deadlock else None
