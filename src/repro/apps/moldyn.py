"""``moldyn`` — the Java Grande molecular-dynamics kernel (1,290 LoC).

Table 1 rows: two silent data races with bounded breakpoints
(``race1``, comment ``bound=4``; ``race2``, comment ``bound=10``).

JGF MolDyn partitions particle pairs across threads; each iteration the
threads compute partial forces and then fold their partial potential
energy (``epot``) and virial (``vir``) into shared accumulators — in the
original, with insufficient synchronisation.  The accumulation is a plain
read-modify-write, so concurrent folds lose terms.

The races fire at *every* iteration once forced, so the paper bounds the
breakpoints (Section 6.3's ``triggers < bound``): reproduce the race a
few times, then stop pausing.  The app's oracle compares the final
accumulators with the deterministic serial sums.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.predicates import SitePolicy
from repro.sim.kernel import Kernel, RunResult
from repro.sim.memory import SharedCell
from repro.sim.primitives import SimBarrier
from repro.sim.syscalls import Sleep

from .base import BaseApp, BugSpec

__all__ = ["MoldynApp"]


class MoldynApp(BaseApp):
    """Two simulation threads, iterating force computation + accumulation."""

    name = "moldyn"
    paper_loc = "1,290"
    bugs = {
        "race1": BugSpec(
            id="race1", kind="race", error="",
            description="epot accumulation RMW race across threads",
            comments="bound=4",
        ),
        "race2": BugSpec(
            id="race2", kind="race", error="",
            description="virial accumulation RMW race across threads",
            comments="bound=10",
        ),
    }

    def policies(self) -> Dict[str, SitePolicy]:
        """Fresh per-bug Section 6.3 refinement policies."""
        return {
            "race1": SitePolicy(bound=self.param("race1_bound", 4)),
            "race2": SitePolicy(bound=self.param("race2_bound", 10)),
        }

    def setup(self, kernel: Kernel) -> None:
        """Build shared state and spawn this subject's threads."""
        n_threads = self.param("threads", 2)
        self.iterations = self.param("iterations", 24)
        self.particles = self.param("particles", 64)
        rng = np.random.default_rng(12345)  # fixed: workload, not schedule
        self.positions = rng.random((self.particles, 3))
        self.epot = SharedCell(0.0, name="epot")
        self.vir = SharedCell(0.0, name="vir")
        self.barrier = SimBarrier(n_threads, name="iter_barrier")
        self.expected_epot = 0.0
        self.expected_vir = 0.0
        # Precompute per-thread partials so the expected serial totals
        # are known exactly.
        self._partials = []
        for tid in range(n_threads):
            slice_pos = self.positions[tid::n_threads]
            e = float(np.sum(slice_pos**2))
            v = float(np.sum(np.abs(slice_pos)))
            self._partials.append((e, v))
            self.expected_epot += e * self.iterations
            self.expected_vir += v * self.iterations
        for tid in range(n_threads):
            kernel.spawn(self._sim_thread, tid, name=f"mdrunner{tid}")

    def _sim_thread(self, tid: int):
        e_part, v_part = self._partials[tid]
        rng = self.kernel.rng
        for _ in range(self.iterations):
            # Force computation: pure NumPy between yields (atomic), with
            # jittered virtual duration to stagger the accumulations.
            yield Sleep(rng.uniform(0.0005, 0.005))
            # epot fold: read-modify-write with the race1 breakpoint
            # between read and write — a partner parked here too holds a
            # stale value, so the lost update is certain.
            e = yield from self.epot.get(loc="MolDyn.java:290")
            yield from self.cb_conflict("race1", self.epot, first=True, loc="MolDyn.java:290")
            yield from self.epot.set(e + e_part, loc="MolDyn.java:291")
            # virial fold: same shape (race2).
            v = yield from self.vir.get(loc="MolDyn.java:297")
            yield from self.cb_conflict("race2", self.vir, first=True, loc="MolDyn.java:297")
            yield from self.vir.set(v + v_part, loc="MolDyn.java:298")
        # One phase barrier at the end (the JGF kernel synchronises
        # coarsely around the timed region): within the phase the threads
        # drift apart, which is what makes an *unbounded* breakpoint at
        # the fold sites expensive — each match re-synchronises the
        # threads, charging the accumulated skew (Section 6.3).
        yield from self.barrier.wait(loc="MolDyn.java:305")

    def oracle(self, result: RunResult) -> Optional[str]:
        """Classify the run's symptom, or None for a clean run."""
        if self.epot.peek() < self.expected_epot - 1e-9:
            return "lost epot update"
        if self.vir.peek() < self.expected_vir - 1e-9:
            return "lost virial update"
        return None
