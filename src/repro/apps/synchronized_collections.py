"""``synchronizedList`` / ``synchronizedMap`` / ``synchronizedSet``.

Table 1 rows for ``java.util.Collections$SynchronizedList`` (backed by an
``ArrayList``), ``$SynchronizedMap`` (backed by a ``LinkedHashMap``) and
``$SynchronizedSet``.  Each wrapper synchronizes individual methods on an
internal mutex, which leaves two classic Heisenbugs:

* **atomicity1** — compound operations are not atomic.  For the list, a
  ``size()``-then-``get(i)`` iteration races with a concurrent ``clear``:
  ``get`` throws ``IndexOutOfBounds`` (paper error: *exception*).  For
  the map, ``containsKey``-then-``get`` races with ``remove``: the read
  silently yields a stale ``None`` (paper error column: blank).  For the
  set, an ``addAll`` iterating the source races with removal:
  *exception*.
* **deadlock1** — ``addAll(other)`` locks the destination then the
  source; two threads cross-copying two collections invert the order
  (paper error: *stall*).

The atomicity breakpoint pairs the mutating site (first action) with the
compound reader's mid-point; the deadlock breakpoint is the usual
``DeadlockTrigger`` pair at the nested-acquisition sites.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.predicates import SitePolicy
from repro.sim.kernel import Kernel, RunResult
from repro.sim.memory import SharedCell
from repro.sim.primitives import SimRLock
from repro.sim.syscalls import BeginAtomic, EndAtomic, Sleep

from .base import BaseApp, BugSpec

__all__ = ["SynchronizedListApp", "SynchronizedMapApp", "SynchronizedSetApp"]


class SyncCollection:
    """Base synchronized wrapper: a mutex plus an observable size cell."""

    def __init__(self, name: str, kind: str) -> None:
        self.mutex = SimRLock(name=f"{name}.mutex", tag=f"Synchronized{kind}")
        self.size = SharedCell(0, name=f"{name}.size")
        self.items: list = []
        self.name = name

    def _loc(self, line: int) -> str:
        return f"Collections.java:{line}"

    def add(self, item):
        """Append an item and bump the size cell, under the mutex."""
        yield from self.mutex.acquire(loc=self._loc(310))
        self.items.append(item)
        n = yield from self.size.get(loc=self._loc(310))
        yield from self.size.set(n + 1, loc=self._loc(310))
        yield from self.mutex.release(loc=self._loc(310))

    def clear(self):
        """Empty the collection and zero the size cell, under the mutex."""
        yield from self.mutex.acquire(loc=self._loc(330))
        self.items.clear()
        yield from self.size.set(0, loc=self._loc(330))
        yield from self.mutex.release(loc=self._loc(330))

    def get_size(self):
        """Synchronized ``size()``: read the size cell under the mutex."""
        yield from self.mutex.acquire(loc=self._loc(305))
        n = yield from self.size.get(loc=self._loc(305))
        yield from self.mutex.release(loc=self._loc(305))
        return n

    def get_at(self, i: int):
        """Synchronized ``get(i)``; raises IndexError past the size."""
        yield from self.mutex.acquire(loc=self._loc(320))
        try:
            n = yield from self.size.get(loc=self._loc(320))
            if i >= n or i >= len(self.items):
                raise IndexError(f"IndexOutOfBounds: {i} >= {n}")
            return self.items[i]
        finally:
            yield from self.mutex.release(loc=self._loc(320))

    def add_all(self, app: BaseApp, other: "SyncCollection", bug_id: str = "deadlock1"):
        """Copy ``other`` into self: dest mutex, then source mutex (the
        inversion-prone nesting)."""
        yield from self.mutex.acquire(loc=self._loc(352))
        # Breakpoint between the two acquisitions: lock1 is held, lock2 is
        # about to be acquired (paper Figure 9's placement).  Once both
        # sides are released each blocks on the other's mutex: deadlock.
        yield from app.cb_deadlock(
            bug_id, self.mutex, other.mutex, first=self.name < other.name, loc=self._loc(353)
        )
        yield from other.mutex.acquire(loc=self._loc(353))
        for item in other.items:
            self.items.append(item)
        n = yield from self.size.get(loc=self._loc(354))
        yield from self.size.set(n + len(other.items), loc=self._loc(354))
        yield from other.mutex.release(loc=self._loc(353))
        yield from self.mutex.release(loc=self._loc(352))


class _CollectionsAppBase(BaseApp):
    """Shared workload: compound-reader vs mutator, and cross addAll."""

    collection_kind = "List"

    bugs = {
        "atomicity1": BugSpec(
            id="atomicity1",
            kind="atomicity",
            error="exception",
            description="size()/get(i) iteration races with clear()",
        ),
        "deadlock1": BugSpec(
            id="deadlock1",
            kind="deadlock",
            error="stall",
            description="cross addAll lock-order inversion",
        ),
    }

    def policies(self) -> Dict[str, SitePolicy]:
        return {"atomicity1": SitePolicy(bound=1), "deadlock1": SitePolicy(bound=1)}

    def setup(self, kernel: Kernel) -> None:
        kind = self.collection_kind
        self.c1 = SyncCollection("c1", kind)
        self.c2 = SyncCollection("c2", kind)
        for i in range(self.param("initial_items", 6)):
            self.c1.items.append(i)
            self.c2.items.append(i * 10)
        self.c1.size.poke(len(self.c1.items))
        self.c2.size.poke(len(self.c2.items))
        bug = self.cfg.bug
        if bug == "deadlock1":
            kernel.spawn(self._crosser, self.c1, self.c2, name="crosser1")
            kernel.spawn(self._crosser, self.c2, self.c1, name="crosser2")
        else:
            kernel.spawn(self._iterator, name="iterator")
            kernel.spawn(self._mutator, name="mutator")

    # -- atomicity workload -------------------------------------------------
    def _iterator(self):
        rounds = self.param("rounds", 4)
        for _ in range(rounds):
            yield Sleep(self.kernel.rng.uniform(0.0005, 0.003))
            yield BeginAtomic("iterate")
            try:
                n = yield from self.c1.get_size()
                for i in range(n):
                    # Breakpoint site: between the size read and each get.
                    yield from self.cb_conflict(
                        "atomicity1", self.c1, first=False,
                        loc="Client.java:88", atomicity=True,
                    )
                    yield from self.c1.get_at(i)
            except IndexError:
                self.note_error("exception")
            yield EndAtomic("iterate")
            # Refill for the next round.
            for _ in range(3):
                yield from self.c1.add(0)

    def _mutator(self):
        rounds = self.param("rounds", 4)
        for _ in range(rounds):
            yield Sleep(self.kernel.rng.uniform(0.001, 0.008))
            yield from self.cb_conflict(
                "atomicity1", self.c1, first=True, loc="Client.java:120", atomicity=True
            )
            yield from self.c1.clear()

    # -- deadlock workload ---------------------------------------------------
    def _crosser(self, dst: SyncCollection, src: SyncCollection):
        yield Sleep(self.kernel.rng.uniform(0.0, 0.002))
        yield from dst.add_all(self, src)

    def oracle(self, result: RunResult) -> Optional[str]:
        if self.cfg.bug == "deadlock1" or (self.cfg.bug is None and result.deadlocked):
            return "stall" if result.stall_or_deadlock else None
        if any(sym == "exception" for _, sym in self.errors):
            return "exception"
        if any(isinstance(f.exc, IndexError) for f in result.failures):
            return "exception"
        return None


class SynchronizedListApp(_CollectionsAppBase):
    """``Collections$SynchronizedList`` backed by an ``ArrayList``."""

    name = "synchronizedList"
    paper_loc = "7,913"
    collection_kind = "List"


class SynchronizedSetApp(_CollectionsAppBase):
    """``Collections$SynchronizedSet``: same wrapper, set-shaped client."""

    name = "synchronizedSet"
    paper_loc = "8,626"
    collection_kind = "Set"


class SynchronizedMapApp(_CollectionsAppBase):
    """``Collections$SynchronizedMap`` backed by a ``LinkedHashMap``.

    The compound operation is ``containsKey`` followed by ``get``; a
    concurrent ``remove`` makes ``get`` return a stale ``None``.  No
    exception is thrown (the paper's error column is blank) — the oracle
    observes the stale read directly.
    """

    name = "synchronizedMap"
    paper_loc = "8,626"
    collection_kind = "Map"

    bugs = {
        "atomicity1": BugSpec(
            id="atomicity1",
            kind="atomicity",
            error="",
            description="containsKey()/get() races with remove(): stale None",
        ),
        "deadlock1": BugSpec(
            id="deadlock1",
            kind="deadlock",
            error="stall",
            description="cross putAll lock-order inversion",
        ),
    }

    def setup(self, kernel: Kernel) -> None:
        """Spawn the map-shaped reader/mutator workload."""
        if self.cfg.bug == "deadlock1":
            super().setup(kernel)
            return
        self.map_mutex = SimRLock(name="map.mutex", tag="SynchronizedMap")
        self.present = SharedCell(True, name="map.key_present")
        self.store: Dict[str, int] = {"k": 42}
        kernel.spawn(self._reader, name="reader")
        kernel.spawn(self._remover, name="remover")

    def _contains_key(self):
        yield from self.map_mutex.acquire(loc="Collections.java:402")
        p = yield from self.present.get(loc="Collections.java:402")
        yield from self.map_mutex.release(loc="Collections.java:402")
        return p

    def _get(self):
        yield from self.map_mutex.acquire(loc="Collections.java:410")
        p = yield from self.present.get(loc="Collections.java:410")
        value = self.store.get("k") if p else None
        yield from self.map_mutex.release(loc="Collections.java:410")
        return value

    def _remove(self):
        yield from self.map_mutex.acquire(loc="Collections.java:420")
        yield from self.present.set(False, loc="Collections.java:420")
        self.store.pop("k", None)
        yield from self.map_mutex.release(loc="Collections.java:420")

    def _reader(self):
        rounds = self.param("rounds", 4)
        for _ in range(rounds):
            yield Sleep(self.kernel.rng.uniform(0.0005, 0.003))
            yield BeginAtomic("checked-get")
            present = yield from self._contains_key()
            if present:
                yield from self.cb_conflict(
                    "atomicity1", self.map_mutex, first=False,
                    loc="Client.java:55", atomicity=True,
                )
                value = yield from self._get()
                if value is None:
                    self.note_error("stale read")
            yield EndAtomic("checked-get")

    def _remover(self):
        yield Sleep(self.kernel.rng.uniform(0.001, 0.01))
        yield from self.cb_conflict(
            "atomicity1", self.map_mutex, first=True, loc="Client.java:70", atomicity=True
        )
        yield from self._remove()

    def oracle(self, result: RunResult) -> Optional[str]:
        """Classify the run's symptom, or None for a clean run."""
        if self.cfg.bug == "deadlock1" or (self.cfg.bug is None and result.deadlocked):
            return "stall" if result.stall_or_deadlock else None
        if any(sym == "stale read" for _, sym in self.errors):
            return "stale read"
        return None
