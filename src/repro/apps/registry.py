"""Registry of all benchmark applications.

Maps app names to classes and partitions them the way the paper's
evaluation does: Table 1 (Java programs and libraries) and Table 2
(C/C++ programs, measured as mean-time-to-error).
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Type

from .bank import BankApp
from .base import BaseApp
from .cache4j import Cache4jApp
from .figure4 import Figure4App
from .hedc import HedcApp
from .httpd import HttpdApp
from .jigsaw import JigsawApp
from .large import ConnPoolApp, MeshApp, ThreadPoolApp
from .log4j import Log4jApp
from .logging_app import LoggingApp
from .lucene import LuceneApp
from .moldyn import MoldynApp
from .montecarlo_app import MonteCarloApp
from .mysql import MySQL32356App, MySQL4012App, MySQL4019App
from .pbzip2 import Pbzip2App
from .pool import PoolApp
from .raytracer import RayTracerApp
from .stringbuffer import StringBufferApp
from .swing import SwingApp
from .synchronized_collections import (
    SynchronizedListApp,
    SynchronizedMapApp,
    SynchronizedSetApp,
)

__all__ = ["JAVA_APPS", "C_APPS", "ALL_APPS", "get_app", "table1_bugs", "table2_bugs"]

#: The 15 Java subjects of Table 1 (paper order).
JAVA_APPS: Dict[str, Type[BaseApp]] = {
    cls.name: cls
    for cls in (
        Cache4jApp,
        HedcApp,
        JigsawApp,
        Log4jApp,
        LoggingApp,
        LuceneApp,
        MoldynApp,
        MonteCarloApp,
        PoolApp,
        RayTracerApp,
        StringBufferApp,
        SwingApp,
        SynchronizedListApp,
        SynchronizedMapApp,
        SynchronizedSetApp,
    )
}

#: The C/C++ subjects of Table 2.
C_APPS: Dict[str, Type[BaseApp]] = {
    cls.name: cls for cls in (Pbzip2App, HttpdApp, MySQL4012App, MySQL32356App, MySQL4019App)
}

#: Everything explorable/runnable by name: the table subjects plus the
#: Figure 4 walkthrough, the untimed ``bank`` exploration subject, and
#: the large-scale bounded-search subjects (:mod:`repro.apps.large`).
ALL_APPS: Dict[str, Type[BaseApp]] = {
    **JAVA_APPS,
    **C_APPS,
    Figure4App.name: Figure4App,
    BankApp.name: BankApp,
    ThreadPoolApp.name: ThreadPoolApp,
    MeshApp.name: MeshApp,
    ConnPoolApp.name: ConnPoolApp,
}


def get_app(name: str) -> Type[BaseApp]:
    """Look up a registered app class by name (KeyError if unknown)."""
    try:
        return ALL_APPS[name]
    except KeyError:
        raise KeyError(f"unknown app {name!r}; known: {sorted(ALL_APPS)}") from None


def _table_bugs(apps: Dict[str, Type[BaseApp]], internal_prefixes: Tuple[str, ...]) -> List[Tuple[str, str]]:
    rows: List[Tuple[str, str]] = []
    for name, cls in apps.items():
        for bug_id in cls.bugs:
            if any(bug_id.startswith(p) for p in internal_prefixes):
                continue
            rows.append((name, bug_id))
    return rows


def table1_bugs() -> List[Tuple[str, str]]:
    """(app, bug) pairs forming the Table 1 rows.

    The log4j ``pair_*`` bug ids are Section 5 probes, not Table 1 rows,
    so they are excluded here.
    """
    return _table_bugs(JAVA_APPS, ("pair_",))


def table2_bugs() -> List[Tuple[str, str]]:
    """(app, bug) pairs forming the Table 2 rows."""
    return _table_bugs(C_APPS, ())
