"""Untimed lost-update subject for systematic exploration.

Every Table 1/2 re-creation drives its workload with virtual-time sleeps
(think-time, retry backoff), which the DPOR explorer rejects — timed
steps do not commute with the clock.  This small subject re-creates the
classic bank-account lost update with *no timed operations at all*, so
it is the registry's reference target for ``repro explore --dpor``
(and the sleep-set reduction the exploration tests measure: each
teller's private scratch work is independent of the other teller,
which is exactly the commutativity sleep sets exploit).

The bug: each teller posts ``iters`` deposits to the shared balance
under the ledger lock, except one deposit on a hot path that skips the
lock (the classic "it's just one increment" shortcut).  The unguarded
read-modify-write races with every other deposit; when another teller's
update lands inside the window, the stale write loses it.  The racy
iteration differs per teller, so under random scheduling the windows
rarely align — a proper Heisenbug — while systematic exploration
enumerates the losing interleavings deterministically.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.kernel import Kernel, RunResult
from repro.sim.memory import SharedCell
from repro.sim.primitives import SimLock

from .base import BaseApp, BugSpec

__all__ = ["BankApp"]


class BankApp(BaseApp):
    """Concurrent transfers with a lost-update window; the untimed DPOR subject.
    """
    name = "bank"
    paper_loc = "-"
    horizon = 30.0
    bugs: Dict[str, BugSpec] = {
        "lost_update": BugSpec(
            id="lost_update",
            kind="race",
            error="test fail",
            description="unguarded deposit on the hot path races with "
            "locked deposits; a stale write loses an update",
            comments="untimed subject; explorable with repro explore --dpor",
            oracle_mode="error",
        ),
    }

    def setup(self, kernel: Kernel) -> None:
        """Spawn the transfer threads over the shared accounts."""
        tellers = self.param("tellers", 2)
        iters = self.param("iters", 3)
        amount = self.param("amount", 10)
        fee_work = self.param("fee_work", 1)
        self.balance = SharedCell(0, name="balance")
        self.expected = tellers * iters * amount
        ledger = SimLock("ledger")

        def teller(me: int, scratch: SharedCell):
            # Only teller 0 has the unguarded hot path, and only on its
            # first deposit: one narrow get->set window per run, so the
            # other teller's (properly locked!) writes rarely land
            # inside it under noise.  The unguarded RMW defeats
            # everyone's locking, which is the classic shape of this
            # bug: the lock-respecting teller loses updates too.
            racy = me == 0

            def fees():
                # Private fee tally: touches only this teller's scratch
                # cell (independent of the other teller).  ``fee_work``
                # widens it, diluting the racy window under random
                # scheduling without adding contention.
                for _ in range(fee_work):
                    v = yield from scratch.get()
                    yield from scratch.set(v + 1)

            def body():
                for i in range(iters):
                    if racy and i == 0:
                        # Hot path runs before the fee tally: by the
                        # time the other teller has worked through its
                        # own fees to a deposit, this window is long
                        # gone — unless the scheduler hands it every
                        # slot in a row (or a breakpoint holds it open).
                        b = yield from self.balance.get(loc="bank.py:deposit_fast")
                        yield from self.cb_conflict(
                            "lost_update",
                            self.balance,
                            first=True,
                            loc="bank.py:deposit_fast",
                        )
                        yield from self.balance.set(b + amount, loc="bank.py:deposit_fast")
                        yield from fees()
                        continue
                    yield from fees()
                    yield from ledger.acquire()
                    b = yield from self.balance.get(loc="bank.py:deposit")
                    if me == 1 and i == 0:
                        yield from self.cb_conflict(
                            "lost_update",
                            self.balance,
                            first=False,
                            loc="bank.py:deposit",
                        )
                    yield from self.balance.set(b + amount, loc="bank.py:deposit")
                    yield from ledger.release()

            return body

        for me in range(tellers):
            scratch = SharedCell(0, name=f"scratch{me}")
            kernel.spawn(teller(me, scratch), name=f"teller{me}")

    def oracle(self, result: RunResult) -> Optional[str]:
        """Check conservation of the total balance at end of run."""
        if result.deadlocked:
            return "stall"
        if self.balance.peek() != self.expected:
            return "lost-update"
        return None
