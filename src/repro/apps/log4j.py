"""``log4j`` 1.2.13 — the AsyncAppender missed notification (32,095 LoC).

This is the paper's Methodology II case study (Section 5).  The stress
scenario: appender threads push logging events through an
``AsyncAppender`` whose ``Dispatcher`` thread drains them; an admin
thread reconfigures the buffer size near the end of the run.  In roughly
5/100 stress executions the system stalls.

The defect: the dispatcher's idle path checks "anything buffered /
reconfiguration pending?" *outside* the monitor, does some idle
bookkeeping, and then waits — without re-checking under the monitor.  A
``setBufferSize`` whose ``notify`` lands inside that check-to-wait window
is lost, and since the appenders have already finished, nothing ever
wakes the dispatcher: ``close`` is stuck in ``join``, the whole system
stalls.

The conflict detector reports four lock contentions on the appender
monitor (paper Section 5, step 2):

* line 100 — ``append``'s synchronized block,
* line 236 — ``setBufferSize``'s synchronized block,
* line 277 — ``close``'s synchronized block,
* line 309 — the dispatcher's synchronized wait/drain block.

Each pair becomes a concurrent breakpoint, probed in both resolution
orders (``flip_order``), giving the Section 5 table: only the
``236 -> 309`` order stalls deterministically with the breakpoint hit;
the ``277/309`` pair *amplifies* the stall without the breakpoint being
reached (the pause at 309 widens the lost-wakeup window); the other
pairs are harmless.

Bug ids: ``pair_100_309``, ``pair_236_309``, ``pair_100_236``,
``pair_277_309`` (Section 5 experiments), ``missed-notify1`` (the
Table 1 row — identical to ``pair_236_309`` in forward order), and
``deadlock1`` (a separate ABBA inversion between the AsyncAppender and
its downstream appender, also in Table 1).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.predicates import SitePolicy
from repro.sim.kernel import Kernel, RunResult
from repro.sim.memory import SharedCell
from repro.sim.primitives import SimCondition, SimRLock
from repro.sim.syscalls import Join, Sleep

from .base import BaseApp, BugSpec

__all__ = ["Log4jApp", "SECTION5_PAIRS"]

#: The Section 5 experiment grid: (bug id, flip_order) -> table row label.
SECTION5_PAIRS = [
    ("pair_100_309", False, "100 -> 309"),
    ("pair_100_309", True, "309 -> 100"),
    ("pair_236_309", False, "236 -> 309"),
    ("pair_236_309", True, "309 -> 236"),
    ("pair_100_236", False, "100 -> 236"),
    ("pair_100_236", True, "236 -> 100"),
    ("pair_277_309", True, "309 -> 277"),
    ("pair_277_309", False, "277 -> 309"),
]


def _pair_spec(bug_id: str, desc: str) -> BugSpec:
    return BugSpec(
        id=bug_id, kind="missed-notify", error="stall",
        description=desc, comments="Meth. II", methodology=2,
    )


class Log4jApp(BaseApp):
    """AsyncAppender + Dispatcher + reconfiguring admin."""

    name = "log4j"
    paper_loc = "32,095"
    bugs = {
        "missed-notify1": _pair_spec(
            "missed-notify1",
            "setBufferSize notify lost in the dispatcher's check-to-wait window",
        ),
        "pair_100_309": _pair_spec("pair_100_309", "append vs dispatcher contention"),
        "pair_236_309": _pair_spec("pair_236_309", "setBufferSize vs dispatcher contention"),
        "pair_100_236": _pair_spec("pair_100_236", "append vs setBufferSize contention"),
        "pair_277_309": _pair_spec("pair_277_309", "close vs dispatcher contention"),
        "deadlock1": BugSpec(
            id="deadlock1", kind="deadlock", error="stall",
            description="AsyncAppender monitor vs downstream appender monitor inversion",
        ),
    }

    def policies(self) -> Dict[str, SitePolicy]:
        """Fresh per-bug Section 6.3 refinement policies."""
        return {
            "missed-notify1": SitePolicy(bound=1),
            "pair_100_309": SitePolicy(bound=1),
            "pair_236_309": SitePolicy(bound=1),
            "pair_100_236": SitePolicy(bound=1),
            # pair_277_309 keeps pausing: its whole effect in the paper is
            # repeated perturbation of the dispatcher's window.
            "deadlock1": SitePolicy(bound=1),
        }

    # ------------------------------------------------------------------
    def setup(self, kernel: Kernel) -> None:
        """Build shared state and spawn this subject's threads."""
        self.monitor = SimRLock("AsyncAppender.buffer", tag="AsyncAppender")
        self.events_cond = SimCondition(self.monitor, name="buffer.events")
        self.buffer: List[object] = []
        self.buffer_count = SharedCell(0, name="buffer.count")
        self.reconfig_pending = SharedCell(False, name="aa.reconfig_pending")
        self.reconfig_applied = False
        self.buffer_size = 32
        self.processed = 0
        self.closed = False

        if self.cfg.bug == "deadlock1":
            self._setup_deadlock(kernel)
            return

        appenders = self.param("appenders", 2)
        self.events_per_appender = self.param("events", 4)
        # expected = burst + one straggler event
        self.expected = appenders * self.events_per_appender + 1
        for a in range(appenders):
            kernel.spawn(self._appender, a, name=f"appender{a}")
        kernel.spawn(self._straggler, name="straggler")
        self.dispatcher = kernel.spawn(self._dispatcher, name="Dispatcher")
        kernel.spawn(self._admin, name="admin")

    # -- the append path (line 100) -------------------------------------
    def _append(self, event: object):
        yield from self.cb_conflict("pair_100_309", self.monitor, first=True,
                                    loc="AsyncAppender.java:100")
        yield from self.cb_conflict("pair_100_236", self.monitor, first=True,
                                    loc="AsyncAppender.java:100")
        yield from self.monitor.acquire(loc="AsyncAppender.java:100")
        self.buffer.append(event)
        n = yield from self.buffer_count.get(loc="AsyncAppender.java:105")
        yield from self.buffer_count.set(n + 1, loc="AsyncAppender.java:105")
        yield from self.events_cond.notify(loc="AsyncAppender.java:107")
        yield from self.monitor.release(loc="AsyncAppender.java:110")

    def _appender(self, aid: int):
        rng = self.kernel.rng
        for i in range(self.events_per_appender):
            yield Sleep(rng.uniform(0.001, 0.04))
            yield from self._append(f"event{aid}.{i}")

    def _straggler(self):
        """One late event, so the append site is still live near the end
        of the burst (the 100/236 contention the detector reports)."""
        rng = self.kernel.rng
        yield Sleep(rng.uniform(0.03, 0.06))
        yield from self._append("straggler-event")

    # -- the dispatcher (line 309) ----------------------------------------
    def _dispatcher(self):
        rng = self.kernel.rng
        while True:
            if self.processed >= self.expected and self.reconfig_applied:
                break
            # Unsynchronised fast-path check: the first half of the bug.
            buffered = yield from self.buffer_count.get(loc="AsyncAppender.java:305")
            pending = yield from self.reconfig_pending.get(loc="AsyncAppender.java:306")
            if buffered == 0 and not pending:
                # Idle bookkeeping: the check-to-wait window.
                yield Sleep(rng.uniform(0.0, 0.004))
                # The breakpoints probing this site.  Following the
                # paper's Methodology II precision step ("add more
                # context under which the breakpoint should reach"), the
                # 236/309 and 277/309 probes are refined to the *final*
                # idle — pausing at interim idles merely perturbs the
                # burst.  The 100/309 probe stays unrefined: its partner
                # site is live during the burst.
                yield from self.cb_conflict("pair_100_309", self.monitor, first=False,
                                            loc="AsyncAppender.java:309")
                for pair in ("pair_236_309", "pair_277_309", "missed-notify1"):
                    yield from self.cb_conflict(
                        pair, self.monitor, first=False, loc="AsyncAppender.java:309",
                        local=lambda: self.processed >= self.expected,
                    )
                yield from self.monitor.acquire(loc="AsyncAppender.java:309")
                # BUG: no re-check of buffer/reconfig under the monitor.
                yield from self.events_cond.wait(loc="AsyncAppender.java:310")
                yield from self.monitor.release(loc="AsyncAppender.java:312")
                continue
            # Drain under the monitor.
            yield from self.monitor.acquire(loc="AsyncAppender.java:317")
            drained = list(self.buffer)
            self.buffer.clear()
            yield from self.buffer_count.set(0, loc="AsyncAppender.java:319")
            pending = yield from self.reconfig_pending.get(loc="AsyncAppender.java:321")
            if pending:
                yield from self.reconfig_pending.set(False, loc="AsyncAppender.java:322")
                self.reconfig_applied = True
            yield from self.monitor.release(loc="AsyncAppender.java:325")
            for _event in drained:
                yield Sleep(0.002)  # format + forward downstream
                self.processed += 1

    # -- the admin: setBufferSize (236) then close (277) -------------------
    def _admin(self):
        rng = self.kernel.rng
        yield Sleep(rng.uniform(0.09, 0.16))
        # setBufferSize (line 236).
        yield from self.cb_conflict("pair_236_309", self.monitor, first=True,
                                    loc="AsyncAppender.java:236")
        yield from self.cb_conflict("pair_100_236", self.monitor, first=False,
                                    loc="AsyncAppender.java:236")
        yield from self.cb_conflict("missed-notify1", self.monitor, first=True,
                                    loc="AsyncAppender.java:236")
        yield from self.monitor.acquire(loc="AsyncAppender.java:236")
        self.buffer_size = 16
        yield from self.reconfig_pending.set(True, loc="AsyncAppender.java:238")
        yield from self.events_cond.notify(loc="AsyncAppender.java:240")
        yield from self.monitor.release(loc="AsyncAppender.java:243")
        # close() joins the dispatcher, then tears down (line 277).
        yield Join(self.dispatcher)
        yield from self.cb_conflict("pair_277_309", self.monitor, first=True,
                                    loc="AsyncAppender.java:277")
        yield from self.monitor.acquire(loc="AsyncAppender.java:277")
        self.closed = True
        yield from self.events_cond.notify(loc="AsyncAppender.java:279")
        yield from self.monitor.release(loc="AsyncAppender.java:281")

    # -- deadlock1 scenario --------------------------------------------------
    def _setup_deadlock(self, kernel: Kernel) -> None:
        self.downstream = SimRLock("FileAppender", tag="FileAppender")
        kernel.spawn(self._dl_appender, name="appender")
        kernel.spawn(self._dl_closer, name="closer")

    def _dl_appender(self):
        rng = self.kernel.rng
        for _ in range(4):
            yield Sleep(rng.uniform(0.0005, 0.006))
            yield from self.monitor.acquire(loc="AsyncAppender.java:100")
            yield from self.cb_deadlock(
                "deadlock1", self.monitor, self.downstream, first=True,
                loc="AsyncAppender.java:118",
            )
            yield from self.downstream.acquire(loc="FileAppender.java:162")
            yield from self.downstream.release(loc="FileAppender.java:170")
            yield from self.monitor.release(loc="AsyncAppender.java:121")

    def _dl_closer(self):
        rng = self.kernel.rng
        yield Sleep(rng.uniform(0.002, 0.015))
        yield from self.downstream.acquire(loc="FileAppender.java:210")
        yield from self.cb_deadlock(
            "deadlock1", self.downstream, self.monitor, first=False,
            loc="FileAppender.java:214",
        )
        yield from self.monitor.acquire(loc="AsyncAppender.java:277")
        yield from self.monitor.release(loc="AsyncAppender.java:280")
        yield from self.downstream.release(loc="FileAppender.java:220")

    # ------------------------------------------------------------------
    def oracle(self, result: RunResult) -> Optional[str]:
        """Classify the run's symptom, or None for a clean run."""
        return "stall" if result.stall_or_deadlock else None
