"""``pbzip2`` 0.9.4 — parallel bzip2's use-after-free crash (2.0K LoC).

Table 2 row: *program crash* (null pointer dereference), MTTE 1.2 s,
**2 concurrent breakpoints**.

The real bug: ``main`` tears down the block FIFO once the output count
matches the number of produced blocks, but a consumer thread increments
the output count *before* its final touch of the queue; if the teardown
lands in that window the consumer dereferences a freed queue — segfault.

Reproduction needs two breakpoints (the paper's #CBR = 2):

* ``crash1:cbr1`` — rendezvous: park the consumer in its
  increment-to-last-touch window until ``main`` finishes its
  completion poll, so the dangerous states actually coincide;
* ``crash1:cbr2`` — ordering: ``main``'s free executes before the
  consumer's final queue access.

Either alone leaves the outcome to the scheduler; together the crash is
deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.predicates import SitePolicy
from repro.sim.kernel import Kernel, RunResult
from repro.sim.memory import SharedCell
from repro.sim.primitives import SimCondition, SimRLock
from repro.sim.syscalls import Sleep

from .base import BaseApp, BugSpec

__all__ = ["Pbzip2App"]


class _Fifo:
    """The block FIFO: a monitor-protected deque that can be *freed*."""

    def __init__(self) -> None:
        self.monitor = SimRLock("fifo.mutex", tag="queue")
        self.not_empty = SimCondition(self.monitor, name="fifo.not_empty")
        self.blocks: List[bytes] = []
        self.freed = False

    def touch(self) -> None:
        """Any access after free is the crash (NULL mutex dereference)."""
        if self.freed:
            raise RuntimeError("SIGSEGV: dereference of freed fifo (null mutex)")


class Pbzip2App(BaseApp):
    """Producer / consumer / main teardown, per pbzip2's architecture."""

    name = "pbzip2"
    paper_loc = "2.0K"
    horizon = 30.0
    bugs = {
        "crash1": BugSpec(
            id="crash1", kind="crash", error="program crash",
            description="fifo freed by main while a consumer's last touch is in flight",
            comments="null pointer dereference", n_breakpoints=2,
        ),
    }

    def policies(self) -> Dict[str, SitePolicy]:
        """Fresh per-bug Section 6.3 refinement policies."""
        return {"crash1:cbr1": SitePolicy(bound=1), "crash1:cbr2": SitePolicy(bound=1)}

    def setup(self, kernel: Kernel) -> None:
        """Build shared state and spawn this subject's threads."""
        self.fifo = _Fifo()
        self.blocks_total = self.param("blocks", 6)
        self.block_time = self.param("block_time", 0.03)
        #: startup cost: reading and splitting the input file (calibrates
        #: the virtual MTTE to the paper's ~1.2 s scale).
        self.startup = self.param("startup", 0.9)
        self.produced = SharedCell(0, name="blocks.produced")
        self.out_count = SharedCell(0, name="blocks.out")
        kernel.spawn(self._producer, name="producer")
        for c in range(self.param("consumers", 2)):
            kernel.spawn(self._consumer, c, name=f"consumer{c}")
        kernel.spawn(self._main, name="main")

    # ------------------------------------------------------------------
    def _producer(self):
        rng = self.kernel.rng
        yield Sleep(self.startup * rng.uniform(0.9, 1.1))
        for i in range(self.blocks_total):
            yield Sleep(rng.uniform(0.005, 0.02))  # read + split a block
            yield from self.fifo.monitor.acquire(loc="pbzip2.cpp:744")
            self.fifo.blocks.append(b"block%d" % i)
            yield from self.fifo.not_empty.notify(loc="pbzip2.cpp:747")
            yield from self.fifo.monitor.release(loc="pbzip2.cpp:750")
            n = yield from self.produced.get(loc="pbzip2.cpp:752")
            yield from self.produced.set(n + 1, loc="pbzip2.cpp:752")

    def _consumer(self, cid: int):
        rng = self.kernel.rng
        while True:
            self.fifo.touch()
            yield from self.fifo.monitor.acquire(loc="pbzip2.cpp:898")
            while not self.fifo.blocks:
                prod = yield from self.produced.get(loc="pbzip2.cpp:900")
                if prod >= self.blocks_total:
                    yield from self.fifo.monitor.release(loc="pbzip2.cpp:901")
                    return
                ok = yield from self.fifo.not_empty.wait(0.05, loc="pbzip2.cpp:903")
                del ok
            block = self.fifo.blocks.pop(0)
            yield from self.fifo.monitor.release(loc="pbzip2.cpp:907")
            yield Sleep(self.block_time * rng.uniform(0.8, 1.2))  # compress
            # BUG window: output count incremented before the final queue
            # touch that releases the block slot.
            n = yield from self.out_count.get(loc="pbzip2.cpp:960")
            yield from self.out_count.set(n + 1, loc="pbzip2.cpp:960")
            # cbr1 (rendezvous): wait here for main's completion poll.
            # cbr2 is only attempted once the rendezvous fired — chained
            # breakpoints gate on trigger_here's boolean, which is what
            # makes BOTH necessary (#CBR = 2): without cbr1 nobody parks
            # at cbr2; without cbr2 the rendezvous alone leaves main a
            # step behind the final touch.
            # Local predicate: only the *final* block's window is the
            # dangerous one (main's poll can only complete then), so
            # earlier blocks must not pause — a Section 6.3-style
            # precision refinement.
            hit1 = yield from self.cb_conflict(
                "crash1", self.fifo, first=False,
                name="crash1:cbr1", loc="pbzip2.cpp:962", side="consumer",
                local=lambda: self.out_count.peek() >= self.blocks_total,
            )
            if hit1:
                # cbr2 (ordering): main's free goes first.
                yield from self.cb_conflict("crash1", self.fifo, first=False,
                                            name="crash1:cbr2", loc="pbzip2.cpp:963",
                                            side="consumer")
            self.fifo.touch()  # the final slot-release access — crash site
            yield Sleep(0.001)
            del block
            if self.out_count.peek() >= self.blocks_total:
                return  # all blocks written: this worker is done

    def _main(self):
        # Wait for completion: out_count == blocks_total (the racy check).
        while True:
            out = yield from self.out_count.get(loc="pbzip2.cpp:1210")
            if out >= self.blocks_total:
                break
            yield Sleep(0.01, loc="pbzip2.cpp:1212")
        # cbr1 partner: completion observed.
        hit1 = yield from self.cb_conflict("crash1", self.fifo, first=True,
                                           name="crash1:cbr1", loc="pbzip2.cpp:1218",
                                           side="main")
        yield Sleep(0.001)  # print compression stats before teardown
        if hit1:
            # cbr2 partner: free the fifo first.
            yield from self.cb_conflict("crash1", self.fifo, first=True,
                                        name="crash1:cbr2", loc="pbzip2.cpp:1220",
                                        side="main")
        self.fifo.freed = True  # queueDelete(fifo)

    # ------------------------------------------------------------------
    def oracle(self, result: RunResult) -> Optional[str]:
        """Classify the run's symptom, or None for a clean run."""
        for f in result.failures:
            if "SIGSEGV" in str(f.exc):
                return "program crash"
        return None
