"""``mysql`` — three MySQL server bugs from Table 2.

* **MySQL 4.0.12** (526K LoC) — *log omission* (Bug #791), MTTE 0.12 s,
  2 CBRs: binlog rotation closes the log and reopens it; a transaction
  committing in the closed window checks ``log_open``, sees false, and
  silently skips its binlog record.  cbr1 rendezvous a commit with the
  rotation; cbr2 orders the close before the commit's check.
* **MySQL 3.23.56** (468K LoC) — *log disorder* (Bug #169), MTTE 65 ms,
  1 CBR: two transactions commit in one order but write the binlog in
  the other; replication replays the wrong order.  The breakpoint parks
  the first committer between its commit and its binlog write.
* **MySQL 4.0.19** (539K LoC) — *server crash* (Bug #3596), MTTE 2.67 s,
  3 CBRs: a query thread resolves a table-cache entry while an
  administrative ``FLUSH TABLES`` invalidates and frees it; the query's
  dereference of the freed entry is a null-pointer crash.  cbr1 aligns
  the query with the flush, cbr2 orders invalidate before the query's
  validity re-check, cbr3 orders the free before the dereference.

Each version is its own app class; the Table 2 harness measures mean
time to first error over seeded runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.predicates import SitePolicy
from repro.sim.kernel import Kernel, RunResult
from repro.sim.memory import SharedCell
from repro.sim.syscalls import Sleep

from .base import BaseApp, BugSpec

__all__ = ["MySQL4012App", "MySQL32356App", "MySQL4019App"]


class MySQL4012App(BaseApp):
    """Binlog rotation vs commit: the log-omission race (Bug #791)."""

    name = "mysql-4.0.12"
    paper_loc = "526K"
    horizon = 30.0
    bugs = {
        "logomit1": BugSpec(
            id="logomit1", kind="omission", error="log omission",
            description="commit skips binlog while rotation has the log closed",
            comments="Bug #791", n_breakpoints=2,
        ),
    }

    def policies(self) -> Dict[str, SitePolicy]:
        """Fresh per-bug Section 6.3 refinement policies."""
        return {"logomit1:cbr1": SitePolicy(bound=1), "logomit1:cbr2": SitePolicy(bound=1)}

    def setup(self, kernel: Kernel) -> None:
        """Build shared state and spawn this subject's threads."""
        self.log_open = SharedCell(True, name="binlog.open")
        self.binlog: List[int] = []
        self.committed: List[int] = []
        self.txns = self.param("txns", 10)
        kernel.spawn(self._client, name="client")
        kernel.spawn(self._rotator, name="rotator")

    def _client(self):
        rng = self.kernel.rng
        for txn in range(self.txns):
            yield Sleep(rng.uniform(0.004, 0.02))  # execute the transaction
            self.committed.append(txn)
            # cbr1: rendezvous with the rotation; cbr2 is gated on it
            # (chained breakpoints — both are needed, #CBR = 2).
            hit1 = yield from self.cb_conflict("logomit1", self.log_open, first=False,
                                               name="logomit1:cbr1", loc="sql/log.cc:1471",
                                               side="committer")
            if hit1:
                # cbr2: the rotation's close lands before this check.
                yield from self.cb_conflict("logomit1", self.log_open, first=False,
                                            name="logomit1:cbr2", loc="sql/log.cc:1475",
                                            side="committer")
            is_open = yield from self.log_open.get(loc="sql/log.cc:1476")
            if is_open:
                self.binlog.append(txn)
            else:
                # BUG: the record is silently dropped.
                self.note_error("log omission")

    def _rotator(self):
        rng = self.kernel.rng
        yield Sleep(rng.uniform(0.04, 0.1))
        hit1 = yield from self.cb_conflict("logomit1", self.log_open, first=True,
                                           name="logomit1:cbr1", loc="sql/log.cc:1802",
                                           side="rotator")
        yield Sleep(0.0005)  # flush the current log before closing
        if hit1:
            yield from self.cb_conflict("logomit1", self.log_open, first=True,
                                        name="logomit1:cbr2", loc="sql/log.cc:1806",
                                        side="rotator")
        yield from self.log_open.set(False, loc="sql/log.cc:1807")  # close
        yield Sleep(0.0002)  # create + open the next log file
        yield from self.log_open.set(True, loc="sql/log.cc:1815")

    def oracle(self, result: RunResult) -> Optional[str]:
        """Classify the run's symptom, or None for a clean run."""
        if any(sym == "log omission" for _, sym in self.errors):
            return "log omission"
        if len(self.binlog) < len(self.committed) and self.committed:
            return "log omission"
        return None


class MySQL32356App(BaseApp):
    """Commit order vs binlog order: the log-disorder race (Bug #169)."""

    name = "mysql-3.23.56"
    paper_loc = "468K"
    horizon = 30.0
    bugs = {
        "logdisorder1": BugSpec(
            id="logdisorder1", kind="disorder", error="log disorder",
            description="binlog writes interleave against commit order",
            comments="Bug #169", n_breakpoints=1,
        ),
    }

    def policies(self) -> Dict[str, SitePolicy]:
        """Fresh per-bug Section 6.3 refinement policies."""
        return {"logdisorder1": SitePolicy(bound=1)}

    def setup(self, kernel: Kernel) -> None:
        """Build shared state and spawn this subject's threads."""
        self.commit_seq = SharedCell(0, name="commit.seq")
        self.binlog: List[int] = []
        self.commit_order: List[int] = []
        kernel.spawn(self._client, 0, name="client0")
        kernel.spawn(self._client, 1, name="client1")

    def _client(self, cid: int):
        rng = self.kernel.rng
        for i in range(self.param("txns", 4)):
            yield Sleep(rng.uniform(0.003, 0.015))
            # Commit: take a sequence number (the storage-engine order).
            seq = yield from self.commit_seq.get(loc="sql/handler.cc:310")
            yield from self.commit_seq.set(seq + 1, loc="sql/handler.cc:310")
            self.commit_order.append(seq)
            # BUG window: the binlog append is not atomic with the commit.
            # The resolution order makes the *later* committer write its
            # binlog record first (odd sequence numbers take the first
            # action), producing the out-of-order log.
            yield from self.cb_conflict("logdisorder1", self.commit_seq,
                                        first=(seq % 2 == 1), loc="sql/log.cc:912")
            if self.binlog and seq < self.binlog[-1]:
                # Replication would replay the wrong order from here on.
                self.note_error("log disorder")
            self.binlog.append(seq)

    def oracle(self, result: RunResult) -> Optional[str]:
        """Classify the run's symptom, or None for a clean run."""
        if self.binlog != sorted(self.binlog):
            return "log disorder"
        return None


class MySQL4019App(BaseApp):
    """Table-cache entry freed under a running query (Bug #3596)."""

    name = "mysql-4.0.19"
    paper_loc = "539K"
    horizon = 30.0
    bugs = {
        "crash1": BugSpec(
            id="crash1", kind="crash", error="server crash",
            description="FLUSH TABLES frees a cache entry a query still dereferences",
            comments="null pointer dereference (Bug #3596)", n_breakpoints=3,
        ),
    }

    def policies(self) -> Dict[str, SitePolicy]:
        """Fresh per-bug Section 6.3 refinement policies."""
        return {
            "crash1:cbr1": SitePolicy(bound=1),
            "crash1:cbr2": SitePolicy(bound=1),
            "crash1:cbr3": SitePolicy(bound=1),
        }

    def setup(self, kernel: Kernel) -> None:
        """Build shared state and spawn this subject's threads."""
        self.entry_valid = SharedCell(True, name="table_cache.valid")
        # A stable token, not a bare object(): the cell value is repr'd
        # into the trace, and an address-bearing repr would break the
        # cross-process bit-identical-trace contract (golden corpus).
        self.entry_ptr = SharedCell("TABLE*<entry>", name="table_cache.ptr")
        self.queries_served = 0
        #: flush arrives late in the uptime — the paper's 2.67 s MTTE.
        self.flush_at = self.param("flush_at", 2.4)
        kernel.spawn(self._query_thread, name="query")
        kernel.spawn(self._flusher, name="flusher")

    def _query_thread(self):
        rng = self.kernel.rng
        while True:
            yield Sleep(rng.uniform(0.01, 0.05))  # parse + plan
            if self.kernel.now > self.flush_at + 1.0:
                return  # uptime window of interest is over
            # cbr1: rendezvous this query with the flush.  The later
            # breakpoints are only attempted when the rendezvous fired —
            # ``trigger_here``'s boolean return exists precisely so
            # chained breakpoints can be gated on each other.
            hit1 = yield from self.cb_conflict("crash1", self.entry_ptr, first=False,
                                               name="crash1:cbr1", loc="sql/sql_base.cc:550",
                                               side="query")
            valid = yield from self.entry_valid.get(loc="sql/sql_base.cc:556")
            if not valid:
                continue  # reopen path (correct handling)
            if hit1:
                # cbr2: the invalidate lands after the check...
                yield from self.cb_conflict("crash1", self.entry_ptr, first=False,
                                            name="crash1:cbr2", loc="sql/sql_base.cc:561",
                                            side="query")
                # cbr3: ...and the free lands before the dereference.
                yield from self.cb_conflict("crash1", self.entry_ptr, first=False,
                                            name="crash1:cbr3", loc="sql/sql_base.cc:565",
                                            side="query")
            ptr = yield from self.entry_ptr.get(loc="sql/sql_base.cc:566")
            if ptr is None:
                raise RuntimeError("SIGSEGV: null table-cache entry dereference")
            self.queries_served += 1

    def _flusher(self):
        rng = self.kernel.rng
        yield Sleep(self.flush_at * rng.uniform(0.95, 1.05))
        hit1 = yield from self.cb_conflict("crash1", self.entry_ptr, first=True,
                                           name="crash1:cbr1", loc="sql/sql_base.cc:1210",
                                           side="flusher")
        if hit1:
            yield from self.cb_conflict("crash1", self.entry_ptr, first=True,
                                        name="crash1:cbr2", loc="sql/sql_base.cc:1214",
                                        side="flusher")
        yield from self.entry_valid.set(False, loc="sql/sql_base.cc:1215")
        if hit1:
            yield from self.cb_conflict("crash1", self.entry_ptr, first=True,
                                        name="crash1:cbr3", loc="sql/sql_base.cc:1218",
                                        side="flusher")
        yield from self.entry_ptr.set(None, loc="sql/sql_base.cc:1219")  # free

    def oracle(self, result: RunResult) -> Optional[str]:
        """Classify the run's symptom, or None for a clean run."""
        for f in result.failures:
            if "SIGSEGV" in str(f.exc):
                return "server crash"
        return None
