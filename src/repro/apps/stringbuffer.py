"""``stringbuffer`` — the classic ``java.lang.StringBuffer`` atomicity violation.

Paper Figure 3 / Table 1 row ``stringbuffer`` (1,320 LoC, atomicity1,
error = exception, probability 1.00).

``append(sb)`` reads ``sb.length()`` into a local, then calls
``sb.get_chars(0, len, ...)``.  Both callees are synchronized, but the
*pair* is not: a concurrent ``sb.set_length(0)`` between them makes the
local ``len`` stale and ``get_chars`` throws a bounds exception.

The concurrent breakpoint is the paper's ``(239, 449, t1.sb == t2.this)``:
one trigger just before ``set_length``'s truncation (line 239, the
first action — that thread must run first) and one in ``append`` between
the ``length()`` read and the ``get_chars`` call (line 449).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.predicates import SitePolicy
from repro.sim.kernel import Kernel, RunResult
from repro.sim.memory import SharedCell
from repro.sim.primitives import SimRLock
from repro.sim.syscalls import BeginAtomic, EndAtomic, Sleep

from .base import BaseApp, BugSpec

__all__ = ["StringBufferApp", "StringBuffer"]


class StringBuffer:
    """A miniature ``java.lang.StringBuffer``: synchronized methods, with
    the compound-operation atomicity bug in :meth:`append`."""

    def __init__(self, name: str = "sb") -> None:
        self.monitor = SimRLock(name=f"{name}.monitor", tag="StringBuffer")
        self.count = SharedCell(0, name=f"{name}.count")
        self.data: list = []
        self.name = name

    def length(self):
        """synchronized int length() — paper line 143."""
        yield from self.monitor.acquire(loc="StringBuffer.java:143")
        n = yield from self.count.get(loc="StringBuffer.java:143")
        yield from self.monitor.release(loc="StringBuffer.java:143")
        return n

    def get_chars(self, begin: int, end: int):
        """synchronized void getChars(...) — paper line 322.

        Raises ``IndexError`` when the requested range exceeds the
        current length: the visible symptom of the atomicity violation.
        """
        yield from self.monitor.acquire(loc="StringBuffer.java:322")
        n = yield from self.count.get(loc="StringBuffer.java:322")
        if end > n or begin < 0:
            yield from self.monitor.release(loc="StringBuffer.java:322")
            raise IndexError(f"StringIndexOutOfBounds: end={end} > count={n}")
        chunk = self.data[begin:end]
        yield from self.monitor.release(loc="StringBuffer.java:322")
        return chunk

    def set_length(self, app: "StringBufferApp", n: int):
        """synchronized void setLength(...) — paper line 239."""
        # Breakpoint site (l1 = 239): this thread acts first on a match.
        yield from app.cb_conflict(
            "atomicity1", self, first=True, loc="StringBuffer.java:239", atomicity=True
        )
        yield from self.monitor.acquire(loc="StringBuffer.java:239")
        yield from self.count.set(n, loc="StringBuffer.java:240")
        del self.data[n:]
        yield from self.monitor.release(loc="StringBuffer.java:239")

    def append_chars(self, chars: list):
        """synchronized append of raw characters (no bug)."""
        yield from self.monitor.acquire(loc="StringBuffer.java:437")
        n = yield from self.count.get(loc="StringBuffer.java:437")
        self.data.extend(chars)
        yield from self.count.set(n + len(chars), loc="StringBuffer.java:437")
        yield from self.monitor.release(loc="StringBuffer.java:437")

    def append(self, app: "StringBufferApp", other: "StringBuffer"):
        """synchronized StringBuffer append(StringBuffer sb) — line 437.

        The buggy compound operation: ``other``'s monitor is held for
        ``length()`` and for ``get_chars`` separately, not across both.
        """
        yield from self.monitor.acquire(loc="StringBuffer.java:437")
        try:
            yield BeginAtomic("StringBuffer.append")
            n = yield from other.length()  # line 444: len goes stale here
            # Breakpoint site (l2 = 449): second action.
            yield from app.cb_conflict(
                "atomicity1", other, first=False, loc="StringBuffer.java:449", atomicity=True
            )
            chunk = yield from other.get_chars(0, n)  # line 449: may throw
            yield EndAtomic("StringBuffer.append")
            self.data.extend(chunk)
            cnt = yield from self.count.get(loc="StringBuffer.java:449")
            yield from self.count.set(cnt + len(chunk), loc="StringBuffer.java:449")
        finally:
            # ``synchronized`` releases the monitor even when getChars
            # throws, and so must we.
            yield from self.monitor.release(loc="StringBuffer.java:437")


class StringBufferApp(BaseApp):
    """Two threads share a ``StringBuffer``: one appends it onto its own
    buffer repeatedly, the other truncates it once at a jittered moment."""

    name = "stringbuffer"
    paper_loc = "1,320"
    bugs = {
        "atomicity1": BugSpec(
            id="atomicity1",
            kind="atomicity",
            error="exception",
            description="stale length between sb.length() and sb.getChars() in append",
        ),
    }

    def policies(self) -> Dict[str, SitePolicy]:
        # The violation is one-shot: once it has fired, later appends
        # must not keep pausing (Section 6.3's ``triggers < bound``).
        """Fresh per-bug Section 6.3 refinement policies."""
        return {"atomicity1": SitePolicy(bound=1)}

    def setup(self, kernel: Kernel) -> None:
        """Build shared state and spawn this subject's threads."""
        self.shared = StringBuffer("shared")
        self.shared.data = list("hello concurrent world")
        self.shared.count.poke(len(self.shared.data))
        self.sink = StringBuffer("sink")
        rounds = self.param("rounds", 8)
        kernel.spawn(self._appender, rounds, name="appender")
        kernel.spawn(self._truncator, name="truncator")

    def _appender(self, rounds: int):
        for _ in range(rounds):
            yield Sleep(self.kernel.rng.uniform(0.0005, 0.004))
            try:
                yield from self.sink.append(self, self.shared)
            except IndexError:
                # The test harness catches and logs the violation, like
                # the paper's driver, so the run completes and runtime
                # overhead stays comparable.
                self.note_error("exception")
            # Keep the shared buffer non-empty so later appends stay racy.
            yield from self.shared.append_chars(list("x"))

    def _truncator(self):
        yield Sleep(self.kernel.rng.uniform(0.001, 0.02))
        yield from self.shared.set_length(self, 0)

    def oracle(self, result: RunResult) -> Optional[str]:
        """Classify the run's symptom, or None for a clean run."""
        if any(sym == "exception" for _, sym in self.errors):
            return "exception"
        for f in result.failures:
            if isinstance(f.exc, IndexError):
                return "exception"
        return None
