"""``repro.apps`` — the paper's 18 evaluation subjects, re-created.

Every Table 1 / Table 2 benchmark is re-built around its original
concurrency structure (same lock topology, same conflicting accesses,
same bug class and error symptom) on the simulation substrate; see each
module's docstring for the mapping and DESIGN.md for the substitution
rationale.  ``repro.apps.registry`` partitions them into the two tables.
"""

from .base import AppConfig, AppRun, BaseApp, BugSpec
from .cache4j import Cache4jApp
from .figure4 import Figure4App
from .hedc import HedcApp
from .httpd import HttpdApp
from .jigsaw import JigsawApp
from .log4j import SECTION5_PAIRS, Log4jApp
from .logging_app import LoggingApp
from .lucene import LuceneApp
from .moldyn import MoldynApp
from .montecarlo_app import MonteCarloApp
from .mysql import MySQL32356App, MySQL4012App, MySQL4019App
from .pbzip2 import Pbzip2App
from .pool import PoolApp
from .raytracer import RayTracerApp
from .registry import ALL_APPS, C_APPS, JAVA_APPS, get_app, table1_bugs, table2_bugs
from .stringbuffer import StringBufferApp
from .swing import SwingApp
from .synchronized_collections import (
    SynchronizedListApp,
    SynchronizedMapApp,
    SynchronizedSetApp,
)

__all__ = [
    "AppConfig",
    "AppRun",
    "BaseApp",
    "BugSpec",
    "Cache4jApp",
    "Figure4App",
    "HedcApp",
    "HttpdApp",
    "JigsawApp",
    "SECTION5_PAIRS",
    "Log4jApp",
    "LoggingApp",
    "LuceneApp",
    "MoldynApp",
    "MonteCarloApp",
    "MySQL32356App",
    "MySQL4012App",
    "MySQL4019App",
    "Pbzip2App",
    "PoolApp",
    "RayTracerApp",
    "ALL_APPS",
    "C_APPS",
    "JAVA_APPS",
    "get_app",
    "table1_bugs",
    "table2_bugs",
    "StringBufferApp",
    "SwingApp",
    "SynchronizedListApp",
    "SynchronizedMapApp",
    "SynchronizedSetApp",
]
