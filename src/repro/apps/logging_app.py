"""``logging`` — the ``java.util.logging`` deadlock (4,250 LoC).

Table 1 row: ``deadlock1``, error *stall*, probability 1.00, overhead ~0%.

The JDK logging deadlock (bug 6487638-family): ``Logger.log`` holds the
``Logger`` monitor and calls into the attached ``Handler`` (taking its
monitor); maintenance paths like ``Handler.close``/``LogManager.reset``
hold the ``Handler`` monitor and call back into the ``Logger`` — the
usual ABBA inversion.  A single :class:`DeadlockTrigger` pair between the
nested acquisitions reproduces it deterministically, and because each
site is visited once and matches immediately, the runtime overhead is
negligible (the paper measured 0%).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.predicates import SitePolicy
from repro.sim.kernel import Kernel, RunResult
from repro.sim.primitives import SimRLock
from repro.sim.syscalls import Sleep

from .base import BaseApp, BugSpec

__all__ = ["LoggingApp"]


class LoggingApp(BaseApp):
    """A logging thread racing a handler-reset thread."""

    name = "logging"
    paper_loc = "4,250"
    bugs = {
        "deadlock1": BugSpec(
            id="deadlock1", kind="deadlock", error="stall",
            description="Logger monitor vs Handler monitor ABBA inversion",
        ),
    }

    def policies(self) -> Dict[str, SitePolicy]:
        """Fresh per-bug Section 6.3 refinement policies."""
        return {"deadlock1": SitePolicy(bound=1)}

    def setup(self, kernel: Kernel) -> None:
        """Build shared state and spawn this subject's threads."""
        self.logger_monitor = SimRLock("Logger", tag="Logger")
        self.handler_monitor = SimRLock("StreamHandler", tag="Handler")
        self.records_published = 0
        kernel.spawn(self._logger_thread, name="logger")
        kernel.spawn(self._reset_thread, name="resetter")

    def _logger_thread(self):
        rng = self.kernel.rng
        for _ in range(self.param("records", 6)):
            yield Sleep(rng.uniform(0.0005, 0.005))
            # Logger.log: logger monitor, then handler.publish.
            yield from self.logger_monitor.acquire(loc="Logger.java:571")
            yield from self.cb_deadlock(
                "deadlock1", self.logger_monitor, self.handler_monitor, first=True,
                loc="Logger.java:586",
            )
            yield from self.handler_monitor.acquire(loc="StreamHandler.java:196")
            self.records_published += 1
            yield from self.handler_monitor.release(loc="StreamHandler.java:210")
            yield from self.logger_monitor.release(loc="Logger.java:595")

    def _reset_thread(self):
        rng = self.kernel.rng
        yield Sleep(rng.uniform(0.001, 0.02))
        # LogManager.reset: handler monitor, then back into the logger.
        yield from self.handler_monitor.acquire(loc="LogManager.java:1340")
        yield from self.cb_deadlock(
            "deadlock1", self.handler_monitor, self.logger_monitor, first=False,
            loc="LogManager.java:1346",
        )
        yield from self.logger_monitor.acquire(loc="Logger.java:1359")
        yield from self.logger_monitor.release(loc="Logger.java:1362")
        yield from self.handler_monitor.release(loc="LogManager.java:1351")

    def oracle(self, result: RunResult) -> Optional[str]:
        """Classify the run's symptom, or None for a clean run."""
        return "stall" if result.stall_or_deadlock else None
