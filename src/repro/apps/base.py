"""Common machinery for the re-created benchmark applications.

Each module in :mod:`repro.apps` re-creates one of the paper's evaluation
subjects (Table 1's 15 Java programs, Table 2's 3 C/C++ programs): the
same lock topology, the same conflicting accesses, the same bug class and
error symptom, sized down from the original megabytes to the
concurrency-relevant core (DESIGN.md substitution table).

An app is a :class:`BaseApp` subclass:

* ``setup(kernel)`` builds shared state and spawns the threads;
* ``oracle(result)`` inspects the run and returns the manifested error
  symptom (``"stall"``, ``"exception"``, ...) or ``None``;
* ``bugs`` declares each known Heisenbug (a :class:`BugSpec`), including
  the paper's error column and precision-refinement comments;
* thread code inserts breakpoints through the ``cb_conflict`` /
  ``cb_deadlock`` helpers, which are no-ops unless the run's
  :class:`AppConfig` activates that bug — the analogue of compiling the
  paper's ``triggerHere`` calls in or out.

One instance = one execution; the harness creates a fresh instance per
trial so no state leaks between runs.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.predicates import SitePolicy
from repro.core.spec import AtomicityTrigger, ConflictTrigger, DeadlockTrigger
from repro.sim.kernel import Kernel, RunResult
from repro.sim.scheduler import Scheduler
from repro.sim.syscalls import Trigger

__all__ = ["BugSpec", "AppConfig", "AppRun", "BaseApp"]


@dataclasses.dataclass(frozen=True)
class BugSpec:
    """One known Heisenbug of an app (a Table 1 / Table 2 row).

    ``error`` matches the paper's Error column (empty string for races
    with no visible symptom).  ``oracle_mode`` selects what counts as
    "the bug was reproduced" for the probability column:
    ``"error"`` — the symptom must manifest; ``"bp"`` — hitting the
    breakpoint is the reproduction (silent races: the paper's probability
    for these is the probability of triggering the breakpoint).
    ``n_breakpoints`` is Table 2's #CBR column.  ``methodology`` is
    ``1`` (from a testing-tool report) or ``2`` (manual contention
    probing), matching the paper's "Meth. II" comments.
    """

    id: str
    kind: str  # race | atomicity | deadlock | missed-notify | crash | corruption | omission | disorder
    error: str  # paper's Error column ("", "stall", "exception", "test fail", ...)
    description: str
    comments: str = ""
    oracle_mode: str = "error"  # "error" | "bp"
    n_breakpoints: int = 1
    methodology: int = 1


@dataclasses.dataclass
class AppConfig:
    """Per-run configuration.

    ``bug``          — which bug's breakpoints are enabled (None = plain run);
    ``timeout``      — pause time ``T`` passed to every ``trigger_here``;
    ``flip_order``   — swap the two action flags (Section 5's "resolve the
                       contention in both ways");
    ``use_policies`` — apply the app's Section 6.3 precision refinements;
    ``only_breakpoints`` — restrict a multi-breakpoint bug to a subset of
                       its named breakpoints (ablating Table 2's #CBR
                       column: a proper subset should not reproduce);
    ``params``       — app-specific workload overrides;
    ``collect_metrics`` — run under a fresh :class:`repro.obs.ObsContext`
                       and attach the trial's metrics snapshot to its
                       outcome (set by the harness; travels with the
                       config across worker-process boundaries).
    """

    bug: Optional[str] = None
    timeout: float = 0.100
    flip_order: bool = False
    use_policies: bool = True
    only_breakpoints: Optional[frozenset] = None
    params: Dict[str, Any] = dataclasses.field(default_factory=dict)
    collect_metrics: bool = False


@dataclasses.dataclass
class AppRun:
    """Outcome of one app execution."""

    app: str
    bug: Optional[str]
    error: Optional[str]  # manifested symptom, or None
    bug_hit: bool  # per the bug's oracle_mode
    result: RunResult
    error_time: Optional[float]  # virtual time of the first symptom (MTTE)

    @property
    def runtime(self) -> float:
        """Virtual duration of the run."""
        return self.result.time

    def bp_hit(self, name: Optional[str] = None) -> bool:
        """Did the named breakpoint (default: any of the bug's) fire?"""
        stats = self.result.breakpoint_stats
        if name is not None:
            st = stats.get(name)
            return bool(st and st.hits > 0)
        return any(st.hits > 0 for st in stats.values())


class BaseApp(abc.ABC):
    """Base class for all benchmark applications."""

    #: App identifier (registry key and Table 1/2 benchmark column).
    name: str = "app"
    #: Lines of code of the *original* subject, from the paper's table.
    paper_loc: str = "-"
    #: Known bugs, id -> spec.
    bugs: Dict[str, BugSpec] = {}
    #: Virtual-time horizon after which live threads mean "stall"
    #: (the paper's large-timeout stall detection).
    horizon: float = 30.0
    #: Step budget per run (runaway guard; generous).
    max_steps: int = 400_000
    #: Result-cache invalidation tag (:mod:`repro.cache`): bump whenever
    #: the app's workload, oracle, or breakpoint placement changes in a
    #: way that alters trial outcomes for the same ``(config, seed)``.
    cache_version: str = "1"

    def __init__(self, cfg: Optional[AppConfig] = None) -> None:
        self.cfg = cfg if cfg is not None else AppConfig()
        if self.cfg.bug is not None and self.cfg.bug not in self.bugs:
            raise KeyError(f"{self.name}: unknown bug {self.cfg.bug!r}")
        self.kernel: Optional[Kernel] = None
        self.errors: List[Tuple[float, str]] = []  # (virtual time, symptom)
        self._policies: Dict[str, SitePolicy] = {}

    # ------------------------------------------------------------------
    # To be provided by subclasses
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def setup(self, kernel: Kernel) -> None:
        """Create shared state and spawn the app's threads."""

    @abc.abstractmethod
    def oracle(self, result: RunResult) -> Optional[str]:
        """Return the manifested error symptom, or None."""

    def policies(self) -> Dict[str, SitePolicy]:
        """Fresh Section 6.3 refinement policies, keyed by bug id."""
        return {}

    def param(self, key: str, default: Any) -> Any:
        """Workload parameter with per-run override support."""
        return self.cfg.params.get(key, default)

    # ------------------------------------------------------------------
    # Breakpoint insertion helpers (no-ops for inactive bugs)
    # ------------------------------------------------------------------
    def _active(self, bug_id: str) -> bool:
        return self.cfg.bug == bug_id

    def _flip(self, first: bool) -> bool:
        return first != self.cfg.flip_order

    def cb_conflict(
        self,
        bug_id: str,
        obj: Any,
        first: bool,
        loc: Optional[str] = None,
        atomicity: bool = False,
        name: Optional[str] = None,
        local: Optional[Callable[[], bool]] = None,
        policy_key: Optional[str] = None,
        side: Optional[str] = None,
    ):
        """Insert a ConflictTrigger site for ``bug_id`` (generator).

        ``yield from self.cb_conflict(...)`` returns True iff the
        breakpoint fired.  Does nothing unless the run activates
        ``bug_id``.  ``name`` distinguishes multiple breakpoints under
        one bug (Table 2 bugs need up to three — the #CBR column);
        policies are looked up by the effective name, then the bug id.
        ``local`` is an extra per-site local predicate.
        """
        if not self._active(bug_id):
            return False
        bp_name = name if name is not None else bug_id
        if self.cfg.only_breakpoints is not None and bp_name not in self.cfg.only_breakpoints:
            return False
        cls = AtomicityTrigger if atomicity else ConflictTrigger
        inst = cls(
            bp_name, obj,
            policy=self._policy_for(bp_name, bug_id, policy_key),
            local=local,
            side=side,
        )
        hit = yield Trigger(inst, self._flip(first), self.cfg.timeout, loc=loc)
        return hit

    def cb_deadlock(
        self,
        bug_id: str,
        lock1: Any,
        lock2: Any,
        first: bool,
        loc: Optional[str] = None,
        name: Optional[str] = None,
        policy_key: Optional[str] = None,
    ):
        """Insert a DeadlockTrigger site for ``bug_id`` (generator)."""
        if not self._active(bug_id):
            return False
        bp_name = name if name is not None else bug_id
        if self.cfg.only_breakpoints is not None and bp_name not in self.cfg.only_breakpoints:
            return False
        inst = DeadlockTrigger(
            bp_name, lock1, lock2, policy=self._policy_for(bp_name, bug_id, policy_key)
        )
        hit = yield Trigger(inst, self._flip(first), self.cfg.timeout, loc=loc)
        return hit

    def _policy_for(
        self, bp_name: str, bug_id: str, policy_key: Optional[str] = None
    ) -> Optional[SitePolicy]:
        """Refinement lookup: explicit site key, else breakpoint name,
        else bug id.  A per-site key lets one side of a breakpoint carry
        a refinement the other side must not (the Swing EDT side has no
        ``isLockTypeHeld`` condition)."""
        if policy_key is not None:
            return self._policies.get(policy_key)
        pol = self._policies.get(bp_name)
        if pol is None and bp_name != bug_id:
            pol = self._policies.get(bug_id)
        return pol

    # ------------------------------------------------------------------
    # Error bookkeeping available to thread code
    # ------------------------------------------------------------------
    def note_error(self, symptom: str) -> None:
        """Record an observable symptom at the current virtual time."""
        assert self.kernel is not None
        self.errors.append((self.kernel.now, symptom))

    def first_error_time(self, result: RunResult) -> Optional[float]:
        """Virtual time of the first symptom (explicit notes, thread
        failures, or deadlock/stall detection time)."""
        times: List[float] = [t for t, _ in self.errors]
        times.extend(f.time for f in result.failures)
        if result.deadlocked or result.stalled:
            times.append(result.time)
        return min(times) if times else None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        seed: Optional[int] = None,
        scheduler: Optional[Scheduler] = None,
        record_trace: bool = False,
        obs: Any = None,
        kernel_cls: type = Kernel,
    ) -> AppRun:
        """Execute the app once and evaluate its oracle.

        ``obs`` is an optional :class:`repro.obs.ObsContext`; the kernel
        and breakpoint engine record metrics and publish bus events into
        it.  Observability never changes scheduling, so instrumented and
        plain runs of the same seed are identical executions.

        ``kernel_cls`` swaps the execution engine — the golden-trace
        recorder and the differential battery run the same app under
        :class:`~repro.sim._reference.ReferenceKernel` to prove the fast
        path is bit-identical.
        """
        kernel = kernel_cls(scheduler=scheduler, seed=seed, record_trace=record_trace, obs=obs)
        self.kernel = kernel
        if self.cfg.use_policies:
            self._policies = self.policies()
        else:
            self._policies = {}
        self.setup(kernel)
        result = kernel.run(max_steps=self.max_steps, max_time=self.horizon)
        error = self.oracle(result)
        bug_hit = self._bug_hit(error, result)
        return AppRun(
            app=self.name,
            bug=self.cfg.bug,
            error=error,
            bug_hit=bug_hit,
            result=result,
            error_time=self.first_error_time(result) if error else None,
        )

    def _bug_hit(self, error: Optional[str], result: RunResult) -> bool:
        if self.cfg.bug is None:
            return error is not None
        spec = self.bugs[self.cfg.bug]
        if spec.oracle_mode == "bp":
            prefix = self.cfg.bug + ":"
            return any(
                st.hits > 0
                for name, st in result.breakpoint_stats.items()
                if name == self.cfg.bug or name.startswith(prefix)
            )
        return error is not None

    # ------------------------------------------------------------------
    @classmethod
    def bug_ids(cls) -> List[str]:
        """The app's known bug identifiers."""
        return list(cls.bugs)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(bug={self.cfg.bug!r})"
