"""``figure4`` — the paper's hard-to-reach breakpoint example (Figure 4).

Two threads share ``o.x``, initially 0::

    void foo(XObject o1) {            void bar(XObject o2) {
    1.  synchronized (o1) {           10.  o2.x = 1;
    2..6  f1() .. f5();               11.  synchronized (o2) {
    7.  }                             12.    f6();
    8.  if (o1.x == 0)                13.  }
    9.    ERROR;                      }
    }

``bar`` writes ``x = 1`` as its *first* statement; ``foo`` checks
``x == 0`` only after five long calls.  The ERROR fires only if the check
executes before the write — i.e. if ``thread1`` is at line 8 while
``thread2`` is still at line 10, which almost never happens naturally.
The concurrent breakpoint ``(8, 10, t1.o1 == t2.o2)`` plus BTrigger makes
it near-certain: ``bar`` pauses at line 10 for ``T``; if ``foo`` reaches
line 8 within the pause, the match fires and ``foo``'s check runs first.

This app is the E7 bench and the empirical anchor for the Section 3
model: the hit probability as a function of ``T`` tracks the analytic
formula (``benchmarks/bench_figure4.py``).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.predicates import SitePolicy
from repro.sim.kernel import Kernel, RunResult
from repro.sim.memory import SharedCell
from repro.sim.primitives import SimRLock
from repro.sim.syscalls import Sleep

from .base import BaseApp, BugSpec

__all__ = ["Figure4App"]

#: Virtual duration of each of f1()..f5() — the "large number of
#: statements" separating bar's write from foo's check.
F_CALL_TIME = 0.012


class Figure4App(BaseApp):
    """The foo/bar program with the breakpoint ``(8, 10, t1.o1 == t2.o2)``."""

    name = "figure4"
    paper_loc = "(Figure 4)"
    bugs = {
        "error1": BugSpec(
            id="error1", kind="race", error="ERROR",
            description="foo reads o.x==0 at line 8 before bar's write at line 10",
        ),
    }

    def policies(self) -> Dict[str, SitePolicy]:
        """Fresh per-bug Section 6.3 refinement policies."""
        return {"error1": SitePolicy(bound=1)}

    def setup(self, kernel: Kernel) -> None:
        """Build shared state and spawn this subject's threads."""
        self.o_monitor = SimRLock("o", tag="XObject")
        self.o_x = SharedCell(0, name="o.x")
        self.error_reached = False
        kernel.spawn(self._foo, name="thread1")
        kernel.spawn(self._bar, name="thread2")

    def _foo(self):
        rng = self.kernel.rng
        yield from self.o_monitor.acquire(loc="Figure4:1")
        for i in range(5):  # f1() .. f5(), with per-call jitter
            yield Sleep(F_CALL_TIME * rng.uniform(0.5, 1.5), loc=f"Figure4:{2 + i}")
        yield from self.o_monitor.release(loc="Figure4:7")
        # Line 8 — breakpoint site, first action: the check runs before
        # bar's write after a match.
        yield from self.cb_conflict("error1", self.o_x, first=True,
                                    loc="Figure4:8", side="checker")
        x = yield from self.o_x.get(loc="Figure4:8")
        if x == 0:
            self.error_reached = True  # line 9: ERROR

    def _bar(self):
        # Line 10 — breakpoint site, second action: pauses here, before
        # the write, waiting for foo to arrive at line 8.
        yield from self.cb_conflict("error1", self.o_x, first=False,
                                    loc="Figure4:10", side="writer")
        yield from self.o_x.set(1, loc="Figure4:10")
        yield from self.o_monitor.acquire(loc="Figure4:11")
        yield Sleep(F_CALL_TIME, loc="Figure4:12")  # f6()
        yield from self.o_monitor.release(loc="Figure4:13")

    def oracle(self, result: RunResult) -> Optional[str]:
        """Classify the run's symptom, or None for a clean run."""
        return "ERROR" if self.error_reached else None
