"""``httpd`` — Apache httpd 2.0.45 (270K LoC): log corruption and crash.

Table 2 rows:

* **log corruption** (Bug #25520), MTTE 0.14 s, 1 CBR — two workers
  append to the shared access-log buffer with an unsynchronised
  "reserve offset, then copy bytes" sequence; interleaved reservations
  overlap and records overwrite each other.
* **server crash** (buffer overflow), MTTE 0.33 s, 3 CBRs — a worker
  validates a connection buffer's capacity, a recycler shrinks the
  buffer concurrently, and the worker's staged write then runs past the
  new capacity.  Three breakpoints pin the full scenario: align the
  large request with the recycle (cbr1), order the shrink before the
  capacity re-read (cbr2), and order the final shrink before the
  second write segment (cbr3).

Both are driven by a continuous simulated request stream, measured as
mean time to first error (the Table 2 harness).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.predicates import SitePolicy
from repro.sim.kernel import Kernel, RunResult
from repro.sim.memory import SharedCell
from repro.sim.syscalls import Sleep

from .base import BaseApp, BugSpec

__all__ = ["HttpdApp"]


class HttpdApp(BaseApp):
    """Worker pool serving a request stream, plus a buffer recycler."""

    name = "httpd"
    paper_loc = "270K"
    horizon = 30.0
    bugs = {
        "logcorrupt1": BugSpec(
            id="logcorrupt1", kind="corruption", error="log corruption",
            description="overlapping offset reservation in the shared access log",
            comments="Bug #25520", n_breakpoints=1,
        ),
        "crash1": BugSpec(
            id="crash1", kind="crash", error="server crash",
            description="connection buffer shrunk between capacity check and staged write",
            comments="buffer overflow", n_breakpoints=3,
        ),
    }

    def policies(self) -> Dict[str, SitePolicy]:
        """Fresh per-bug Section 6.3 refinement policies."""
        return {
            "logcorrupt1": SitePolicy(bound=1),
            "crash1:cbr1": SitePolicy(bound=1),
            "crash1:cbr2": SitePolicy(bound=1),
            "crash1:cbr3": SitePolicy(bound=1),
        }

    def setup(self, kernel: Kernel) -> None:
        # Access log: reserved offset cell + record table.
        """Build shared state and spawn this subject's threads."""
        self.log_offset = SharedCell(0, name="log.offset")
        self.log_records: List[Tuple[int, str]] = []
        # Connection buffer: capacity cell + write position.
        self.buf_capacity = SharedCell(64, name="conn.buf_capacity")
        self.requests = self.param("requests", 14)
        workers = self.param("workers", 2)
        for w in range(workers):
            kernel.spawn(self._worker, w, name=f"worker{w}")
        kernel.spawn(self._recycler, name="recycler")

    # ------------------------------------------------------------------
    def _worker(self, wid: int):
        rng = self.kernel.rng
        for i in range(self.requests):
            yield Sleep(rng.uniform(0.004, 0.02))  # request arrival + parse
            size = 48 if (wid == 0 and i == self.requests // 2) else 8
            yield from self._serve(wid, i, size)

    def _serve(self, wid: int, req: int, size: int):
        # --- crash1: staged buffered write with a capacity check ---
        hit1 = False
        if size > 16:
            # cbr1: rendezvous the large request with the recycler.  The
            # later breakpoints are gated on it (chained breakpoints):
            # all three are needed for consistent reproduction (#CBR=3).
            hit1 = yield from self.cb_conflict("crash1", self.buf_capacity, first=False,
                                               name="crash1:cbr1", loc="core.c:3108",
                                               side="worker")
        cap = yield from self.buf_capacity.get(loc="core.c:3112")
        if size <= cap:
            # cbr2: the recycler's shrink lands before our first segment;
            # cbr3 chains on cbr2 the same way cbr2 chains on cbr1.
            hit2 = False
            if hit1:
                hit2 = yield from self.cb_conflict("crash1", self.buf_capacity, first=False,
                                                   name="crash1:cbr2", loc="core.c:3118",
                                                   side="worker")
            written = size // 2  # first segment
            yield Sleep(0.001)
            if hit2:
                # cbr3: the final shrink lands before the second segment.
                yield from self.cb_conflict("crash1", self.buf_capacity, first=False,
                                            name="crash1:cbr3", loc="core.c:3126",
                                            side="worker")
            cap_now = self.buf_capacity.peek()
            written += size - size // 2  # second segment
            if written > cap_now:
                raise RuntimeError(f"SIGSEGV: buffer overflow ({written} > {cap_now})")
        # --- logcorrupt1: reserve offset, then copy the record ---
        off = yield from self.log_offset.get(loc="mod_log_config.c:1408")
        yield from self.cb_conflict("logcorrupt1", self.log_offset, first=True,
                                    loc="mod_log_config.c:1408")
        record = f"GET /page{req} wid={wid}"
        yield from self.log_offset.set(off + len(record), loc="mod_log_config.c:1409")
        if any(o2 <= off < o2 + len(r2) for o2, r2 in self.log_records):
            # Two workers reserved overlapping extents: this copy lands on
            # top of an existing record — detected as it happens, so the
            # MTTE clock reads the true corruption time.
            self.note_error("log corruption")
        self.log_records.append((off, record))

    def _recycler(self):
        rng = self.kernel.rng
        yield Sleep(rng.uniform(0.05, 0.15))
        # cbr1 partner: recycle initiated while a large request is parsed.
        hit1 = yield from self.cb_conflict("crash1", self.buf_capacity, first=True,
                                           name="crash1:cbr1", loc="core.c:4230",
                                           side="recycler")
        yield Sleep(0.005)  # walk the connection table
        hit2 = False
        if hit1:
            # cbr2 partner: shrink to the small pool size.
            hit2 = yield from self.cb_conflict("crash1", self.buf_capacity, first=True,
                                               name="crash1:cbr2", loc="core.c:4235",
                                               side="recycler")
        yield from self.buf_capacity.set(48, loc="core.c:4236")
        yield Sleep(0.001)
        if hit2:
            # cbr3 partner: final shrink.
            yield from self.cb_conflict("crash1", self.buf_capacity, first=True,
                                        name="crash1:cbr3", loc="core.c:4242",
                                        side="recycler")
        yield from self.buf_capacity.set(16, loc="core.c:4243")

    # ------------------------------------------------------------------
    def oracle(self, result: RunResult) -> Optional[str]:
        """Classify the run's symptom, or None for a clean run."""
        for f in result.failures:
            if "SIGSEGV" in str(f.exc):
                return "server crash"
        if any(sym == "log corruption" for _, sym in self.errors):
            return "log corruption"
        return None
