"""``cache4j`` — a thread-safe in-memory object cache (3,897 LoC original).

Table 1 rows: three silent data races (probabilities 1.00 / 0.99 / 1.00)
and one atomicity violation in the ``CacheObject`` constructor whose
breakpoint needs the ``ignoreFirst=7200`` refinement (Section 6.3): the
test harness constructs a fixed number of objects during initialisation,
and without the refinement the constructor-site breakpoint pauses at
every one of them, inflating the runtime enormously.

Re-created structure:

* ``race1`` — ``put`` updates the cache's ``size`` counter with an
  unsynchronised read-modify-write.  The breakpoint sits *between* the
  read and the write, so when two putters meet there both hold stale
  values and the lost update is guaranteed (observable: final counter
  below the number of puts).
* ``race2`` — the hit-statistics counter in ``get`` has the same flaw.
* ``race3`` — the LRU head pointer is republished without the segment
  lock; same RMW pattern.
* ``atomicity1`` — ``put`` publishes the new ``CacheObject`` into the
  map *before* its constructor finishes, and the constructor sets
  ``valid=True`` before storing the payload.  A ``get`` of the in-flight
  key between the two writes observes a valid-but-empty object.  The
  constructor site is also executed ``init_objects`` times during
  warm-up, which is what ``ignore_first`` (scaled default 60, standing
  in for the paper's 7200) skips.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.predicates import SitePolicy
from repro.sim.kernel import Kernel, RunResult
from repro.sim.memory import SharedCell
from repro.sim.primitives import SimRLock
from repro.sim.syscalls import BeginAtomic, EndAtomic, Sleep

from .base import BaseApp, BugSpec

__all__ = ["Cache4jApp", "CacheObject"]

#: Scaled stand-in for the paper's 7200 warm-up constructions.
DEFAULT_INIT_OBJECTS = 60
DEFAULT_IGNORE_FIRST = 60


class CacheObject:
    """A cached payload with the unsafe-publication constructor bug."""

    def __init__(self, name: str) -> None:
        self.valid = SharedCell(False, name=f"{name}.valid")
        self.payload = SharedCell(None, name=f"{name}.payload")
        self.name = name

    def construct(self, app: "Cache4jApp", value):
        """The buggy constructor body: ``valid`` is set before the payload."""
        yield BeginAtomic("CacheObject.ctor")
        yield from self.valid.set(True, loc="CacheObject.java:32")
        # Breakpoint site between the two publication writes (second
        # action: a matched getter reads the empty payload first).
        yield from app.cb_conflict(
            "atomicity1", self, first=False, loc="CacheObject.java:33", atomicity=True
        )
        yield from self.payload.set(value, loc="CacheObject.java:34")
        yield EndAtomic("CacheObject.ctor")
        return self


class Cache4jApp(BaseApp):
    """Warm-up construction phase, then concurrent put/get workers."""

    name = "cache4j"
    paper_loc = "3,897"
    bugs = {
        "race1": BugSpec(
            id="race1", kind="race", error="",
            description="unsynchronised size counter RMW in put(): lost update",
        ),
        "race2": BugSpec(
            id="race2", kind="race", error="",
            description="unsynchronised hit-statistics RMW in get(): lost update",
        ),
        "race3": BugSpec(
            id="race3", kind="race", error="",
            description="LRU head republished without the segment lock",
        ),
        "atomicity1": BugSpec(
            id="atomicity1", kind="atomicity", error="",
            description="CacheObject published before construction completes",
            comments=f"ignoreFirst={DEFAULT_IGNORE_FIRST}",
        ),
    }

    def policies(self) -> Dict[str, SitePolicy]:
        """Fresh per-bug Section 6.3 refinement policies."""
        return {
            "race1": SitePolicy(bound=1),
            "race2": SitePolicy(bound=1),
            "race3": SitePolicy(bound=1),
            "atomicity1": SitePolicy(
                ignore_first=self.param("ignore_first", DEFAULT_IGNORE_FIRST), bound=1
            ),
        }

    #: LRU capacity for the working set (warm-up entries excluded).
    CAPACITY = 16

    def setup(self, kernel: Kernel) -> None:
        """Build shared state and spawn this subject's threads."""
        self.cache_lock = SimRLock("cache.segment", tag="CacheSegment")
        self.size = SharedCell(0, name="cache.size")
        self.hits = SharedCell(0, name="cache.hits")
        self.lru_head = SharedCell(0, name="cache.lru_head")
        self.lru_writes = 0
        self.store: Dict[str, CacheObject] = {}
        #: Recency order of the working-set keys, most recent last — the
        #: real cache behaviour (eviction) the functional tests cover.
        self.lru_order: list = []
        self.evictions = 0
        self.last_key: Optional[str] = None
        self.puts_done = 0
        self.gets_done = 0
        kernel.spawn(self._init_phase, name="init")

    # ------------------------------------------------------------------
    def _init_phase(self):
        """Warm-up: construct objects sequentially, then start workers."""
        n = self.param("init_objects", DEFAULT_INIT_OBJECTS)
        for i in range(n):
            key = f"warm{i}"
            obj = CacheObject(key)
            self.store[key] = obj
            yield from obj.construct(self, i)
        workers = self.param("workers", 2)
        ops = self.param("ops", 12)
        for w in range(workers):
            self.kernel.spawn(self._worker, w, ops, name=f"worker{w}")

    def _worker(self, wid: int, ops: int):
        rng = self.kernel.rng
        for i in range(ops):
            yield Sleep(rng.uniform(0.0005, 0.004))
            if rng.random() < 0.5:
                yield from self._put(f"k{wid}_{i}", wid * 1000 + i)
            else:
                key = self.last_key or "warm0"
                yield from self._get(key)

    # ------------------------------------------------------------------
    def _touch_lru(self, key: str) -> None:
        """Move ``key`` to most-recent; evict the LRU entry over capacity.

        Called under the segment lock — this part of cache4j is correct;
        the bugs live in the unsynchronised bookkeeping around it.
        """
        if key in self.lru_order:
            self.lru_order.remove(key)
        self.lru_order.append(key)
        while len(self.lru_order) > self.CAPACITY:
            victim = self.lru_order.pop(0)
            self.store.pop(victim, None)
            self.evictions += 1

    def _put(self, key: str, value):
        obj = CacheObject(key)
        # Unsafe publication: visible in the map before construction.
        yield from self.cache_lock.acquire(loc="CacheImpl.java:88")
        self.store[key] = obj
        self._touch_lru(key)
        self.last_key = key
        yield from self.cache_lock.release(loc="CacheImpl.java:88")
        yield from obj.construct(self, value)
        self.puts_done += 1
        # race1: size counter RMW outside the segment lock; the
        # breakpoint parks this thread between read and write so a
        # partner putter reads the same stale value.
        n = yield from self.size.get(loc="CacheImpl.java:95")
        yield from self.cb_conflict("race1", self.size, first=True, loc="CacheImpl.java:95")
        yield from self.size.set(n + 1, loc="CacheImpl.java:96")
        # race3: LRU head republished unsynchronised (same RMW shape).
        head = yield from self.lru_head.get(loc="CacheImpl.java:102")
        yield from self.cb_conflict("race3", self.lru_head, first=True, loc="CacheImpl.java:102")
        self.lru_writes += 1
        yield from self.lru_head.set(head + 1, loc="CacheImpl.java:103")

    def _get(self, key: str):
        yield from self.cache_lock.acquire(loc="CacheImpl.java:120")
        obj = self.store.get(key)
        if obj is not None and key in self.lru_order:
            self._touch_lru(key)
        yield from self.cache_lock.release(loc="CacheImpl.java:120")
        self.gets_done += 1
        if obj is None:
            return None
        valid = yield from obj.valid.get(loc="CacheImpl.java:131")
        if valid:
            # Breakpoint (first action): on a match with the in-flight
            # constructor, this thread reads the payload first — empty.
            # The extra local predicate ("payload still unset") keeps two
            # getters on a completed object from matching each other.
            yield from self.cb_conflict(
                "atomicity1", obj, first=True, loc="CacheImpl.java:132", atomicity=True,
                local=lambda: obj.payload.peek() is None,
            )
            payload = yield from obj.payload.get(loc="CacheImpl.java:133")
            if payload is None:
                self.note_error("stale publication")
        # race2: hit statistics RMW outside any lock.
        h = yield from self.hits.get(loc="CacheImpl.java:140")
        yield from self.cb_conflict("race2", self.hits, first=True, loc="CacheImpl.java:140")
        yield from self.hits.set(h + 1, loc="CacheImpl.java:141")
        return obj

    # ------------------------------------------------------------------
    def oracle(self, result: RunResult) -> Optional[str]:
        """Classify the run's symptom, or None for a clean run."""
        if any(sym == "stale publication" for _, sym in self.errors):
            return "stale publication"
        if self.size.peek() < self.puts_done:
            return "lost size update"
        if self.hits.peek() < self.gets_done and self.cfg.bug == "race2":
            return "lost hit count"
        if self.lru_head.peek() < self.lru_writes and self.cfg.bug == "race3":
            return "lru inconsistency"
        return None
