"""``pool`` — the Apache commons-pool missed notification (11,025 LoC).

Table 1 row: ``missed-notify1``, error *stall*, probability 1.00, found
via **Methodology II** (the bug class "cannot be detected easily using
concurrency testing techniques" — it is a lost wake-up, not a lockset or
lock-order violation).

Structure: ``GenericObjectPool.borrowObject`` has a fast-path emptiness
check *outside* the monitor; if the pool looks empty it enters the
monitor and waits — without re-checking (the bug).  ``returnObject`` adds
the instance and notifies under the monitor.  When the return lands in
the borrower's check-to-wait window, the notification is consumed by
nobody and the borrower sleeps forever with an available object in the
pool.

The breakpoint is a :class:`ConflictTrigger` on the pool, inserted at the
returner's monitor entry (first action) and inside the borrower's window
(second action): forced order = return-then-wait = guaranteed stall.
Methodology II found these two sites by probing the pool monitor's
contention pairs in both orders (see ``examples/missed_notification_log4j.py``
for the walkthrough on the log4j sibling).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.predicates import SitePolicy
from repro.sim.kernel import Kernel, RunResult
from repro.sim.memory import SharedCell
from repro.sim.primitives import SimCondition, SimRLock
from repro.sim.syscalls import Sleep

from .base import BaseApp, BugSpec

__all__ = ["PoolApp"]


class PoolApp(BaseApp):
    """One borrower and one returner on an object pool."""

    name = "pool"
    paper_loc = "11,025"
    bugs = {
        "missed-notify1": BugSpec(
            id="missed-notify1", kind="missed-notify", error="stall",
            description="borrowObject's unsynchronised empty-check races returnObject's notify",
            comments="Meth. II",
            methodology=2,
        ),
    }

    def policies(self) -> Dict[str, SitePolicy]:
        """Fresh per-bug Section 6.3 refinement policies."""
        return {"missed-notify1": SitePolicy(bound=1)}

    def setup(self, kernel: Kernel) -> None:
        """Build shared state and spawn this subject's threads."""
        self.monitor = SimRLock("GenericObjectPool", tag="GenericObjectPool")
        self.available = SimCondition(self.monitor, name="pool.available")
        self.size = SharedCell(0, name="pool.size")  # observable fast-path cell
        self.instances: List[object] = []
        self.borrowed = False
        kernel.spawn(self._borrower, name="borrower")
        kernel.spawn(self._returner, name="returner")

    def _borrower(self):
        rng = self.kernel.rng
        yield Sleep(rng.uniform(0.001, 0.01))
        # Fast path: unsynchronised emptiness check (the bug's first half).
        n = yield from self.size.get(loc="GenericObjectPool.java:778")
        if n == 0:
            # Breakpoint site inside the check-to-wait window (second
            # action: the matched returner's add+notify lands first,
            # and is lost).
            yield from self.cb_conflict(
                "missed-notify1", self.monitor, first=False,
                loc="GenericObjectPool.java:805",
            )
            yield from self.monitor.acquire(loc="GenericObjectPool.java:809")
            # BUG: no re-check of the pool under the monitor before waiting.
            yield from self.available.wait(loc="GenericObjectPool.java:810")
            yield from self.monitor.release(loc="GenericObjectPool.java:812")
        # Take the instance.
        yield from self.monitor.acquire(loc="GenericObjectPool.java:820")
        if self.instances:
            self.instances.pop()
            self.borrowed = True
        yield from self.monitor.release(loc="GenericObjectPool.java:824")

    def _returner(self):
        rng = self.kernel.rng
        yield Sleep(rng.uniform(0.001, 0.01))
        # Breakpoint site at returnObject's monitor entry (first action).
        yield from self.cb_conflict(
            "missed-notify1", self.monitor, first=True,
            loc="GenericObjectPool.java:902",
        )
        yield from self.monitor.acquire(loc="GenericObjectPool.java:905")
        self.instances.append(object())
        n = yield from self.size.get(loc="GenericObjectPool.java:907")
        yield from self.size.set(n + 1, loc="GenericObjectPool.java:907")
        yield from self.available.notify(loc="GenericObjectPool.java:909")
        yield from self.monitor.release(loc="GenericObjectPool.java:911")

    def oracle(self, result: RunResult) -> Optional[str]:
        """Classify the run's symptom, or None for a clean run."""
        return "stall" if result.stall_or_deadlock else None
