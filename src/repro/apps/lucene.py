"""``lucene`` — the Apache Lucene indexing deadlock (171K LoC).

Table 1 row: ``deadlock1``, error *stall*, probability 1.00, overhead 17%.

The known Lucene deadlock (LUCENE-639-family): ``IndexWriter`` methods
synchronize on the writer and then on the ``DocumentsWriter`` state;
flush/optimize paths synchronize on the ``DocumentsWriter`` and call back
into the writer — ABBA.  The indexing thread visits its nested
acquisition many times (once per document), which is where the paper's
modest 17% overhead comes from: postponements at the indexing site that
time out until the committer finally co-arrives.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.predicates import SitePolicy
from repro.sim.kernel import Kernel, RunResult
from repro.sim.primitives import SimRLock
from repro.sim.syscalls import Sleep

from .base import BaseApp, BugSpec

__all__ = ["LuceneApp"]


class LuceneApp(BaseApp):
    """An indexing thread racing a flush/commit thread."""

    name = "lucene"
    paper_loc = "171K"
    bugs = {
        "deadlock1": BugSpec(
            id="deadlock1", kind="deadlock", error="stall",
            description="IndexWriter monitor vs DocumentsWriter monitor ABBA inversion",
        ),
    }

    def policies(self) -> Dict[str, SitePolicy]:
        """Fresh per-bug Section 6.3 refinement policies."""
        return {"deadlock1": SitePolicy(bound=1)}

    def setup(self, kernel: Kernel) -> None:
        """Build shared state and spawn this subject's threads."""
        self.writer_monitor = SimRLock("IndexWriter", tag="IndexWriter")
        self.docs_monitor = SimRLock("DocumentsWriter", tag="DocumentsWriter")
        self.docs_indexed = 0
        kernel.spawn(self._indexer, name="indexer")
        kernel.spawn(self._committer, name="committer")

    def _indexer(self):
        rng = self.kernel.rng
        for _ in range(self.param("documents", 8)):
            yield Sleep(rng.uniform(0.001, 0.006))  # analyse the document
            # addDocument: writer monitor, then the shared doc state.
            yield from self.writer_monitor.acquire(loc="IndexWriter.java:1012")
            yield from self.cb_deadlock(
                "deadlock1", self.writer_monitor, self.docs_monitor, first=True,
                loc="IndexWriter.java:1020",
            )
            yield from self.docs_monitor.acquire(loc="DocumentsWriter.java:355")
            self.docs_indexed += 1
            yield from self.docs_monitor.release(loc="DocumentsWriter.java:371")
            yield from self.writer_monitor.release(loc="IndexWriter.java:1031")

    def _committer(self):
        rng = self.kernel.rng
        yield Sleep(rng.uniform(0.004, 0.03))
        # flush: doc state first, then back into the writer.
        yield from self.docs_monitor.acquire(loc="DocumentsWriter.java:580")
        yield from self.cb_deadlock(
            "deadlock1", self.docs_monitor, self.writer_monitor, first=False,
            loc="DocumentsWriter.java:586",
        )
        yield from self.writer_monitor.acquire(loc="IndexWriter.java:2130")
        yield from self.writer_monitor.release(loc="IndexWriter.java:2144")
        yield from self.docs_monitor.release(loc="DocumentsWriter.java:592")

    def oracle(self, result: RunResult) -> Optional[str]:
        """Classify the run's symptom, or None for a clean run."""
        return "stall" if result.stall_or_deadlock else None
