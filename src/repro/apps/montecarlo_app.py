"""``montecarlo`` — the Java Grande Monte-Carlo pricing kernel (3,560 LoC).

Table 1 row: one silent race, comment ``bound=10``.

JGF MonteCarlo runs many independent price-path simulations across
threads and gathers per-task results into a shared ``Vector``-backed
results structure.  The results *count* is maintained with an
unsynchronised read-modify-write, so concurrent task completions drop
results — the final aggregate is computed over fewer samples than were
simulated.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.predicates import SitePolicy
from repro.sim.kernel import Kernel, RunResult
from repro.sim.memory import SharedCell
from repro.sim.syscalls import Sleep

from .base import BaseApp, BugSpec

__all__ = ["MonteCarloApp"]


class MonteCarloApp(BaseApp):
    """Worker threads simulate price paths and racily count completions."""

    name = "montecarlo"
    paper_loc = "3,560"
    bugs = {
        "race1": BugSpec(
            id="race1", kind="race", error="",
            description="results counter RMW race on task completion",
            comments="bound=10",
        ),
    }

    def policies(self) -> Dict[str, SitePolicy]:
        """Fresh per-bug Section 6.3 refinement policies."""
        return {"race1": SitePolicy(bound=self.param("race1_bound", 10))}

    def setup(self, kernel: Kernel) -> None:
        """Build shared state and spawn this subject's threads."""
        self.n_threads = self.param("threads", 2)
        self.tasks_per_thread = self.param("tasks", 20)
        self.path_length = self.param("path_length", 64)
        self.results_count = SharedCell(0, name="results.count")
        self.results: List[float] = []
        self.expected = self.n_threads * self.tasks_per_thread
        for tid in range(self.n_threads):
            kernel.spawn(self._worker, tid, name=f"mcrunner{tid}")

    def _worker(self, tid: int):
        rng = self.kernel.rng
        paths = np.random.default_rng(1000 + tid)  # workload randomness, fixed
        for _ in range(self.tasks_per_thread):
            # One price-path simulation: vectorised random walk (atomic
            # between yields); virtual duration jitter staggers finishes.
            walk = paths.standard_normal(self.path_length)
            price = float(np.exp(walk.cumsum() * 0.01)[-1])
            yield Sleep(rng.uniform(0.0005, 0.006))
            self.results.append(price)
            # Completion count: racy RMW with the breakpoint in the gap.
            n = yield from self.results_count.get(loc="MonteCarlo.java:121")
            yield from self.cb_conflict(
                "race1", self.results_count, first=True, loc="MonteCarlo.java:121"
            )
            yield from self.results_count.set(n + 1, loc="MonteCarlo.java:122")

    def oracle(self, result: RunResult) -> Optional[str]:
        """Classify the run's symptom, or None for a clean run."""
        if self.results_count.peek() < self.expected:
            return "lost results"
        return None
