"""``raytracer`` — the Java Grande ray tracer (1,860 LoC).

Table 1 rows: four races.  ``race1`` and ``race2`` make the *validation
fail* (the JGF harness checks a pixel checksum at the end, and the lost
updates corrupt it — error column "test fail"); ``race3`` and ``race4``
are silent races on auxiliary state.

Re-created structure: worker threads render interleaved scan lines of a
small procedural scene (NumPy shading between scheduling points) and fold
per-row results into shared accumulators:

* ``race1`` — the global pixel ``checksum`` RMW (the JGF bug: the
  original used an unsynchronised ``checksum1 += ...``) → test fail;
* ``race2`` — the rendered-rows counter RMW; the harness cross-checks it
  against the image height → test fail;
* ``race3`` — a shared scratch ``maxdepth`` statistic, silent;
* ``race4`` — the thread-pool idle counter, silent.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.predicates import SitePolicy
from repro.sim.kernel import Kernel, RunResult
from repro.sim.memory import SharedCell
from repro.sim.syscalls import Sleep

from .base import BaseApp, BugSpec

__all__ = ["RayTracerApp"]


class RayTracerApp(BaseApp):
    """Scan-line renderer with racy result folding."""

    name = "raytracer"
    paper_loc = "1,860"
    bugs = {
        "race1": BugSpec(
            id="race1", kind="race", error="test fail",
            description="pixel checksum RMW race: validation fails",
        ),
        "race2": BugSpec(
            id="race2", kind="race", error="test fail",
            description="rendered-row counter RMW race: validation fails",
        ),
        "race3": BugSpec(
            id="race3", kind="race", error="",
            description="max ray depth statistic RMW race (silent)",
        ),
        "race4": BugSpec(
            id="race4", kind="race", error="",
            description="idle-worker counter RMW race (silent)",
        ),
    }

    def policies(self) -> Dict[str, SitePolicy]:
        """Fresh per-bug Section 6.3 refinement policies."""
        return {b: SitePolicy(bound=1) for b in self.bugs}

    def setup(self, kernel: Kernel) -> None:
        """Build shared state and spawn this subject's threads."""
        self.n_threads = self.param("threads", 2)
        self.height = self.param("height", 24)
        self.width = self.param("width", 32)
        self.checksum = SharedCell(0.0, name="rt.checksum")
        self.rows_done = SharedCell(0, name="rt.rows_done")
        self.maxdepth = SharedCell(0, name="rt.maxdepth")
        self.idle = SharedCell(0, name="rt.idle")
        self.maxdepth_updates = 0
        self.idle_updates = 0
        # Deterministic expected checksum: render serially up front.
        self.row_sums = [self._render_row(y) for y in range(self.height)]
        self.expected_checksum = float(sum(self.row_sums))
        for tid in range(self.n_threads):
            kernel.spawn(self._renderer, tid, name=f"rtrunner{tid}")

    #: The JGF-style scene: unit spheres on a grid, one directional light.
    SPHERES = [
        # (centre xyz, radius, diffuse albedo)
        ((-1.2, 0.0, 3.0), 1.0, 0.8),
        ((1.1, -0.3, 4.0), 1.2, 0.6),
        ((0.0, 1.2, 5.0), 0.9, 0.9),
    ]
    LIGHT = np.array([0.5, 0.7, -0.5]) / np.linalg.norm([0.5, 0.7, -0.5])

    def _render_row(self, y: int) -> float:
        """Trace one scan line: ray-sphere intersection + Lambert shading.

        Vectorised over the row's pixels (one primary ray per pixel, eye
        at the origin, viewport at z=1).  Pure and deterministic, so the
        serial pre-render gives the exact validation checksum.
        """
        xs = (np.arange(self.width) + 0.5) / self.width * 2.0 - 1.0
        ys = ((y + 0.5) / self.height * 2.0 - 1.0) * (self.height / self.width)
        dirs = np.stack([xs, np.full_like(xs, ys), np.ones_like(xs)], axis=1)
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)

        nearest_t = np.full(self.width, np.inf)
        shade = np.full(self.width, 0.05)  # background / ambient
        for centre, radius, albedo in self.SPHERES:
            c = np.asarray(centre)
            # |o + t d - c|^2 = r^2 with o = 0: t^2 - 2 t (d.c) + |c|^2 - r^2 = 0
            b = dirs @ c
            disc = b * b - (c @ c - radius * radius)
            hit = disc > 0.0
            t = np.where(hit, b - np.sqrt(np.maximum(disc, 0.0)), np.inf)
            t = np.where(t > 1e-6, t, np.inf)
            closer = t < nearest_t
            if not closer.any():
                continue
            points = dirs[closer] * t[closer, None]
            normals = (points - c) / radius
            lambert = np.maximum(normals @ self.LIGHT, 0.0)
            shade[closer] = 0.1 + 0.9 * albedo * lambert
            nearest_t = np.where(closer, t, nearest_t)
        return float(shade.sum())

    def _renderer(self, tid: int):
        rng = self.kernel.rng
        for y in range(tid, self.height, self.n_threads):
            row_sum = self.row_sums[y]
            yield Sleep(rng.uniform(0.0005, 0.004))  # per-row render time
            # race1: checksum fold.
            c = yield from self.checksum.get(loc="RayTracer.java:553")
            yield from self.cb_conflict("race1", self.checksum, first=True, loc="RayTracer.java:553")
            yield from self.checksum.set(c + row_sum, loc="RayTracer.java:554")
            # race2: row counter fold.
            r = yield from self.rows_done.get(loc="RayTracer.java:560")
            yield from self.cb_conflict("race2", self.rows_done, first=True, loc="RayTracer.java:560")
            yield from self.rows_done.set(r + 1, loc="RayTracer.java:561")
            # race3: max depth statistic.
            d = yield from self.maxdepth.get(loc="RayTracer.java:571")
            yield from self.cb_conflict("race3", self.maxdepth, first=True, loc="RayTracer.java:571")
            self.maxdepth_updates += 1
            yield from self.maxdepth.set(d + 1, loc="RayTracer.java:572")
        # race4: idle counter on completion.
        i = yield from self.idle.get(loc="RayTracer.java:610")
        yield from self.cb_conflict("race4", self.idle, first=True, loc="RayTracer.java:610")
        self.idle_updates += 1
        yield from self.idle.set(i + 1, loc="RayTracer.java:611")

    def oracle(self, result: RunResult) -> Optional[str]:
        """Classify the run's symptom, or None for a clean run."""
        if abs(self.checksum.peek() - self.expected_checksum) > 1e-9:
            return "test fail"
        if self.rows_done.peek() != self.height:
            return "test fail"
        if self.cfg.bug == "race3" and self.maxdepth.peek() < self.maxdepth_updates:
            return "lost depth update"
        if self.cfg.bug == "race4" and self.idle.peek() < self.idle_updates:
            return "lost idle update"
        return None
