"""Large-scale untimed subjects for bounded systematic exploration.

The ``bank`` subject proves the explorers correct on a two-thread
program; these three subjects prove bounded search *useful* at scale.
Each spawns tens to hundreds of threads contending on a small set of
shared locks and counters — enough commutative interleaving that
unbounded DPOR drowns in schedules — while the declared bug itself
needs only one or two preemptions to manifest, which is exactly the
regime preemption bounding targets (Musuvathi & Qadeer's observation
that real concurrency bugs have tiny preemption depth).

All three share the ``bank`` bug shape: one protagonist thread performs
a single unguarded read-modify-write on a *dedicated, rarely written*
cell, racing exactly one partner thread whose (properly locked) update
of the same cell lands only after a stretch of private warm-up work.
Under random scheduling the two windows almost never overlap — with
hundreds of runnable threads the partner would have to win every
scheduling slot through its warm-up while the protagonist wins none —
so baseline runs stay clean; systematic exploration with a preemption
budget of two reaches the losing interleaving deterministically.

No timed operations anywhere (the DPOR explorer rejects them); every
primitive and cell is named so variable bounding has stable,
process-portable keys.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.sim.kernel import Kernel, RunResult
from repro.sim.memory import SharedCell
from repro.sim.primitives import SimLock, SimSemaphore

from .base import BaseApp, BugSpec

__all__ = ["ThreadPoolApp", "MeshApp", "ConnPoolApp", "EXPLORE_PARAMS"]

#: Scaled-down workload overrides under which systematic exploration of
#: each subject is tractable (the full-size defaults are for trial
#: sweeps and PCT runs; DPOR on two hundred threads is not a test).
#: Shared by ``tests/apps/test_large_apps.py`` and the bounding
#: benchmark so both argue about the same schedule space.
EXPLORE_PARAMS: Dict[str, Dict[str, Any]] = {
    "threadpool": {"workers": 3, "tasks": 3, "audit_work": 1, "pre_work": 1},
    "mesh": {"pairs": 2, "rounds": 1, "audit_work": 1, "pre_work": 1},
    "connpool": {"clients": 3, "conns": 2, "grow_work": 1, "pre_work": 1},
}


class ThreadPoolApp(BaseApp):
    """A task-dispatch thread pool with an unguarded audit counter.

    ``workers`` threads claim task indices from a shared cursor under
    the dispatch lock and tally completions under the same lock — heavy
    commutative contention.  Worker 0 additionally bumps the pool's
    audit counter *outside* the lock as its very first action; the
    supervisor (spawned last) bumps it under the lock after its private
    warm-up.  When the supervisor's locked increment lands inside worker
    0's get→set window, worker 0's stale write erases it.
    """

    name = "threadpool"
    paper_loc = "-"
    horizon = 30.0
    bugs: Dict[str, BugSpec] = {
        "audit_race": BugSpec(
            id="audit_race",
            kind="race",
            error="test fail",
            description="worker 0 bumps the audit counter outside the "
            "dispatch lock; the supervisor's locked bump lands in the "
            "window and is lost",
            comments="untimed large subject; needs one preemption",
            oracle_mode="error",
        ),
    }

    def setup(self, kernel: Kernel) -> None:
        """Spawn the worker threads and the auditing supervisor."""
        workers = self.param("workers", 200)
        tasks = self.param("tasks", 300)
        work = self.param("work", 1)
        audit_work = self.param("audit_work", 6)
        pre_work = self.param("pre_work", 10)
        self.audit = SharedCell(0, name="audit")
        self.done = SharedCell(0, name="done")
        next_task = SharedCell(0, name="next_task")
        dispatch = SimLock("dispatch")
        self.tasks = tasks

        def worker(me: int, scratch: SharedCell):
            racy = me == 0

            def body():
                if racy:
                    # Private warm-up longer than the supervisor's: in a
                    # typical run the supervisor's locked bump lands
                    # well before this window opens, so the two overlap
                    # only when the scheduler starves the supervisor for
                    # the whole stretch (or a breakpoint holds the
                    # window open).
                    for _ in range(pre_work):
                        v = yield from scratch.get()
                        yield from scratch.set(v + 1)
                    a = yield from self.audit.get(loc="large.py:audit_fast")
                    yield from self.cb_conflict(
                        "audit_race",
                        self.audit,
                        first=True,
                        loc="large.py:audit_fast",
                    )
                    yield from self.audit.set(a + 1, loc="large.py:audit_fast")
                while True:
                    yield from dispatch.acquire()
                    t = yield from next_task.get(loc="large.py:claim")
                    if t >= tasks:
                        yield from dispatch.release()
                        break
                    yield from next_task.set(t + 1, loc="large.py:claim")
                    yield from dispatch.release()
                    for _ in range(work):
                        v = yield from scratch.get()
                        yield from scratch.set(v + 1)
                    yield from dispatch.acquire()
                    d = yield from self.done.get(loc="large.py:done")
                    yield from self.done.set(d + 1, loc="large.py:done")
                    yield from dispatch.release()

            return body

        def supervisor(scratch: SharedCell):
            def body():
                for _ in range(audit_work):
                    v = yield from scratch.get()
                    yield from scratch.set(v + 1)
                yield from dispatch.acquire()
                a = yield from self.audit.get(loc="large.py:audit")
                yield from self.cb_conflict(
                    "audit_race", self.audit, first=False, loc="large.py:audit"
                )
                yield from self.audit.set(a + 1, loc="large.py:audit")
                yield from dispatch.release()

            return body

        for me in range(workers):
            scratch = SharedCell(0, name=f"wscratch{me}")
            kernel.spawn(worker(me, scratch), name=f"worker{me}")
        kernel.spawn(supervisor(SharedCell(0, name="sscratch")), name="supervisor")

    def oracle(self, result: RunResult) -> Optional[str]:
        """Both audit bumps must survive."""
        if result.deadlocked:
            return "stall"
        if self.audit.peek() != 2:
            return "audit-mismatch"
        return None


class MeshApp(BaseApp):
    """A producer/consumer mesh losing one tally update.

    ``pairs`` producers feed ``pairs`` semaphore channels round-robin;
    ``pairs`` consumers drain a fixed quota from their own channel and
    tally consumption under the totals lock.  Consumer 0 also bumps the
    shared tally cell *outside* the lock right after its first receive;
    the auditor's locked bump races it exactly as in ``threadpool``.
    """

    name = "mesh"
    paper_loc = "-"
    horizon = 30.0
    bugs: Dict[str, BugSpec] = {
        "lost_item": BugSpec(
            id="lost_item",
            kind="race",
            error="test fail",
            description="consumer 0 bumps the item tally outside the "
            "totals lock; the auditor's locked bump lands in the window "
            "and is lost",
            comments="untimed large subject; needs two preemptions",
            oracle_mode="error",
        ),
    }

    def setup(self, kernel: Kernel) -> None:
        """Spawn producers, consumers, and the auditing thread."""
        pairs = self.param("pairs", 60)
        rounds = self.param("rounds", 2)
        work = self.param("work", 1)
        audit_work = self.param("audit_work", 6)
        pre_work = self.param("pre_work", 10)
        self.tally = SharedCell(0, name="tally")
        self.consumed = SharedCell(0, name="consumed")
        totals = SimLock("totals")
        chans = [SimSemaphore(0, name=f"chan{j}") for j in range(pairs)]

        def producer(i: int):
            def body():
                # Round-robin fan-out: channel j receives exactly
                # ``rounds`` items in total, matching its consumer's
                # quota, so the mesh always drains.
                for r in range(rounds):
                    yield from chans[(i + r) % pairs].release()

            return body

        def consumer(j: int, scratch: SharedCell):
            def body():
                for r in range(rounds):
                    yield from chans[j].acquire()
                    if j == 0 and r == 0:
                        for _ in range(pre_work):
                            v = yield from scratch.get()
                            yield from scratch.set(v + 1)
                        t = yield from self.tally.get(loc="large.py:tally_fast")
                        yield from self.cb_conflict(
                            "lost_item",
                            self.tally,
                            first=True,
                            loc="large.py:tally_fast",
                        )
                        yield from self.tally.set(t + 1, loc="large.py:tally_fast")
                    for _ in range(work):
                        v = yield from scratch.get()
                        yield from scratch.set(v + 1)
                    yield from totals.acquire()
                    c = yield from self.consumed.get(loc="large.py:consumed")
                    yield from self.consumed.set(c + 1, loc="large.py:consumed")
                    yield from totals.release()

            return body

        def auditor(scratch: SharedCell):
            def body():
                for _ in range(audit_work):
                    v = yield from scratch.get()
                    yield from scratch.set(v + 1)
                yield from totals.acquire()
                t = yield from self.tally.get(loc="large.py:tally")
                yield from self.cb_conflict(
                    "lost_item", self.tally, first=False, loc="large.py:tally"
                )
                yield from self.tally.set(t + 1, loc="large.py:tally")
                yield from totals.release()

            return body

        for i in range(pairs):
            kernel.spawn(producer(i), name=f"producer{i}")
        for j in range(pairs):
            scratch = SharedCell(0, name=f"cscratch{j}")
            kernel.spawn(consumer(j, scratch), name=f"consumer{j}")
        kernel.spawn(auditor(SharedCell(0, name="ascratch")), name="auditor")

    def oracle(self, result: RunResult) -> Optional[str]:
        """Both tally bumps must survive."""
        if result.deadlocked:
            return "stall"
        if self.tally.peek() != 2:
            return "tally-mismatch"
        return None


class ConnPoolApp(BaseApp):
    """A connection-pooled server under client load.

    ``clients`` threads lease and return connections through a counting
    semaphore plus a locked free-count — the hot, always-locked traffic
    that makes unbounded exploration explode.  The race lives on the
    *spare-connection tally*, a dedicated cell only two threads ever
    write: client 0 bumps it outside the pool lock on its first lease
    (recording the connection it will donate back), and the scaler bumps
    it under the lock after its warm-up.  The scaler's bump landing
    inside client 0's get→set window is lost.
    """

    name = "connpool"
    paper_loc = "-"
    horizon = 30.0
    bugs: Dict[str, BugSpec] = {
        "grow_race": BugSpec(
            id="grow_race",
            kind="race",
            error="test fail",
            description="client 0 bumps the spare-connection tally "
            "outside the pool lock; the scaler's locked grow-by-one "
            "lands in the window and is lost",
            comments="untimed large subject; needs one preemption",
            oracle_mode="error",
        ),
    }

    def setup(self, kernel: Kernel) -> None:
        """Spawn the client threads and the pool scaler."""
        clients = self.param("clients", 180)
        conns = self.param("conns", 8)
        work = self.param("work", 1)
        grow_work = self.param("grow_work", 6)
        pre_work = self.param("pre_work", 10)
        self.spare = SharedCell(0, name="spare")
        free = SharedCell(conns, name="free")
        permits = SimSemaphore(conns, name="permits")
        pool = SimLock("pool")

        def client(me: int, scratch: SharedCell):
            # Client 0 rides the pool's reserved warm connection: no
            # permit needed, so it always reaches its racy bookkeeping
            # even when the permit holders are queued on the pool lock.
            racy = me == 0

            def body():
                if racy:
                    for _ in range(pre_work):
                        v = yield from scratch.get()
                        yield from scratch.set(v + 1)
                    s = yield from self.spare.get(loc="large.py:spare_fast")
                    yield from self.cb_conflict(
                        "grow_race",
                        self.spare,
                        first=True,
                        loc="large.py:spare_fast",
                    )
                    yield from self.spare.set(s + 1, loc="large.py:spare_fast")
                else:
                    yield from permits.acquire()
                yield from pool.acquire()
                f = yield from free.get(loc="large.py:lease")
                yield from free.set(f - 1, loc="large.py:lease")
                yield from pool.release()
                for _ in range(work):
                    v = yield from scratch.get()
                    yield from scratch.set(v + 1)
                yield from pool.acquire()
                f = yield from free.get(loc="large.py:unlease")
                yield from free.set(f + 1, loc="large.py:unlease")
                yield from pool.release()
                if not racy:
                    yield from permits.release()

            return body

        def scaler(scratch: SharedCell):
            def body():
                for _ in range(grow_work):
                    v = yield from scratch.get()
                    yield from scratch.set(v + 1)
                yield from pool.acquire()
                s = yield from self.spare.get(loc="large.py:grow")
                yield from self.cb_conflict(
                    "grow_race", self.spare, first=False, loc="large.py:grow"
                )
                yield from self.spare.set(s + 1, loc="large.py:grow")
                yield from pool.release()
                yield from permits.release()

            return body

        for me in range(clients):
            scratch = SharedCell(0, name=f"clscratch{me}")
            kernel.spawn(client(me, scratch), name=f"client{me}")
        kernel.spawn(scaler(SharedCell(0, name="gscratch")), name="scaler")

    def oracle(self, result: RunResult) -> Optional[str]:
        """Both spare-tally bumps must survive."""
        if result.deadlocked:
            return "stall"
        if self.spare.peek() != 2:
            return "pool-corrupt"
        return None
