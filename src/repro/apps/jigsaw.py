"""``jigsaw`` — W3C's Jigsaw web server (160K LoC original).

Table 1 rows: ``deadlock1``, ``deadlock2``, ``missed-notify1`` (Meth. II),
``race1`` (error: stall) and ``race2`` (silent) — all reproduced at 1.00.
The paper cannot report Jigsaw runtimes ("interactiveness as a server");
for stalls it reports the time the stall was first detected, as we do.

Re-created structure, following paper Figure 2: a
``SocketClientFactory`` with its ``csList`` lock and factory monitor,
client connection threads, a request-handler thread, and an admin thread
driving ``killClients`` / shutdown, with a test harness that simulates
simultaneous page requests and administrative commands.

* ``deadlock1`` — the Figure 2 inversion: ``clientConnectionFinished``
  holds ``csList`` (line 623) and calls ``decrIdleCount`` which
  synchronizes on the factory (line 574); ``killClients`` holds the
  factory (line 867) and takes ``csList`` (line 872).
* ``deadlock2`` — a second inversion between the logger monitor and the
  factory monitor (client access logging vs admin status logging).
* ``missed-notify1`` — the shutdown path's wait-for-idle checks the idle
  count outside the monitor and then waits without re-checking; the last
  client's decrement+notify lands in the window and is lost.
* ``race1`` — check-then-act on the ``alive`` flag: a client reads
  ``alive == true``, the admin shuts the handler down, the client then
  enqueues a request nobody will ever serve and waits forever (stall).
* ``race2`` — the served-requests statistics counter RMW (silent).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.predicates import SitePolicy
from repro.sim.kernel import Kernel, RunResult
from repro.sim.memory import SharedCell
from repro.sim.primitives import SimCondition, SimEvent, SimRLock
from repro.sim.syscalls import Sleep

from .base import BaseApp, BugSpec

__all__ = ["JigsawApp"]


class JigsawApp(BaseApp):
    """Simulated-clients harness over the factory/handler/admin core."""

    name = "jigsaw"
    paper_loc = "160K"
    bugs = {
        "deadlock1": BugSpec(
            id="deadlock1", kind="deadlock", error="stall",
            description="csList/factory ABBA (Figure 2: lines 623/574 vs 867/872)",
        ),
        "deadlock2": BugSpec(
            id="deadlock2", kind="deadlock", error="stall",
            description="logger/factory ABBA between access and status logging",
        ),
        "missed-notify1": BugSpec(
            id="missed-notify1", kind="missed-notify", error="stall",
            description="wait-for-idle misses the last client's decrement notify",
            comments="Meth. II", methodology=2,
        ),
        "race1": BugSpec(
            id="race1", kind="race", error="stall",
            description="alive-flag check-then-act: request enqueued after handler exit",
        ),
        "race2": BugSpec(
            id="race2", kind="race", error="",
            description="served-request statistics RMW race between clients",
        ),
    }

    def policies(self) -> Dict[str, SitePolicy]:
        """Fresh per-bug Section 6.3 refinement policies."""
        return {b: SitePolicy(bound=1) for b in self.bugs}

    # ------------------------------------------------------------------
    def setup(self, kernel: Kernel) -> None:
        """Build shared state and spawn this subject's threads."""
        n_clients = self.param("clients", 3)
        self.factory_monitor = SimRLock("SocketClientFactory", tag="SocketClientFactory")
        self.cslist_lock = SimRLock("csList", tag="SocketClientState")
        self.logger_monitor = SimRLock("CommonLogger", tag="CommonLogger")
        self.idle_cond = SimCondition(self.factory_monitor, name="factory.idle")
        self.req_monitor = SimRLock("RequestQueue", tag="RequestQueue")
        self.req_cond = SimCondition(self.req_monitor, name="requests.available")
        self.queue: List[int] = []
        self.alive = SharedCell(True, name="server.alive")
        self.idle_count = SharedCell(n_clients, name="factory.idleCount")
        self.stats = SharedCell(0, name="server.stats")
        self.stats_updates = 0
        self.responses = [SimEvent(name=f"response{i}") for i in range(n_clients)]
        for i in range(n_clients):
            kernel.spawn(self._client, i, name=f"client{i}")
        kernel.spawn(self._handler, name="handler")
        kernel.spawn(self._admin, name="admin")

    # ------------------------------------------------------------------
    #: Per-client connect/think-time profiles: early clients give the
    #: admin a parked deadlock1 partner; the slow straggler keeps the
    #: idle count above zero until the admin's wait-for-idle window.
    CONNECT_WINDOWS = [(0.002, 0.012), (0.010, 0.030), (0.080, 0.120)]

    def _client(self, cid: int):
        rng = self.kernel.rng
        lo, hi = self.CONNECT_WINDOWS[cid % len(self.CONNECT_WINDOWS)]
        yield Sleep(rng.uniform(lo, hi))  # connect + think time
        # --- request phase: check-then-act on the alive flag (race1) ---
        alive = yield from self.alive.get(loc="SocketClient.java:204")
        if alive:
            yield from self.cb_conflict("race1", self.alive, first=False,
                                        loc="SocketClient.java:206", side="reader")
            yield from self.req_monitor.acquire(loc="SocketClient.java:208")
            self.queue.append(cid)
            yield from self.req_cond.notify(loc="SocketClient.java:210")
            yield from self.req_monitor.release(loc="SocketClient.java:212")
            yield from self.responses[cid].wait(loc="SocketClient.java:215")
            # --- statistics (race2): RMW with breakpoint in the gap ---
            s = yield from self.stats.get(loc="httpd.java:1402")
            yield from self.cb_conflict("race2", self.stats, first=True, loc="httpd.java:1402")
            self.stats_updates += 1
            yield from self.stats.set(s + 1, loc="httpd.java:1403")
            # --- access logging (deadlock2, logger -> factory) ---
            yield from self.logger_monitor.acquire(loc="CommonLogger.java:88")
            yield from self.cb_deadlock(
                "deadlock2", self.logger_monitor, self.factory_monitor, first=True,
                loc="CommonLogger.java:92",
            )
            yield from self.factory_monitor.acquire(loc="SocketClientFactory.java:574")
            yield from self.factory_monitor.release(loc="SocketClientFactory.java:577")
            yield from self.logger_monitor.release(loc="CommonLogger.java:95")
        # --- clientConnectionFinished (deadlock1 + missed-notify1) ---
        yield from self.cslist_lock.acquire(loc="SocketClientFactory.java:623")
        yield from self.cb_deadlock(
            "deadlock1", self.cslist_lock, self.factory_monitor, first=True,
            loc="SocketClientFactory.java:626",
        )
        # decrIdleCount: synchronized on the factory (line 574).
        yield from self.factory_monitor.acquire(loc="SocketClientFactory.java:574")
        n = yield from self.idle_count.get(loc="SocketClientFactory.java:575")
        yield from self.idle_count.set(n - 1, loc="SocketClientFactory.java:575")
        # missed-notify1, client side: parked just before the notify,
        # still inside the factory monitor — the matched admin then
        # cannot enter its wait until this whole block (including the
        # notify it is about to miss) completes.  Refined to the last
        # client (idle count just dropped to zero).
        yield from self.cb_conflict(
            "missed-notify1", self.factory_monitor, first=True,
            loc="SocketClientFactory.java:576", side="notifier",
            local=lambda: self.idle_count.peek() == 0,
        )
        yield from self.idle_cond.notify(loc="SocketClientFactory.java:576")
        yield from self.factory_monitor.release(loc="SocketClientFactory.java:578")
        yield from self.cslist_lock.release(loc="SocketClientFactory.java:630")

    # ------------------------------------------------------------------
    def _handler(self):
        while True:
            yield from self.req_monitor.acquire(loc="httpd.java:980")
            while not self.queue:
                alive = yield from self.alive.get(loc="httpd.java:982")
                if not alive:
                    # BUG: exits without draining late enqueues.
                    yield from self.req_monitor.release(loc="httpd.java:984")
                    return
                yield from self.req_cond.wait(loc="httpd.java:986")
            # Re-check alive after wake: the handler treats shutdown as
            # immediate (this is the exit the race1 client loses to).
            alive = yield from self.alive.get(loc="httpd.java:989")
            if not alive:
                yield from self.req_monitor.release(loc="httpd.java:990")
                return
            cid = self.queue.pop(0)
            yield from self.req_monitor.release(loc="httpd.java:992")
            yield Sleep(0.001)  # serve the page
            yield from self.responses[cid].set(loc="httpd.java:1001")

    # ------------------------------------------------------------------
    def _admin(self):
        rng = self.kernel.rng
        yield Sleep(rng.uniform(0.035, 0.05))
        # --- status logging (deadlock2, factory -> logger) ---
        yield from self.factory_monitor.acquire(loc="SocketClientFactory.java:840")
        yield from self.cb_deadlock(
            "deadlock2", self.factory_monitor, self.logger_monitor, first=False,
            loc="SocketClientFactory.java:843",
        )
        yield from self.logger_monitor.acquire(loc="CommonLogger.java:120")
        yield from self.logger_monitor.release(loc="CommonLogger.java:123")
        yield from self.factory_monitor.release(loc="SocketClientFactory.java:846")
        # --- killClients (deadlock1: factory at 867, csList at 872) ---
        yield from self.factory_monitor.acquire(loc="SocketClientFactory.java:867")
        yield from self.cb_deadlock(
            "deadlock1", self.factory_monitor, self.cslist_lock, first=False,
            loc="SocketClientFactory.java:872",
        )
        yield from self.cslist_lock.acquire(loc="SocketClientFactory.java:872")
        yield from self.cslist_lock.release(loc="SocketClientFactory.java:875")
        yield from self.factory_monitor.release(loc="SocketClientFactory.java:878")
        # --- shutdown: stop accepting (race1 admin side) ---
        yield from self.cb_conflict("race1", self.alive, first=True,
                                    loc="httpd.java:1560", side="writer")
        yield from self.alive.set(False, loc="httpd.java:1561")
        yield from self.req_monitor.acquire(loc="httpd.java:1563")
        yield from self.req_cond.notify_all(loc="httpd.java:1564")
        yield from self.req_monitor.release(loc="httpd.java:1565")
        # --- wait for idle clients (missed-notify1 admin side) ---
        count = yield from self.idle_count.get(loc="SocketClientFactory.java:900")
        if count > 0:
            # The check-to-wait window (no re-check under the monitor).
            yield from self.cb_conflict("missed-notify1", self.factory_monitor,
                                        first=False, loc="SocketClientFactory.java:903",
                                        side="waiter")
            yield from self.factory_monitor.acquire(loc="SocketClientFactory.java:905")
            yield from self.idle_cond.wait(loc="SocketClientFactory.java:906")
            yield from self.factory_monitor.release(loc="SocketClientFactory.java:908")

    # ------------------------------------------------------------------
    def oracle(self, result: RunResult) -> Optional[str]:
        """Classify the run's symptom, or None for a clean run."""
        if result.stall_or_deadlock:
            return "stall"
        if self.cfg.bug == "race2" and self.stats.peek() < self.stats_updates:
            return "lost stats update"
        return None
