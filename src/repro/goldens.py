"""Golden-trace corpus: canonical per-app trace fingerprints.

The fast-path kernel rewrite (and any future one) is held to a hard
contract: *bit-identical traces* for the same ``(program, scheduler,
seed)``.  This module defines the corpus that pins that contract —
every registry app, run traced at a fixed seed set, plain and with its
first declared bug active — and renders each app's entries to a
canonical JSON document committed under ``tests/sim/golden/``.

``tests/sim/test_golden_traces.py`` re-runs the corpus and compares the
rendered document *byte-for-byte* against the committed file, so any
divergence — one event field, one float, one reordering — fails loudly.
``tools/record_golden.py`` (re)records the files; it accepts
``--reference`` to record through the pre-rewrite
:class:`~repro.sim._reference.ReferenceKernel`, which must produce the
identical corpus (that equality is itself asserted by the differential
battery in ``tests/sim/test_kernel_determinism.py``).

Entries intentionally include the trace fingerprint *and* coarse run
facts (steps, events, virtual time, termination flags): when a
fingerprint diverges, the coarse fields usually localize why.
"""

from __future__ import annotations

import itertools
import json
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.apps.base import AppConfig, BaseApp
from repro.apps.registry import ALL_APPS
from repro.sim import primitives as _primitives
from repro.sim.kernel import Kernel
from repro.sim.trace import trace_fingerprint

__all__ = [
    "GOLDEN_DIR",
    "GOLDEN_SEEDS",
    "golden_cases",
    "golden_entry",
    "render_app_corpus",
    "record_corpus",
]

#: Committed corpus location (repo-relative, resolved from this file).
GOLDEN_DIR = Path(__file__).resolve().parents[2] / "tests" / "sim" / "golden"

#: Fixed scheduler/app seeds the corpus pins.  Plain runs are recorded
#: at every seed; the bug-active variant at the first seed only (it is
#: the slow case — breakpoint pauses burn virtual-time timers).
GOLDEN_SEEDS: Tuple[int, ...] = (1, 7)


def golden_cases(app_cls: Type[BaseApp]) -> List[Tuple[int, Optional[str]]]:
    """The ``(seed, bug)`` matrix recorded for one app."""
    cases: List[Tuple[int, Optional[str]]] = [(seed, None) for seed in GOLDEN_SEEDS]
    bugs = sorted(app_cls.bugs)
    if bugs:
        cases.append((GOLDEN_SEEDS[0], bugs[0]))
    return cases


@contextmanager
def _fresh_primitive_ids():
    """Run one golden case with the primitive uid counter pinned to 1.

    Anonymous primitives are named from a process-global counter
    (``lock{uid}``), and those names enter the trace fingerprint — so
    without isolation a corpus entry would depend on how many
    primitives happened to be created earlier in the process (test
    order, recorder order).  Uids are only ever compared within one
    run, so a per-case reset is safe; the ambient counter is restored
    afterwards and keeps counting where it left off."""
    saved = _primitives._ids
    _primitives._ids = itertools.count(1)
    try:
        yield
    finally:
        _primitives._ids = saved


def golden_entry(
    app_cls: Type[BaseApp],
    seed: int,
    bug: Optional[str] = None,
    kernel_cls: type = Kernel,
) -> Dict[str, Any]:
    """One traced run, reduced to its canonical corpus entry."""
    with _fresh_primitive_ids():
        app = app_cls(AppConfig(bug=bug))
        run = app.run(seed=seed, record_trace=True, kernel_cls=kernel_cls)
    r = run.result
    assert r.trace is not None
    return {
        "app": app_cls.name,
        "seed": seed,
        "bug": bug,
        "fingerprint": trace_fingerprint(r.trace),
        "events": len(r.trace),
        "steps": r.steps,
        "time": repr(r.time),
        "completed": r.completed,
        "deadlocked": r.deadlocked,
        "stalled": r.stalled,
    }


def render_app_corpus(app_cls: Type[BaseApp], kernel_cls: type = Kernel) -> str:
    """The app's corpus document, canonically serialized."""
    entries = [
        golden_entry(app_cls, seed, bug, kernel_cls=kernel_cls)
        for seed, bug in golden_cases(app_cls)
    ]
    return json.dumps(entries, indent=2, sort_keys=True) + "\n"


def record_corpus(
    out_dir: Path = GOLDEN_DIR, kernel_cls: type = Kernel, echo: bool = False
) -> List[Path]:
    """(Re)record the full corpus: one JSON file per registry app."""
    out_dir.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for app_cls in ALL_APPS.values():
        path = out_dir / f"{app_cls.name}.json"
        path.write_text(render_app_corpus(app_cls, kernel_cls=kernel_cls))
        written.append(path)
        if echo:
            print(f"recorded {path}")
    return written
