# Convenience targets for the Concurrent Breakpoints reproduction.

PYTHON ?= python
TRIALS ?= 100

.PHONY: install test bench report examples all

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	REPRO_TRIALS=$(TRIALS) $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

report:
	$(PYTHON) -m repro report --trials $(TRIALS) --out results.md

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f >/dev/null || exit 1; done; echo "all examples OK"

all: test bench
