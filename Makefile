# Convenience targets for the Concurrent Breakpoints reproduction.

PYTHON ?= python
TRIALS ?= 100
# -1 = one worker per CPU
WORKERS ?= -1

.PHONY: install test test-par test-cache test-infer test-bounded lint \
	docstrings serve-smoke fleet-smoke bench bench-par bench-explore \
	bench-svc bench-cache bench-kernel bench-infer bench-bounding \
	golden report examples all

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# The parallel-execution battery: differential parallel-vs-serial tests,
# engine invariants, and the kernel determinism stress suite.
test-par:
	$(PYTHON) -m pytest tests/harness/test_parallel_runner.py \
	    tests/core/test_engine_invariants.py \
	    tests/sim/test_kernel_determinism.py

# The cache battery: fingerprint canonicalization properties, store
# atomicity/corruption/eviction, and the cached == fresh differentials.
test-cache:
	$(PYTHON) -m pytest tests/cache/

# The inference battery: candidate generation/matching units, the
# end-to-end trace-to-confirmed-bug acceptance runs, report
# serialization, and the cache/service/CLI differentials.
test-infer:
	$(PYTHON) -m pytest tests/infer/ tests/detect/test_reports_serialization.py

# The bounded-search battery: the bounded == unbounded differential
# equivalence tests, the accounting/monotonicity properties, and the
# large-scale app family (bounded DPOR + PCT fallback).
test-bounded:
	$(PYTHON) -m pytest tests/sim/test_bounding.py tests/apps/test_large_apps.py

# Critical-error lint (same rule set as the CI lint job).
lint:
	$(PYTHON) -m ruff check src tests benchmarks examples

# Docstring-coverage gates on the library (ast-based, stdlib-only):
# >=80% repo-wide, 100% on the operational service layer.
docstrings:
	$(PYTHON) tools/check_docstrings.py
	$(PYTHON) tools/check_docstrings.py --fail-under 100 src/repro/svc

# End-to-end service smoke: start the daemon, submit a job, scrape
# /metrics, SIGTERM, assert a clean drain (same sequence as CI).
serve-smoke:
	PYTHONPATH=src $(PYTHON) tools/serve_smoke.py

# Fleet smoke: two cache-backed shards + the consistent-hash router as
# separate processes, mixed run/explore/infer jobs routed cross-shard
# and checked against direct in-process calls, then the chaos phase —
# SIGKILL a shard mid-batch and repair the ring live (same as CI).
fleet-smoke:
	PYTHONPATH=src $(PYTHON) tools/serve_smoke.py --fleet

bench:
	REPRO_TRIALS=$(TRIALS) $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Same benchmarks with every trial sweep on the worker pool (serial
# baselines and parallel runs are recorded side by side in extra_info).
bench-par:
	REPRO_TRIALS=$(TRIALS) REPRO_WORKERS=$(WORKERS) \
	    $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Exploration performance gates: snapshot prefix sharing, sleep-set
# pruning, sharded DPOR scaling (DESIGN.md section 6.8).
bench-explore:
	REPRO_WORKERS=$(WORKERS) $(PYTHON) -m pytest \
	    benchmarks/bench_exploration.py benchmarks/bench_explore_scaling.py \
	    --benchmark-only -s --benchmark-json=bench-explore.json

# Service scaling gates: daemon vs sequential CLI, client keep-alive,
# and the 64-client fleet vs single daemon; emits BENCH_svc.json and
# gates the speedups against the committed baseline (no
# --benchmark-only so the plain gate test runs too).
bench-svc:
	PYTHONPATH=src $(PYTHON) -m pytest \
	    benchmarks/bench_svc_throughput.py -q -s

# Cache acceptance gate: warm sweep >= 10x cold, bit-identical results.
bench-cache:
	$(PYTHON) -m pytest benchmarks/bench_cache.py \
	    --benchmark-only -s --benchmark-json=bench-cache.json

# Kernel fast-path perf: emits benchmarks/BENCH_kernel.json and gates
# the fast-vs-reference speedups against the committed baseline (no
# --benchmark-only so the plain gate test runs too).
bench-kernel:
	PYTHONPATH=src $(PYTHON) -m pytest \
	    benchmarks/bench_kernel_throughput.py benchmarks/bench_obs_overhead.py \
	    -q -s

# Inference throughput: candidates confirmed/sec cold vs warm store,
# emits benchmarks/BENCH_infer.json.
bench-infer:
	$(PYTHON) -m pytest benchmarks/bench_infer.py \
	    --benchmark-only -s

# Bounded-search reduction gate on the large app family: emits
# benchmarks/BENCH_bounding.json (projected >=5x schedule reduction at
# equal bug-finding) and gates it against the committed baseline.
bench-bounding:
	PYTHONPATH=src $(PYTHON) -m pytest \
	    benchmarks/bench_explore_bounding.py --benchmark-only -s

# Re-record the golden trace corpus (only after a deliberate
# trace-content change; the golden tests diff byte-for-byte).
golden:
	PYTHONPATH=src $(PYTHON) tools/record_golden.py

report:
	$(PYTHON) -m repro report --trials $(TRIALS) --out results.md

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f >/dev/null || exit 1; done; echo "all examples OK"

all: test bench
